//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the `dq-bench` targets use —
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock measurement loop and a
//! one-line-per-benchmark textual report (median of the sampled iteration
//! times).  No statistics, plots or comparisons; swap the workspace path
//! dependency for crates.io `criterion` when building online.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement: Duration,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement: Duration::from_millis(500),
            default_warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement: self.default_measurement,
            warm_up: self.default_warm_up,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement, warm_up) = (
            self.default_sample_size,
            self.default_measurement,
            self.default_warm_up,
        );
        run_benchmark(&id.to_string(), sample_size, measurement, warm_up, f);
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target time for the whole sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement, self.warm_up, f);
        self
    }

    /// Runs a benchmark that closes over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            self.measurement,
            self.warm_up,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (report lines are printed as benchmarks run).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) runs the
/// measured routine.
pub struct Bencher {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting iterations
        // to size the per-sample batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&self) -> Option<Duration> {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied()
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        measurement,
        warm_up,
        samples: Vec::new(),
    };
    f(&mut bencher);
    match bencher.median() {
        Some(median) => println!(
            "bench: {id:<60} {:>12.3} µs/iter",
            median.as_secs_f64() * 1e6
        ),
        None => println!("bench: {id:<60} (no samples — Bencher::iter never called)"),
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }
}
