//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map`/`boxed`, range and
//! character-class string strategies, tuple and [`collection::vec`]
//! combinators, [`prop_oneof!`], `any::<bool>()`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.  Differences from the real
//! crate: cases are generated from a fixed per-test seed (derived from the
//! test's module path and name, so distinct tests explore distinct inputs and
//! reruns are exactly reproducible) and failing cases are reported without
//! shrinking.  Swap the workspace path dependency for crates.io `proptest`
//! when building online.

/// Deterministic test-case RNG (splitmix64).
pub mod rng {
    /// The generator handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an integer.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds from a test identifier string (FNV-1a hash).
        pub fn seed_from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

/// Test configuration and failure reporting.
pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's config: only the case count matters here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property assertion.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

/// Strategies: value generators composed with combinators.
pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over non-empty alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i32, i64, u32, u64, usize, isize);

    /// String literals are character-class strategies, mirroring proptest's
    /// regex string strategies for the `[class]{m}` / `[class]{m,n}` subset
    /// (optionally repeated, e.g. `"[a-c]{1}[0-9]{2}"`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '[' => {
                    let mut class: Vec<char> = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in `{pattern}`"));
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let start = prev.take().unwrap();
                                let end = chars.next().unwrap();
                                assert!(start <= end, "bad range {start}-{end} in `{pattern}`");
                                class.extend((start..=end).skip(1));
                            }
                            c => {
                                class.push(c);
                                prev = Some(c);
                            }
                        }
                    }
                    assert!(!class.is_empty(), "empty class in `{pattern}`");
                    let (min, max) = parse_repetition(&mut chars, pattern);
                    let len = min + rng.below((max - min + 1) as u64) as usize;
                    for _ in 0..len {
                        out.push(class[rng.below(class.len() as u64) as usize]);
                    }
                }
                c => panic!(
                    "unsupported pattern `{pattern}`: the offline proptest shim only \
                     understands `[class]{{m,n}}` literals, got `{c}`"
                ),
            }
        }
        out
    }

    fn parse_repetition(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (lo, hi),
                    None => (spec.as_str(), spec.as_str()),
                };
                let lo: usize = lo.trim().parse().expect("repetition bound");
                let hi: usize = hi.trim().parse().expect("repetition bound");
                assert!(lo <= hi, "bad repetition in `{pattern}`");
                return (lo, hi);
            }
            spec.push(c);
        }
        panic!("unterminated repetition in `{pattern}`");
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Strategy for `bool` (used through `any::<bool>()`).
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::strategy::{BoolStrategy, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size` (half-open, like proptest's `SizeRange` from a range).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: fails the current case (without panicking the
/// generator loop machinery) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality property assertion, with an optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::rng::TestRng::seed_from_name(concat!(
                ::core::module_path!(), "::", ::core::stringify!($name)
            ));
            $(let $arg = $strategy;)*
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        ::core::stringify!($name), case + 1, config.cases, err
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ::core::default::Default::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::TestRng;

    #[test]
    fn string_pattern_strategies_match_their_class() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad char: {s:?}"
            );
            let t = Strategy::generate(&"[a-c]{0,5}", &mut rng);
            assert!(t.len() <= 5);
            let u = Strategy::generate(&"[p-r]{1}", &mut rng);
            assert_eq!(u.len(), 1);
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let strategy = crate::collection::vec(("[a-c]{1}", 0i64..4), 0..12);
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!(v.len() < 12);
            for (s, n) in v {
                assert_eq!(s.len(), 1);
                assert!((0..4).contains(&n));
            }
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let strategy = prop_oneof![0i64..1, 10i64..11, 20i64..21];
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::generate(&strategy, &mut rng));
        }
        assert_eq!(seen, [0i64, 10, 20].into_iter().collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_ints_respect_ranges(a in 0i64..10, b in 5usize..9) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..9).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, b + 1);
        }

        #[test]
        fn early_return_is_allowed(v in crate::collection::vec(0i64..3, 0..4)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|x| (0..3).contains(x)));
        }

        #[test]
        fn mapped_strategies_apply_the_function(s in "[a-b]{2}".prop_map(|s| s.len())) {
            prop_assert_eq!(s, 2);
        }

        #[test]
        fn any_bool_is_usable(flag in any::<bool>()) {
            let negated = !flag;
            prop_assert!(flag != negated);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing_property` failed")]
    fn failing_properties_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing_property(a in 0i64..10) {
                prop_assert!(a < 0, "a = {} is not negative", a);
            }
        }
        failing_property();
    }
}
