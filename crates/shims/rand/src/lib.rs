//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the tiny subset of `rand`'s API its generators and tests
//! use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] methods.  The generator is
//! splitmix64 — deterministic for a given seed, which is all the seeded
//! workloads require.  Swap the workspace path dependency for crates.io
//! `rand` when building online; call sites compile unchanged.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a plain integer seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform distribution over an interval.  The single blanket
/// [`SampleRange`] impl below goes through this trait, matching real rand's
/// impl structure so that type inference at `gen_range(0..n)` call sites
/// behaves identically (the range's item type unifies with the return type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + unit_f64(rng.next_u64()) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

/// Range types that can produce a uniform draw.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        T::sample_inclusive(start, end, rng)
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 underneath).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
            let x = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
