//! # dq-cqa
//!
//! Consistent query answering (Section 5.2 of Fan, PODS 2008): computing the
//! answers that hold in *every* repair of an inconsistent database, without
//! repairing it.
//!
//! * [`oracle`] — the exact, exponential baseline: enumerate all repairs
//!   (via `dq-repair`) and intersect the answer sets;
//! * [`rewrite`] — the PTIME first-order rewriting approach of [7]/[43] for
//!   primary keys and tree-shaped (`C_tree`) conjunctive queries, plus the
//!   explicit `FoQuery` rewriting for single-atom queries;
//! * [`aggregate`] — range-consistent answers `[glb, lub]` for aggregation
//!   queries under key repairs (the scalar-aggregation setting of [8]).

pub mod aggregate;
pub mod oracle;
pub mod rewrite;

/// Frequently used items.
pub mod prelude {
    pub use crate::aggregate::{
        aggregate_on, range_consistent_aggregate, AggregateFn, AggregateRange,
    };
    pub use crate::oracle::{
        certain_answers_oracle, possible_answers_oracle, repair_count, single_relation_db,
    };
    pub use crate::rewrite::{
        certain_answers_rewriting, certain_answers_rewriting_naive,
        certain_answers_rewriting_with_engine, classify_tree_query, rewrite_single_atom, KeySpec,
        TreePlan,
    };
}

pub use prelude::*;
