//! First-order rewriting for consistent query answering under key
//! constraints (Section 5.2, the approach of [7]/[43]).
//!
//! For primary keys and queries in the tree-shaped class `C_tree` (join graph
//! a forest, every non-key-to-key join *full*, no repeated relation atoms),
//! certain answers can be computed by evaluating a first-order rewriting of
//! the query directly on the inconsistent database — PTIME data complexity,
//! versus the exponential repair-enumeration oracle.
//!
//! The module provides
//!
//! * [`KeySpec`] — the primary key of a relation;
//! * [`classify_tree_query`] — the `C_tree` membership test, which also
//!   produces the evaluation plan (root atoms and parent/child join edges);
//! * [`certain_answers_rewriting`] — the PTIME evaluation of the rewriting
//!   (candidates come from the ordinary evaluation of the query; each
//!   candidate is certified by the group-wise ∀-check that the rewriting
//!   expresses);
//! * [`rewrite_single_atom`] — the explicit [`FoQuery`] rewriting for
//!   single-atom queries, evaluated by the `dq-relation` FO engine, to make
//!   the rewritten query inspectable.

use dq_core::engine::DetectionEngine;
use dq_relation::{
    Atom, CompOp, Comparison, ConjunctiveQuery, Database, DqError, DqResult, FoQuery, Formula,
    HashIndex, InternedIndex, Term, TupleId, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The primary key of a relation, by attribute positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeySpec {
    /// Relation name.
    pub relation: String,
    /// Key attribute positions.
    pub key: Vec<usize>,
}

impl KeySpec {
    /// Creates a key specification.
    pub fn new(relation: impl Into<String>, key: Vec<usize>) -> Self {
        KeySpec {
            relation: relation.into(),
            key,
        }
    }
}

fn key_of<'a>(keys: &'a [KeySpec], relation: &str) -> DqResult<&'a KeySpec> {
    keys.iter()
        .find(|k| k.relation == relation)
        .ok_or_else(|| DqError::MalformedQuery {
            reason: format!("no key declared for relation `{relation}`"),
        })
}

/// The evaluation plan produced by [`classify_tree_query`].
#[derive(Clone, Debug)]
pub struct TreePlan {
    /// Atom indexes in a valid processing order (parents before children).
    pub order: Vec<usize>,
    /// For each atom (by index), the children reached through its non-key
    /// variables.
    pub children: BTreeMap<usize, Vec<usize>>,
    /// Atoms whose keys are bound by constants or head variables only.
    pub roots: Vec<usize>,
}

/// Checks that the query is in the supported tree class and derives the
/// evaluation plan: every atom's key must be bound either by constants/head
/// variables (a root) or by the non-key variables of exactly one earlier atom
/// (a full non-key-to-key join), and no relation may appear twice.
pub fn classify_tree_query(query: &ConjunctiveQuery, keys: &[KeySpec]) -> DqResult<TreePlan> {
    let mut seen_relations = BTreeSet::new();
    for atom in &query.atoms {
        if !seen_relations.insert(atom.relation.clone()) {
            return Err(DqError::MalformedQuery {
                reason: format!("relation `{}` occurs twice (outside C_tree)", atom.relation),
            });
        }
    }
    let head: BTreeSet<&str> = query.head.iter().map(|s| s.as_str()).collect();
    let mut bound_by: Vec<Option<usize>> = vec![None; query.atoms.len()]; // parent atom
    let mut order = Vec::new();
    let mut roots = Vec::new();
    let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut placed = vec![false; query.atoms.len()];

    // Variables offered by already-placed atoms (their non-key positions).
    let mut available: BTreeMap<String, usize> = BTreeMap::new(); // var -> offering atom

    let key_positions =
        |atom: &Atom| -> DqResult<Vec<usize>> { Ok(key_of(keys, &atom.relation)?.key.clone()) };

    loop {
        let mut progressed = false;
        for (i, atom) in query.atoms.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let key_pos = key_positions(atom)?;
            // Terms in key positions must each be a constant, a head
            // variable, or a variable offered by a single placed atom.
            let mut parents: BTreeSet<usize> = BTreeSet::new();
            let mut ok = true;
            for &p in &key_pos {
                match &atom.terms[p] {
                    Term::Const(_) => {}
                    Term::Var(v) if head.contains(v.as_str()) => {}
                    Term::Var(v) => match available.get(v) {
                        Some(&parent) => {
                            parents.insert(parent);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if !ok || parents.len() > 1 {
                continue;
            }
            // Place the atom.
            placed[i] = true;
            progressed = true;
            order.push(i);
            match parents.into_iter().next() {
                Some(parent) => {
                    bound_by[i] = Some(parent);
                    children.entry(parent).or_default().push(i);
                }
                None => roots.push(i),
            }
            // Offer this atom's non-key variables to later atoms.
            for (pos, term) in atom.terms.iter().enumerate() {
                if key_pos.contains(&pos) {
                    continue;
                }
                if let Term::Var(v) = term {
                    available.entry(v.clone()).or_insert(i);
                }
            }
        }
        if !progressed {
            break;
        }
    }
    if order.len() != query.atoms.len() {
        return Err(DqError::MalformedQuery {
            reason: "query is outside the supported tree class (C_tree)".into(),
        });
    }
    Ok(TreePlan {
        order,
        children,
        roots,
    })
}

fn resolve(term: &Term, binding: &BTreeMap<String, Value>) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(v) => binding.get(v).cloned(),
    }
}

/// The per-relation key index the ∀-certification probes: a pooled interned
/// index on the fast path, the legacy value-keyed index on the reference
/// path.  Both hand back the key group as ascending tuple ids, borrowed
/// from the index — the certification probes once per candidate per atom,
/// so the hot path must not allocate.
enum KeyIndex {
    Interned(Arc<InternedIndex>),
    Hash(HashIndex),
}

/// A borrowed key group, iterable as tuple ids without materializing them.
enum KeyGroup<'a> {
    Interned(&'a InternedIndex, &'a [u32]),
    Hash(&'a [TupleId]),
}

impl KeyIndex {
    fn group<'a>(&'a self, key: &[Value]) -> KeyGroup<'a> {
        match self {
            KeyIndex::Interned(index) => KeyGroup::Interned(index, index.rows_for_values(key)),
            KeyIndex::Hash(index) => KeyGroup::Hash(index.get(key)),
        }
    }
}

impl KeyGroup<'_> {
    fn is_empty(&self) -> bool {
        match self {
            KeyGroup::Interned(_, rows) => rows.is_empty(),
            KeyGroup::Hash(ids) => ids.is_empty(),
        }
    }

    fn iter(&self) -> impl Iterator<Item = TupleId> + '_ {
        let (interned, hash) = match self {
            KeyGroup::Interned(index, rows) => (Some((index, rows.iter())), None),
            KeyGroup::Hash(ids) => (None, Some(ids.iter())),
        };
        interned
            .into_iter()
            .flat_map(|(index, rows)| rows.map(move |&r| index.tuple_id(r)))
            .chain(hash.into_iter().flatten().copied())
    }
}

/// Does the subtree rooted at `atom_idx` *certainly* hold under `binding`?
///
/// The check mirrors the ∀ part of the rewriting: the key group selected by
/// the (fully bound) key terms must be nonempty, and *every* tuple of the
/// group must be compatible with the atom's non-key terms, satisfy the
/// fully-bound comparisons, and recursively certify the children.
fn atom_certain(
    db: &Database,
    keys: &[KeySpec],
    query: &ConjunctiveQuery,
    plan: &TreePlan,
    indexes: &BTreeMap<String, KeyIndex>,
    atom_idx: usize,
    binding: &BTreeMap<String, Value>,
) -> DqResult<bool> {
    let atom = &query.atoms[atom_idx];
    let key_pos = &key_of(keys, &atom.relation)?.key;
    let relation = db.require_relation(&atom.relation)?;
    let key_values: Option<Vec<Value>> = key_pos
        .iter()
        .map(|&p| resolve(&atom.terms[p], binding))
        .collect();
    let Some(key_values) = key_values else {
        return Err(DqError::MalformedQuery {
            reason: "key variable unbound during certain evaluation".into(),
        });
    };
    let index = indexes
        .get(&atom.relation)
        .expect("index built for every relation of the query");
    let group = index.group(&key_values);
    if group.is_empty() {
        return Ok(false);
    }
    for id in group.iter() {
        let tuple = relation.tuple(id).expect("live tuple");
        let mut extended = binding.clone();
        for (pos, term) in atom.terms.iter().enumerate() {
            if key_pos.contains(&pos) {
                continue;
            }
            match term {
                Term::Const(c) => {
                    if tuple.get(pos) != c {
                        return Ok(false);
                    }
                }
                Term::Var(v) => match extended.get(v) {
                    Some(bound) if bound != tuple.get(pos) => return Ok(false),
                    Some(_) => {}
                    None => {
                        extended.insert(v.clone(), tuple.get(pos).clone());
                    }
                },
            }
        }
        // Comparisons that are fully bound must hold for every group member.
        for c in &query.comparisons {
            if let (Some(l), Some(r)) = (resolve(&c.left, &extended), resolve(&c.right, &extended))
            {
                if !c.op.eval(&l, &r) {
                    return Ok(false);
                }
            }
        }
        for &child in plan
            .children
            .get(&atom_idx)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
        {
            if !atom_certain(db, keys, query, plan, indexes, child, &extended)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Certain answers of a tree-class query under primary key constraints, in
/// PTIME data complexity, evaluated directly on the inconsistent database
/// through a private [`DetectionEngine`].
pub fn certain_answers_rewriting(
    db: &Database,
    keys: &[KeySpec],
    query: &ConjunctiveQuery,
) -> DqResult<BTreeSet<Vec<Value>>> {
    certain_answers_rewriting_with_engine(db, keys, query, &DetectionEngine::new())
}

/// [`certain_answers_rewriting`] over a caller-owned engine: the per-relation
/// key indexes the ∀-certification probes come out of the engine's
/// [`IndexPool`](dq_relation::IndexPool) as interned indexes (packed keys,
/// CSR groups), so repeated queries over an unchanged database build
/// nothing, and the indexes are the same physical ones detection and repair
/// use on that database.
pub fn certain_answers_rewriting_with_engine(
    db: &Database,
    keys: &[KeySpec],
    query: &ConjunctiveQuery,
    engine: &DetectionEngine,
) -> DqResult<BTreeSet<Vec<Value>>> {
    let plan = classify_tree_query(query, keys)?; // reject unsupported queries first
    let mut indexes: BTreeMap<String, KeyIndex> = BTreeMap::new();
    for atom in &query.atoms {
        let key_pos = &key_of(keys, &atom.relation)?.key;
        let relation = db.require_relation(&atom.relation)?;
        indexes.entry(atom.relation.clone()).or_insert_with(|| {
            KeyIndex::Interned(
                engine
                    .pool()
                    .interned_for(relation, key_pos, engine.threads()),
            )
        });
    }
    certain_answers_with_indexes(db, keys, query, &plan, &indexes)
}

/// The legacy evaluation: per-relation `Vec<Value>`-keyed [`HashIndex`]es
/// built fresh per call.  Kept as the reference the pooled path is
/// property-tested against.
pub fn certain_answers_rewriting_naive(
    db: &Database,
    keys: &[KeySpec],
    query: &ConjunctiveQuery,
) -> DqResult<BTreeSet<Vec<Value>>> {
    let plan = classify_tree_query(query, keys)?; // reject unsupported queries first
    let mut indexes: BTreeMap<String, KeyIndex> = BTreeMap::new();
    for atom in &query.atoms {
        let key_pos = &key_of(keys, &atom.relation)?.key;
        let relation = db.require_relation(&atom.relation)?;
        indexes
            .entry(atom.relation.clone())
            .or_insert_with(|| KeyIndex::Hash(HashIndex::build(relation, key_pos)));
    }
    certain_answers_with_indexes(db, keys, query, &plan, &indexes)
}

/// The shared candidate-generation / ∀-certification loop: one key index
/// per relation of the query, shared by every candidate check (the
/// certification probes these groups heavily).
fn certain_answers_with_indexes(
    db: &Database,
    keys: &[KeySpec],
    query: &ConjunctiveQuery,
    plan: &TreePlan,
    indexes: &BTreeMap<String, KeyIndex>,
) -> DqResult<BTreeSet<Vec<Value>>> {
    // Candidate answers: ordinary evaluation over the (dirty) database.  A
    // certain answer is an answer in every repair, and repairs are subsets,
    // so every certain answer appears among the candidates.
    let candidates = query.evaluate(db)?;
    let mut certain = BTreeSet::new();
    'candidates: for candidate in candidates {
        let binding: BTreeMap<String, Value> = query
            .head
            .iter()
            .cloned()
            .zip(candidate.iter().cloned())
            .collect();
        for &root in &plan.roots {
            if !atom_certain(db, keys, query, plan, indexes, root, &binding)? {
                continue 'candidates;
            }
        }
        certain.insert(candidate);
    }
    Ok(certain)
}

/// The explicit first-order rewriting of a single-atom query
/// `q(x̄) :- R(t̄)` under the primary key of `R`:
///
/// `q'(x̄) = R(t̄) ∧ ¬∃ ȳ ( R(k̄, ȳ) ∧ ⋁_i  yᵢ "disagrees with" tᵢ )`
///
/// where `k̄` are the key terms of the atom and `ȳ` fresh variables for the
/// non-key positions.  Evaluating `q'` on the dirty database returns exactly
/// the certain answers.
pub fn rewrite_single_atom(query: &ConjunctiveQuery, keys: &[KeySpec]) -> DqResult<FoQuery> {
    if query.atoms.len() != 1 || !query.comparisons.is_empty() {
        return Err(DqError::MalformedQuery {
            reason: "rewrite_single_atom expects exactly one atom and no comparisons".into(),
        });
    }
    let atom = &query.atoms[0];
    let key_pos = &key_of(keys, &atom.relation)?.key;
    let head: BTreeSet<&str> = query.head.iter().map(|s| s.as_str()).collect();
    // Fresh variables for the non-key positions of the negated atom.  Only
    // positions carrying a constant or a head variable constrain the group:
    // a purely existential variable is free to take whatever value the
    // chosen tuple has, so it contributes no disagreement disjunct.
    let mut negated_terms = Vec::with_capacity(atom.terms.len());
    let mut fresh_vars = Vec::new();
    let mut disagreements = Vec::new();
    for (pos, term) in atom.terms.iter().enumerate() {
        if key_pos.contains(&pos) {
            negated_terms.push(term.clone());
            continue;
        }
        let fresh = format!("__y{pos}");
        negated_terms.push(Term::var(fresh.clone()));
        fresh_vars.push(fresh.clone());
        let constrains = match term {
            Term::Const(_) => true,
            Term::Var(v) => head.contains(v.as_str()),
        };
        if constrains {
            disagreements.push(Formula::Comparison(Comparison::new(
                Term::var(fresh),
                CompOp::Ne,
                term.clone(),
            )));
        }
    }
    let mut body = vec![Formula::Atom(atom.clone())];
    if !disagreements.is_empty() {
        body.push(Formula::Not(Box::new(Formula::Exists(
            fresh_vars,
            Box::new(Formula::And(vec![
                Formula::Atom(Atom::new(atom.relation.clone(), negated_terms)),
                Formula::Or(disagreements),
            ])),
        ))));
    }
    Ok(FoQuery {
        head: query.head.clone(),
        body: Formula::And(body),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::certain_answers_oracle;
    use dq_core::{DenialConstraint, Fd};
    use dq_relation::{Domain, RelationInstance, RelationSchema};
    use std::sync::Arc;

    fn emp_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "emp",
            [
                ("name", Domain::Text),
                ("dept", Domain::Text),
                ("grade", Domain::Int),
            ],
        ))
    }

    fn dept_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "dept",
            [("dname", Domain::Text), ("mgr", Domain::Text)],
        ))
    }

    fn keys() -> Vec<KeySpec> {
        vec![KeySpec::new("emp", vec![0]), KeySpec::new("dept", vec![0])]
    }

    fn dirty_db() -> Database {
        let mut emp = RelationInstance::new(emp_schema());
        for (n, d, g) in [
            ("ann", "cs", 1),
            ("ann", "ee", 1),
            ("bob", "cs", 2),
            ("carol", "me", 3),
        ] {
            emp.insert_values([Value::str(n), Value::str(d), Value::int(g)])
                .unwrap();
        }
        let mut dept = RelationInstance::new(dept_schema());
        for (d, m) in [
            ("cs", "dana"),
            ("cs", "derek"),
            ("ee", "erin"),
            ("me", "mo"),
        ] {
            dept.insert_values([Value::str(d), Value::str(m)]).unwrap();
        }
        let mut db = Database::new();
        db.add_relation(emp);
        db.add_relation(dept);
        db
    }

    #[test]
    fn single_atom_rewriting_matches_the_oracle() {
        let db = dirty_db();
        let constraints =
            DenialConstraint::from_fd(&Fd::new(&emp_schema(), &["name"], &["dept", "grade"]));
        // q(n, d) :- emp(n, d, g)
        let q = ConjunctiveQuery::new(
            vec!["n", "d"],
            vec![Atom::new(
                "emp",
                vec![Term::var("n"), Term::var("d"), Term::var("g")],
            )],
            vec![],
        );
        let fast = certain_answers_rewriting(&db, &keys(), &q).unwrap();
        let slow = certain_answers_oracle(&db, "emp", &constraints, &q).unwrap();
        assert_eq!(fast, slow);
        // ann's department is uncertain, bob's and carol's are not.
        assert_eq!(fast.len(), 2);
        assert!(fast.contains(&vec![Value::str("bob"), Value::str("cs")]));
        assert!(fast.contains(&vec![Value::str("carol"), Value::str("me")]));
    }

    #[test]
    fn explicit_fo_rewriting_agrees_with_the_evaluator() {
        let db = dirty_db();
        let q = ConjunctiveQuery::new(
            vec!["n", "d"],
            vec![Atom::new(
                "emp",
                vec![Term::var("n"), Term::var("d"), Term::var("g")],
            )],
            vec![],
        );
        let rewritten = rewrite_single_atom(&q, &keys()).unwrap();
        let via_fo = rewritten.evaluate(&db).unwrap();
        let via_plan = certain_answers_rewriting(&db, &keys(), &q).unwrap();
        assert_eq!(via_fo, via_plan);
    }

    #[test]
    fn join_query_certainty_requires_all_group_members_to_agree() {
        let db = dirty_db();
        // q(n, m) :- emp(n, d, g), dept(d, m): the manager of ann is
        // uncertain twice over (her department and cs's manager are both in
        // conflict); carol's manager is certain.
        let q = ConjunctiveQuery::new(
            vec!["n", "m"],
            vec![
                Atom::new("emp", vec![Term::var("n"), Term::var("d"), Term::var("g")]),
                Atom::new("dept", vec![Term::var("d"), Term::var("m")]),
            ],
            vec![],
        );
        let certain = certain_answers_rewriting(&db, &keys(), &q).unwrap();
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&vec![Value::str("carol"), Value::str("mo")]));
        // Existential query: q2(n) :- emp(n, d, g), dept(d, m) — every
        // employee whose department certainly exists qualifies, whichever
        // repair is chosen.
        let q2 = ConjunctiveQuery::new(
            vec!["n"],
            vec![
                Atom::new("emp", vec![Term::var("n"), Term::var("d"), Term::var("g")]),
                Atom::new("dept", vec![Term::var("d"), Term::var("m")]),
            ],
            vec![],
        );
        let certain2 = certain_answers_rewriting(&db, &keys(), &q2).unwrap();
        assert_eq!(certain2.len(), 3);
    }

    #[test]
    fn comparisons_are_enforced_group_wide() {
        let db = dirty_db();
        // q(n) :- emp(n, d, g), g > 1: ann's grade is 1 in both conflicting
        // tuples, bob and carol qualify certainly.
        let q = ConjunctiveQuery::new(
            vec!["n"],
            vec![Atom::new(
                "emp",
                vec![Term::var("n"), Term::var("d"), Term::var("g")],
            )],
            vec![Comparison::new(Term::var("g"), CompOp::Gt, Term::val(1i64))],
        );
        let certain = certain_answers_rewriting(&db, &keys(), &q).unwrap();
        assert_eq!(certain.len(), 2);
        assert!(!certain.contains(&vec![Value::str("ann")]));
    }

    #[test]
    fn queries_outside_the_class_are_rejected() {
        // Repeated relation atom.
        let q = ConjunctiveQuery::new(
            vec!["n"],
            vec![
                Atom::new("emp", vec![Term::var("n"), Term::var("d"), Term::var("g")]),
                Atom::new(
                    "emp",
                    vec![Term::var("n2"), Term::var("d"), Term::var("g2")],
                ),
            ],
            vec![],
        );
        assert!(classify_tree_query(&q, &keys()).is_err());
        // Key of dept bound by nothing (cross product on non-key attrs).
        let q2 = ConjunctiveQuery::new(
            vec!["n"],
            vec![
                Atom::new("emp", vec![Term::var("n"), Term::var("d"), Term::var("g")]),
                Atom::new("dept", vec![Term::var("other"), Term::var("m")]),
            ],
            vec![],
        );
        assert!(classify_tree_query(&q2, &keys()).is_err());
    }

    #[test]
    fn plan_structure_for_a_join_query() {
        let q = ConjunctiveQuery::new(
            vec!["n"],
            vec![
                Atom::new("emp", vec![Term::var("n"), Term::var("d"), Term::var("g")]),
                Atom::new("dept", vec![Term::var("d"), Term::var("m")]),
            ],
            vec![],
        );
        let plan = classify_tree_query(&q, &keys()).unwrap();
        assert_eq!(plan.roots, vec![0]);
        assert_eq!(plan.children.get(&0), Some(&vec![1]));
        assert_eq!(plan.order, vec![0, 1]);
    }
}
