//! Range-consistent answers for aggregation queries under key violations.
//!
//! Section 5.2's remark points to the line of work on "scalar aggregation in
//! inconsistent databases" [8]: for an aggregation query a single certain
//! value rarely exists, so the consistent answer is reported as the *range*
//! `[glb, lub]` the aggregate takes over all repairs.  For a relation whose
//! only constraint is a key, the repairs are exactly the choices of one tuple
//! per key group, which makes the bounds computable greedily, one group at a
//! time — no repair enumeration needed.

use dq_relation::{RelationInstance, Value};
use std::collections::BTreeMap;

/// The supported aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateFn {
    /// Number of tuples.
    Count,
    /// Sum of a numeric attribute.
    Sum,
    /// Minimum of an attribute.
    Min,
    /// Maximum of an attribute.
    Max,
}

/// The `[glb, lub]` range an aggregate takes over all repairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggregateRange {
    /// Greatest lower bound over all repairs.
    pub lower: f64,
    /// Least upper bound over all repairs.
    pub upper: f64,
}

impl AggregateRange {
    /// Whether the aggregate has the same value in every repair (the range
    /// collapses to a point), i.e. a certain answer exists.
    pub fn is_certain(&self) -> bool {
        (self.upper - self.lower).abs() < 1e-9
    }

    /// Whether a value lies within the range (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower - 1e-9 && value <= self.upper + 1e-9
    }
}

/// Numeric view of a value for aggregation (integers and reals only).
fn numeric(value: &Value) -> Option<f64> {
    value.as_int().map(|i| i as f64).or_else(|| value.as_real())
}

/// Evaluates an aggregate on a single (consistent) instance.  `attr` is
/// ignored for `Count`.
pub fn aggregate_on(instance: &RelationInstance, agg: AggregateFn, attr: usize) -> f64 {
    match agg {
        AggregateFn::Count => instance.len() as f64,
        AggregateFn::Sum => instance
            .iter()
            .filter_map(|(_, t)| numeric(t.get(attr)))
            .sum(),
        AggregateFn::Min => instance
            .iter()
            .filter_map(|(_, t)| numeric(t.get(attr)))
            .fold(f64::INFINITY, f64::min),
        AggregateFn::Max => instance
            .iter()
            .filter_map(|(_, t)| numeric(t.get(attr)))
            .fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Computes the range-consistent answer of `agg(attr)` on `instance` under
/// the key `key_attrs`: the `[glb, lub]` the aggregate takes over all repairs
/// that keep exactly one tuple per key-equal group.
///
/// Tuples whose aggregated attribute is non-numeric contribute `0` to `Sum`
/// and are ignored by `Min`/`Max`, mirroring [`aggregate_on`].
pub fn range_consistent_aggregate(
    instance: &RelationInstance,
    key_attrs: &[usize],
    agg: AggregateFn,
    attr: usize,
) -> AggregateRange {
    // Group tuples by their key value; each repair keeps one per group.
    let mut groups: BTreeMap<Vec<Value>, Vec<f64>> = BTreeMap::new();
    for (_, tuple) in instance.iter() {
        groups
            .entry(tuple.project(key_attrs))
            .or_default()
            .push(numeric(tuple.get(attr)).unwrap_or(0.0));
    }
    if groups.is_empty() {
        let neutral = match agg {
            AggregateFn::Count | AggregateFn::Sum => 0.0,
            AggregateFn::Min => f64::INFINITY,
            AggregateFn::Max => f64::NEG_INFINITY,
        };
        return AggregateRange {
            lower: neutral,
            upper: neutral,
        };
    }

    let group_min = |vals: &Vec<f64>| vals.iter().copied().fold(f64::INFINITY, f64::min);
    let group_max = |vals: &Vec<f64>| vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    match agg {
        // Every repair keeps exactly one tuple per group.
        AggregateFn::Count => AggregateRange {
            lower: groups.len() as f64,
            upper: groups.len() as f64,
        },
        // Sum is minimised (maximised) by picking the smallest (largest)
        // contribution of every group independently.
        AggregateFn::Sum => AggregateRange {
            lower: groups.values().map(group_min).sum(),
            upper: groups.values().map(group_max).sum(),
        },
        // The least possible minimum picks the globally smallest value (its
        // group cannot avoid offering something ≥ it); the greatest possible
        // minimum maximises every group's contribution and then takes the
        // smallest of those.
        AggregateFn::Min => AggregateRange {
            lower: groups.values().map(group_min).fold(f64::INFINITY, f64::min),
            upper: groups.values().map(group_max).fold(f64::INFINITY, f64::min),
        },
        // Symmetric to Min.
        AggregateFn::Max => AggregateRange {
            lower: groups
                .values()
                .map(group_min)
                .fold(f64::NEG_INFINITY, f64::max),
            upper: groups
                .values()
                .map(group_max)
                .fold(f64::NEG_INFINITY, f64::max),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "salary",
            [("emp", Domain::Text), ("amount", Domain::Int)],
        ))
    }

    /// Key-violating instance: emp is the key, two employees have conflicting
    /// salary records.
    fn conflicted() -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (e, a) in [("ann", 10), ("ann", 20), ("bob", 5), ("bob", 7), ("eve", 3)] {
            inst.insert_values([Value::str(e), Value::int(a)]).unwrap();
        }
        inst
    }

    /// Brute-force oracle: enumerate every choice of one tuple per key group
    /// and compute the aggregate on each.
    fn oracle(instance: &RelationInstance, agg: AggregateFn, attr: usize) -> (f64, f64) {
        let mut groups: BTreeMap<Vec<Value>, Vec<Vec<Value>>> = BTreeMap::new();
        for (_, t) in instance.iter() {
            groups
                .entry(t.project(&[0]))
                .or_default()
                .push(t.values().to_vec());
        }
        let group_list: Vec<Vec<Vec<Value>>> = groups.into_values().collect();
        let mut choices = vec![0usize; group_list.len()];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        loop {
            let mut world = RelationInstance::new(instance.schema().clone());
            for (g, &c) in group_list.iter().zip(&choices) {
                world.insert_values(g[c].clone()).unwrap();
            }
            let v = aggregate_on(&world, agg, attr);
            lo = lo.min(v);
            hi = hi.max(v);
            // Advance the mixed-radix counter over group choices.
            let mut i = 0;
            loop {
                if i == group_list.len() {
                    return (lo, hi);
                }
                choices[i] += 1;
                if choices[i] < group_list[i].len() {
                    break;
                }
                choices[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn count_is_certain_under_key_repairs() {
        let r = range_consistent_aggregate(&conflicted(), &[0], AggregateFn::Count, 1);
        assert!(r.is_certain());
        assert_eq!(r.lower, 3.0);
    }

    #[test]
    fn sum_bounds_match_the_oracle() {
        let inst = conflicted();
        let r = range_consistent_aggregate(&inst, &[0], AggregateFn::Sum, 1);
        let (lo, hi) = oracle(&inst, AggregateFn::Sum, 1);
        assert_eq!((r.lower, r.upper), (lo, hi));
        assert_eq!((r.lower, r.upper), (18.0, 30.0));
    }

    #[test]
    fn min_and_max_bounds_match_the_oracle() {
        let inst = conflicted();
        for agg in [AggregateFn::Min, AggregateFn::Max] {
            let r = range_consistent_aggregate(&inst, &[0], agg, 1);
            let (lo, hi) = oracle(&inst, agg, 1);
            assert_eq!((r.lower, r.upper), (lo, hi), "bounds for {agg:?}");
        }
    }

    #[test]
    fn consistent_instance_collapses_to_a_point() {
        let mut inst = RelationInstance::new(schema());
        for (e, a) in [("ann", 10), ("bob", 5)] {
            inst.insert_values([Value::str(e), Value::int(a)]).unwrap();
        }
        for agg in [
            AggregateFn::Count,
            AggregateFn::Sum,
            AggregateFn::Min,
            AggregateFn::Max,
        ] {
            let r = range_consistent_aggregate(&inst, &[0], agg, 1);
            assert!(
                r.is_certain(),
                "{agg:?} should be certain on consistent data"
            );
            assert!(r.contains(aggregate_on(&inst, agg, 1)));
        }
    }

    #[test]
    fn empty_instance_gives_neutral_bounds() {
        let inst = RelationInstance::new(schema());
        let count = range_consistent_aggregate(&inst, &[0], AggregateFn::Count, 1);
        assert_eq!((count.lower, count.upper), (0.0, 0.0));
        let sum = range_consistent_aggregate(&inst, &[0], AggregateFn::Sum, 1);
        assert_eq!((sum.lower, sum.upper), (0.0, 0.0));
    }

    #[test]
    fn true_value_lies_within_the_range() {
        // The "true" world is one particular repair; its aggregate must fall
        // inside the reported range.
        let inst = conflicted();
        let mut one_repair = RelationInstance::new(schema());
        for (e, a) in [("ann", 20), ("bob", 5), ("eve", 3)] {
            one_repair
                .insert_values([Value::str(e), Value::int(a)])
                .unwrap();
        }
        for agg in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
            let r = range_consistent_aggregate(&inst, &[0], agg, 1);
            assert!(r.contains(aggregate_on(&one_repair, agg, 1)), "{agg:?}");
        }
    }
}
