//! Certain answers by repair enumeration — the exact (exponential) oracle.
//!
//! Consistent query answering (Section 5.2) returns the tuples that are
//! answers to the query in *every* repair of the inconsistent database.  The
//! oracle materializes all repairs (via `dq-repair`) and intersects the
//! answer sets; it is the ground truth the first-order rewriting is validated
//! against, and the baseline whose exponential cost the rewriting avoids.

use dq_core::engine::DetectionEngine;
use dq_core::DenialConstraint;
use dq_relation::{ConjunctiveQuery, Database, DqResult, RelationInstance, Value};
use dq_repair::enumerate_repairs_with_engine;
use std::collections::BTreeSet;

/// Certain answers of `query` over a database whose single relation
/// `relation` is constrained by `constraints` (the other relations, if any,
/// are assumed clean and shared by all repairs).  The enumeration's
/// per-candidate consistency checks run through one shared
/// [`DetectionEngine`], so FD/key-shaped constraints are evaluated over
/// interned partitions rather than quadratic pair scans.
pub fn certain_answers_oracle(
    db: &Database,
    relation: &str,
    constraints: &[DenialConstraint],
    query: &ConjunctiveQuery,
) -> DqResult<BTreeSet<Vec<Value>>> {
    let dirty = db.require_relation(relation)?;
    let repairs = enumerate_repairs_with_engine(dirty, constraints, &DetectionEngine::new());
    let mut certain: Option<BTreeSet<Vec<Value>>> = None;
    for repair in repairs {
        let mut repaired_db = db.clone();
        repaired_db.add_relation(repair);
        let answers = query.evaluate(&repaired_db)?;
        certain = Some(match certain {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        });
    }
    Ok(certain.unwrap_or_default())
}

/// Number of repairs the oracle has to evaluate — the cost driver contrasted
/// with the rewriting in the benchmark.
pub fn repair_count(
    db: &Database,
    relation: &str,
    constraints: &[DenialConstraint],
) -> DqResult<usize> {
    let dirty = db.require_relation(relation)?;
    Ok(enumerate_repairs_with_engine(dirty, constraints, &DetectionEngine::new()).len())
}

/// Convenience: the possible answers (answers in *some* repair), the
/// complement notion occasionally reported alongside certain answers.
pub fn possible_answers_oracle(
    db: &Database,
    relation: &str,
    constraints: &[DenialConstraint],
    query: &ConjunctiveQuery,
) -> DqResult<BTreeSet<Vec<Value>>> {
    let dirty = db.require_relation(relation)?;
    let repairs = enumerate_repairs_with_engine(dirty, constraints, &DetectionEngine::new());
    let mut possible = BTreeSet::new();
    for repair in repairs {
        let mut repaired_db = db.clone();
        repaired_db.add_relation(repair);
        possible.extend(query.evaluate(&repaired_db)?);
    }
    Ok(possible)
}

/// Helper for tests and benches: wraps a single instance into a database.
pub fn single_relation_db(instance: RelationInstance) -> Database {
    let mut db = Database::new();
    db.add_relation(instance);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::Fd;
    use dq_relation::{Atom, Domain, RelationSchema, Term};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "emp",
            [("name", Domain::Text), ("dept", Domain::Text)],
        ))
    }

    fn dirty_db() -> (Database, Vec<DenialConstraint>) {
        // name is a key; "ann" has two conflicting departments, "bob" one.
        let mut inst = RelationInstance::new(schema());
        for (n, d) in [("ann", "cs"), ("ann", "ee"), ("bob", "cs")] {
            inst.insert_values([Value::str(n), Value::str(d)]).unwrap();
        }
        let constraints = DenialConstraint::from_fd(&Fd::new(&schema(), &["name"], &["dept"]));
        (single_relation_db(inst), constraints)
    }

    #[test]
    fn certain_answers_drop_conflicting_facts() {
        let (db, constraints) = dirty_db();
        // q(n) :- emp(n, d)
        let q = ConjunctiveQuery::new(
            vec!["n"],
            vec![Atom::new("emp", vec![Term::var("n"), Term::var("d")])],
            vec![],
        );
        let certain = certain_answers_oracle(&db, "emp", &constraints, &q).unwrap();
        // Both names are certain: every repair keeps some tuple for ann.
        assert_eq!(certain.len(), 2);

        // q2(d) :- emp('ann', d): no department is certain for ann.
        let q2 = ConjunctiveQuery::new(
            vec!["d"],
            vec![Atom::new("emp", vec![Term::val("ann"), Term::var("d")])],
            vec![],
        );
        let certain2 = certain_answers_oracle(&db, "emp", &constraints, &q2).unwrap();
        assert!(certain2.is_empty());
        // But both departments are possible.
        let possible2 = possible_answers_oracle(&db, "emp", &constraints, &q2).unwrap();
        assert_eq!(possible2.len(), 2);

        // q3(d) :- emp('bob', d): bob's department is not in conflict.
        let q3 = ConjunctiveQuery::new(
            vec!["d"],
            vec![Atom::new("emp", vec![Term::val("bob"), Term::var("d")])],
            vec![],
        );
        let certain3 = certain_answers_oracle(&db, "emp", &constraints, &q3).unwrap();
        assert_eq!(certain3.len(), 1);
        assert!(certain3.contains(&vec![Value::str("cs")]));
    }

    #[test]
    fn repair_count_matches_conflict_structure() {
        let (db, constraints) = dirty_db();
        assert_eq!(repair_count(&db, "emp", &constraints).unwrap(), 2);
    }

    #[test]
    fn consistent_databases_behave_classically() {
        let mut inst = RelationInstance::new(schema());
        inst.insert_values([Value::str("ann"), Value::str("cs")])
            .unwrap();
        let constraints = DenialConstraint::from_fd(&Fd::new(&schema(), &["name"], &["dept"]));
        let db = single_relation_db(inst);
        let q = ConjunctiveQuery::new(
            vec!["d"],
            vec![Atom::new("emp", vec![Term::val("ann"), Term::var("d")])],
            vec![],
        );
        let certain = certain_answers_oracle(&db, "emp", &constraints, &q).unwrap();
        assert_eq!(certain.len(), 1);
    }
}
