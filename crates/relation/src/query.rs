//! Conjunctive queries and a small first-order evaluator.
//!
//! Consistent query answering (Section 5.2) works with conjunctive queries
//! with built-in predicates, and the rewriting approach of [7]/[43] produces
//! first-order queries with negated existential subformulas.  This module
//! provides both: [`ConjunctiveQuery`] for the input queries and [`FoQuery`]
//! (a safe-range first-order formula evaluator) for the rewritings.

use crate::error::{DqError, DqResult};
use crate::instance::Database;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A term of an atom: a variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Convenience constructor for a constant.
    pub fn val(value: impl Into<Value>) -> Term {
        Term::Const(value.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A relation atom `R(t1, ..., tn)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Terms, positionally aligned with the relation schema.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Variables occurring in the atom, in positional order (with repeats).
    pub fn variables(&self) -> Vec<&str> {
        self.terms.iter().filter_map(|t| t.as_var()).collect()
    }
}

/// Comparison operators for built-in predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompOp {
    /// Applies the operator to two values.
    pub fn eval(&self, a: &Value, b: &Value) -> bool {
        match self {
            CompOp::Eq => a == b,
            CompOp::Ne => a != b,
            CompOp::Lt => a < b,
            CompOp::Le => a <= b,
            CompOp::Gt => a > b,
            CompOp::Ge => a >= b,
        }
    }
}

/// A built-in comparison `t1 op t2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comparison {
    /// Left term.
    pub left: Term,
    /// Operator.
    pub op: CompOp,
    /// Right term.
    pub right: Term,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(left: Term, op: CompOp, right: Term) -> Self {
        Comparison { left, op, right }
    }
}

/// A variable binding during evaluation.
pub type Binding = BTreeMap<String, Value>;

fn resolve(term: &Term, binding: &Binding) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(name) => binding.get(name).cloned(),
    }
}

/// A conjunctive query `q(x̄) :- R1(..), ..., Rm(..), comparisons`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Head (free) variables; empty for a boolean query.
    pub head: Vec<String>,
    /// Relation atoms of the body.
    pub atoms: Vec<Atom>,
    /// Built-in comparisons of the body.
    pub comparisons: Vec<Comparison>,
}

impl ConjunctiveQuery {
    /// Creates a conjunctive query.
    pub fn new(head: Vec<&str>, atoms: Vec<Atom>, comparisons: Vec<Comparison>) -> Self {
        ConjunctiveQuery {
            head: head.into_iter().map(|s| s.to_string()).collect(),
            atoms,
            comparisons,
        }
    }

    /// Is this a boolean (closed) query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// All variables of the body.
    pub fn body_variables(&self) -> BTreeSet<String> {
        let mut vars = BTreeSet::new();
        for a in &self.atoms {
            for v in a.variables() {
                vars.insert(v.to_string());
            }
        }
        for c in &self.comparisons {
            if let Some(v) = c.left.as_var() {
                vars.insert(v.to_string());
            }
            if let Some(v) = c.right.as_var() {
                vars.insert(v.to_string());
            }
        }
        vars
    }

    /// Checks the query is safe: every head variable occurs in some atom.
    pub fn validate(&self) -> DqResult<()> {
        let body = self.body_variables();
        for h in &self.head {
            if !body.contains(h) {
                return Err(DqError::MalformedQuery {
                    reason: format!("head variable `{h}` does not occur in the body"),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the query over `db`, returning the set of answers (projected
    /// onto the head variables).  A boolean query returns either one empty
    /// answer (true) or no answer (false).
    pub fn evaluate(&self, db: &Database) -> DqResult<BTreeSet<Vec<Value>>> {
        self.validate()?;
        let bindings = self.all_bindings(db)?;
        let mut answers = BTreeSet::new();
        for b in bindings {
            let row: Vec<Value> = self
                .head
                .iter()
                .map(|h| b.get(h).cloned().expect("head var bound"))
                .collect();
            answers.insert(row);
        }
        Ok(answers)
    }

    /// Evaluates the query and returns all satisfying bindings of the body
    /// variables (used by the CQA rewriting machinery).
    pub fn all_bindings(&self, db: &Database) -> DqResult<Vec<Binding>> {
        let mut bindings = vec![Binding::new()];
        for atom in &self.atoms {
            bindings = extend_with_atom(db, &bindings, atom)?;
            if bindings.is_empty() {
                break;
            }
        }
        let bindings = bindings
            .into_iter()
            .filter(|b| {
                self.comparisons
                    .iter()
                    .all(|c| match (resolve(&c.left, b), resolve(&c.right, b)) {
                        (Some(l), Some(r)) => c.op.eval(&l, &r),
                        _ => false,
                    })
            })
            .collect();
        Ok(bindings)
    }
}

fn extend_with_atom(db: &Database, bindings: &[Binding], atom: &Atom) -> DqResult<Vec<Binding>> {
    let relation = db.require_relation(&atom.relation)?;
    if atom.terms.len() != relation.schema().arity() {
        return Err(DqError::MalformedQuery {
            reason: format!(
                "atom over `{}` has {} terms but the relation has arity {}",
                atom.relation,
                atom.terms.len(),
                relation.schema().arity()
            ),
        });
    }
    let mut out = Vec::new();
    for binding in bindings {
        for (_, tuple) in relation.iter() {
            let mut extended = binding.clone();
            let mut ok = true;
            for (i, term) in atom.terms.iter().enumerate() {
                let cell = tuple.get(i);
                match term {
                    Term::Const(v) => {
                        if v != cell {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(name) => match extended.get(name) {
                        Some(bound) if bound != cell => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            extended.insert(name.clone(), cell.clone());
                        }
                    },
                }
            }
            if ok {
                out.push(extended);
            }
        }
    }
    Ok(out)
}

/// A first-order formula in the safe-range fragment used by CQA rewritings.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// A positive relation atom.
    Atom(Atom),
    /// A built-in comparison.
    Comparison(Comparison),
    /// Negation (must not bind new variables).
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Existential quantification of `vars` in the inner formula.
    Exists(Vec<String>, Box<Formula>),
}

impl Formula {
    /// Conjunction helper that flattens nested `And`s.
    pub fn and(formulas: Vec<Formula>) -> Formula {
        Formula::And(formulas)
    }

    /// Is the formula (with the given binding already fixed) satisfied?
    ///
    /// Positive atoms and `Exists` search for satisfying extensions of the
    /// binding; negation and comparisons only *test* (all their variables
    /// must already be bound or bound inside the negation's own existentials).
    pub fn holds(&self, db: &Database, binding: &Binding) -> DqResult<bool> {
        match self {
            Formula::Atom(atom) => {
                Ok(!extend_with_atom(db, std::slice::from_ref(binding), atom)?.is_empty())
            }
            Formula::Comparison(c) => match (resolve(&c.left, binding), resolve(&c.right, binding))
            {
                (Some(l), Some(r)) => Ok(c.op.eval(&l, &r)),
                _ => Err(DqError::MalformedQuery {
                    reason: "comparison over unbound variable".into(),
                }),
            },
            Formula::Not(inner) => Ok(!inner.holds(db, binding)?),
            Formula::And(fs) => {
                for f in fs {
                    if !f.holds(db, binding)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.holds(db, binding)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Exists(vars, inner) => {
                let extensions = inner.satisfying_bindings(db, binding, vars)?;
                Ok(!extensions.is_empty())
            }
        }
    }

    /// Satisfying bindings of `vars` (extending `base`) for this formula.
    /// Only positive atoms generate bindings; the rest filter.
    fn satisfying_bindings(
        &self,
        db: &Database,
        base: &Binding,
        _vars: &[String],
    ) -> DqResult<Vec<Binding>> {
        // Split conjuncts into generators (atoms) and filters (the rest).
        let conjuncts: Vec<&Formula> = match self {
            Formula::And(fs) => fs.iter().collect(),
            other => vec![other],
        };
        let mut bindings = vec![base.clone()];
        let mut filters = Vec::new();
        for c in &conjuncts {
            match c {
                Formula::Atom(atom) => {
                    bindings = extend_with_atom(db, &bindings, atom)?;
                }
                other => filters.push(*other),
            }
        }
        let mut out = Vec::new();
        for b in bindings {
            let mut ok = true;
            for f in &filters {
                if !f.holds(db, &b)? {
                    ok = false;
                    break;
                }
            }
            if ok {
                out.push(b);
            }
        }
        Ok(out)
    }
}

/// A first-order query: head variables plus a body formula whose positive
/// atoms bind the head variables (safe-range).
#[derive(Clone, Debug, PartialEq)]
pub struct FoQuery {
    /// Head (free) variables.
    pub head: Vec<String>,
    /// Body formula.
    pub body: Formula,
}

impl FoQuery {
    /// Creates an FO query.
    pub fn new(head: Vec<&str>, body: Formula) -> Self {
        FoQuery {
            head: head.into_iter().map(|s| s.to_string()).collect(),
            body,
        }
    }

    /// Evaluates the query, returning the set of head-variable answers.
    pub fn evaluate(&self, db: &Database) -> DqResult<BTreeSet<Vec<Value>>> {
        let base = Binding::new();
        let bindings = self
            .body
            .satisfying_bindings(db, &base, &self.head.clone())?;
        let mut answers = BTreeSet::new();
        for b in bindings {
            let mut row = Vec::with_capacity(self.head.len());
            let mut complete = true;
            for h in &self.head {
                match b.get(h) {
                    Some(v) => row.push(v.clone()),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                answers.insert(row);
            }
        }
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::RelationInstance;
    use crate::schema::{Domain, RelationSchema};

    fn db() -> Database {
        // emp(name, dept), dept(dname, mgr)
        let emp = RelationSchema::new("emp", [("name", Domain::Text), ("dept", Domain::Text)]);
        let dept = RelationSchema::new("dept", [("dname", Domain::Text), ("mgr", Domain::Text)]);
        let mut ei = RelationInstance::from_schema(emp);
        for (n, d) in [("ann", "cs"), ("bob", "cs"), ("carol", "ee")] {
            ei.insert_values([Value::str(n), Value::str(d)]).unwrap();
        }
        let mut di = RelationInstance::from_schema(dept);
        for (d, m) in [("cs", "dana"), ("ee", "erin")] {
            di.insert_values([Value::str(d), Value::str(m)]).unwrap();
        }
        let mut db = Database::new();
        db.add_relation(ei);
        db.add_relation(di);
        db
    }

    #[test]
    fn join_query_produces_expected_answers() {
        let db = db();
        // q(n, m) :- emp(n, d), dept(d, m)
        let q = ConjunctiveQuery::new(
            vec!["n", "m"],
            vec![
                Atom::new("emp", vec![Term::var("n"), Term::var("d")]),
                Atom::new("dept", vec![Term::var("d"), Term::var("m")]),
            ],
            vec![],
        );
        let answers = q.evaluate(&db).unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers.contains(&vec![Value::str("ann"), Value::str("dana")]));
        assert!(answers.contains(&vec![Value::str("carol"), Value::str("erin")]));
    }

    #[test]
    fn constants_and_comparisons_filter() {
        let db = db();
        // q(n) :- emp(n, d), d = 'cs', n <> 'ann'
        let q = ConjunctiveQuery::new(
            vec!["n"],
            vec![Atom::new("emp", vec![Term::var("n"), Term::var("d")])],
            vec![
                Comparison::new(Term::var("d"), CompOp::Eq, Term::val("cs")),
                Comparison::new(Term::var("n"), CompOp::Ne, Term::val("ann")),
            ],
        );
        let answers = q.evaluate(&db).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&vec![Value::str("bob")]));
    }

    #[test]
    fn boolean_query_semantics() {
        let db = db();
        let yes = ConjunctiveQuery::new(
            vec![],
            vec![Atom::new("emp", vec![Term::val("ann"), Term::var("d")])],
            vec![],
        );
        let no = ConjunctiveQuery::new(
            vec![],
            vec![Atom::new("emp", vec![Term::val("zoe"), Term::var("d")])],
            vec![],
        );
        assert_eq!(yes.evaluate(&db).unwrap().len(), 1);
        assert!(no.evaluate(&db).unwrap().is_empty());
    }

    #[test]
    fn unsafe_query_is_rejected() {
        let q = ConjunctiveQuery::new(
            vec!["x"],
            vec![Atom::new("emp", vec![Term::var("n"), Term::var("d")])],
            vec![],
        );
        assert!(q.evaluate(&db()).is_err());
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let q = ConjunctiveQuery::new(
            vec![],
            vec![Atom::new("nosuch", vec![Term::var("x")])],
            vec![],
        );
        assert!(q.evaluate(&db()).is_err());
    }

    #[test]
    fn fo_query_with_negated_exists() {
        let db = db();
        // Employees in departments that have no manager named 'dana':
        // q(n) :- emp(n, d) AND NOT EXISTS m (dept(d, m) AND m = 'dana')
        let q = FoQuery::new(
            vec!["n"],
            Formula::And(vec![
                Formula::Atom(Atom::new("emp", vec![Term::var("n"), Term::var("d")])),
                Formula::Not(Box::new(Formula::Exists(
                    vec!["m".into()],
                    Box::new(Formula::And(vec![
                        Formula::Atom(Atom::new("dept", vec![Term::var("d"), Term::var("m")])),
                        Formula::Comparison(Comparison::new(
                            Term::var("m"),
                            CompOp::Eq,
                            Term::val("dana"),
                        )),
                    ])),
                ))),
            ]),
        );
        let answers = q.evaluate(&db).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&vec![Value::str("carol")]));
    }

    #[test]
    fn fo_disjunction() {
        let db = db();
        let q = FoQuery::new(
            vec!["n"],
            Formula::And(vec![
                Formula::Atom(Atom::new("emp", vec![Term::var("n"), Term::var("d")])),
                Formula::Or(vec![
                    Formula::Comparison(Comparison::new(
                        Term::var("n"),
                        CompOp::Eq,
                        Term::val("ann"),
                    )),
                    Formula::Comparison(Comparison::new(
                        Term::var("n"),
                        CompOp::Eq,
                        Term::val("carol"),
                    )),
                ]),
            ]),
        );
        assert_eq!(q.evaluate(&db).unwrap().len(), 2);
    }
}
