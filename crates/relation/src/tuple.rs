//! Tuples and cell addressing.

use crate::value::Value;
use std::fmt;

/// A tuple: an ordered list of values, positionally aligned with a
/// [`crate::schema::RelationSchema`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Creates a tuple from anything convertible into values, e.g.
    /// `Tuple::from_iter(["44", "131"])`.
    pub fn from_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at position `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Mutable access to the value at position `idx` (used by repairs).
    pub fn get_mut(&mut self, idx: usize) -> &mut Value {
        &mut self.values[idx]
    }

    /// Replaces the value at position `idx`, returning the previous value.
    pub fn set(&mut self, idx: usize, value: Value) -> Value {
        std::mem::replace(&mut self.values[idx], value)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projection `t[X]` onto a list of attribute positions.
    pub fn project(&self, attrs: &[usize]) -> Vec<Value> {
        attrs.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Projection returning borrowed values (used for hashing/grouping
    /// without cloning).
    pub fn project_ref<'a>(&'a self, attrs: &[usize]) -> Vec<&'a Value> {
        attrs.iter().map(|&i| &self.values[i]).collect()
    }

    /// Do `self` and `other` agree on the attribute positions `attrs`?
    pub fn agree_on(&self, other: &Tuple, attrs: &[usize]) -> bool {
        attrs.iter().all(|&i| self.values[i] == other.values[i])
    }

    /// Concatenates two tuples (used by Cartesian product views).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t1() -> Tuple {
        Tuple::from_values([
            Value::int(44),
            Value::int(131),
            Value::str("Mike"),
            Value::str("EH4 8LE"),
        ])
    }

    #[test]
    fn projection_preserves_order_of_requested_attributes() {
        let t = t1();
        assert_eq!(
            t.project(&[3, 0]),
            vec![Value::str("EH4 8LE"), Value::int(44)]
        );
        assert_eq!(t.project(&[]), Vec::<Value>::new());
    }

    #[test]
    fn agreement_on_attribute_lists() {
        let a = t1();
        let mut b = t1();
        assert!(a.agree_on(&b, &[0, 1, 2, 3]));
        b.set(2, Value::str("Rick"));
        assert!(a.agree_on(&b, &[0, 1, 3]));
        assert!(!a.agree_on(&b, &[2]));
    }

    #[test]
    fn set_returns_previous_value() {
        let mut t = t1();
        let old = t.set(2, Value::str("Joe"));
        assert_eq!(old, Value::str("Mike"));
        assert_eq!(t.get(2), &Value::str("Joe"));
    }

    #[test]
    fn concat_appends_values() {
        let a = Tuple::from_values([Value::int(1)]);
        let b = Tuple::from_values([Value::int(2), Value::int(3)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), &Value::int(3));
    }

    #[test]
    fn display_is_parenthesized() {
        let t = Tuple::from_values([Value::int(1), Value::str("x")]);
        assert_eq!(t.to_string(), "(1, x)");
    }
}
