//! The interned, sharded columnar storage subsystem.
//!
//! The detection engine's scaling costs are dominated by building hash
//! indexes whose keys clone `Vec<Value>` per tuple.  This module replaces
//! that representation with three layers, mirroring how discovery-oriented
//! dependency systems get their scale from compact partition/id
//! representations:
//!
//! 1. [`ValueInterner`] — per-column dictionary encoding of [`crate::value::Value`]s
//!    into dense `u32` [`ValueId`]s, preserving `Eq`/`Ord`/`Hash` semantics
//!    (including `Null` and the IEEE-754 total order for `Real`);
//! 2. [`ColumnarStore`] / [`Column`] — a version-tagged columnar snapshot of
//!    a [`crate::instance::RelationInstance`] (one id vector per attribute,
//!    range-sharded into fixed-size chunks), living *behind* the row-oriented
//!    instance API: detectors, algebra and CSV I/O keep working unchanged
//!    and reach the snapshot through
//!    [`RelationInstance::columnar`](crate::instance::RelationInstance::columnar);
//! 3. [`InternedIndex`] — hash indexes keyed by packed id tuples (a single
//!    mixed-radix `u64` or shifted `u128` word for almost every real key)
//!    with CSR group storage and shard-parallel builds, so one huge
//!    dependency parallelizes within one index, not just across
//!    dependencies.
//!
//! [`crate::index::IndexPool`] memoizes interned indexes per
//! `(instance identity, version, attribute list)` exactly as it does the
//! value-keyed [`crate::index::HashIndex`]es.

pub mod columnar;
pub mod distinct;
pub mod fx;
pub mod index;
pub mod interner;
pub mod mmap;
pub mod persist;
pub mod shard;

pub use columnar::{Column, ColumnarStats, ColumnarStore, SHARD_ROWS};
pub use distinct::{DistinctSet, IdTranslation};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::{InternedIndex, KeyCodec, ProjectionKey};
pub use interner::{InternerStats, ValueId, ValueInterner};
pub use mmap::MappedBytes;
pub use persist::{
    open_mmap, open_mmap_verified, save_postings, MappedRelation, RelationWriter, SaveStats,
    FORMAT_VERSION,
};
pub use shard::{ShardSource, StoreShardSource};
