//! Durable on-disk format for columnar relation snapshots.
//!
//! A persisted relation is a directory of *segment files*, each carrying a
//! 16-byte header (magic `DQSG`, format version, segment kind, payload
//! length) and a trailing FNV-1a checksum:
//!
//! ```text
//! <dir>/
//!   MANIFEST            schema, identity, shard layout, dictionary chains
//!   col<i>.dict.<k>     dictionary chain segment k of column i (values in
//!                       id order; later segments are append-only overlays)
//!   col<i>.shard.<j>    the ids of shard j of column i (u32 LE, 4-aligned)
//!   rows.seg            explicit tuple ids (absent when row == tuple id)
//!   col<i>.postings     optional CSR posting sidecar (multi-group classes)
//! ```
//!
//! The `MANIFEST` is written last via an atomic rename, so a crashed or
//! interrupted save never yields a readable-but-wrong relation: either the
//! old manifest still describes the old (complete) segment set, or no
//! manifest exists and the open fails cleanly.
//!
//! [`ColumnarStore::save_to`] persists a snapshot; when the target directory
//! already holds an earlier snapshot of the same instance and the instance
//! mutated append-only since, the save is *incremental*: only shards past
//! the old high-water mark are written and each dictionary spills just its
//! overlay (the entries interned since the previous save) as a new chain
//! segment.  [`open_mmap`] re-hydrates a [`MappedRelation`]: dictionaries
//! are decoded once (`O(distinct values)`), id segments are memory-mapped
//! ([`super::mmap`]) and paged in on demand, and the result serves the
//! shard-cursor execution paths through [`ShardSource`].

use super::columnar::{Column, ColumnarStore, MappedIds, SHARD_ROWS};
use super::fx::FxHashMap;
use super::index::InternedIndex;
use super::interner::ValueInterner;
use super::mmap::MappedBytes;
use super::shard::ShardSource;
use crate::error::{DqError, DqResult};
use crate::instance::{RelationInstance, TupleId};
use crate::schema::{Attribute, Domain, RelationSchema};
use crate::value::Value;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// On-disk format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"DQSG";
const HEADER_LEN: usize = 16;
/// Id payloads carry an 16-byte preamble (count + padding) so the raw ids
/// start at file offset 32 — a multiple of the `u32` alignment, which is
/// what lets mapped segments be reinterpreted as `&[ValueId]` zero-copy.
const ID_PREAMBLE: usize = 16;

/// Segment kinds (the `kind` field of the header).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Manifest = 1,
    Dict = 2,
    ShardIds = 3,
    TupleIds = 4,
    Postings = 5,
}

// ---------------------------------------------------------------------------
// Checksums and primitive encoding
// ---------------------------------------------------------------------------

/// Incremental FNV-1a (64-bit) hasher.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn io_err(path: &Path, e: std::io::Error) -> DqError {
    DqError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

fn corrupt(path: &Path, reason: impl Into<String>) -> DqError {
    DqError::CorruptSegment {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// Encoded size of one value (tag byte + payload).
fn value_encoded_len(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 2,
        Value::Int(_) | Value::Real(_) => 9,
        Value::Str(s) => 1 + 4 + s.len(),
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(3);
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_domain(d: &Domain, out: &mut Vec<u8>) {
    match d {
        Domain::Int => out.push(0),
        Domain::Real => out.push(1),
        Domain::Text => out.push(2),
        Domain::Bool => out.push(3),
        Domain::Finite(vs) => {
            out.push(4);
            out.extend_from_slice(&(vs.len() as u64).to_le_bytes());
            for v in vs.iter() {
                encode_value(v, out);
            }
        }
    }
}

/// Bounds-checked little-endian reader over a segment payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], path: &'a Path) -> Self {
        Cursor { buf, pos: 0, path }
    }

    fn take(&mut self, n: usize) -> DqResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(corrupt(self.path, "payload truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> DqResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DqResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> DqResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> DqResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(self.path, "invalid utf-8 string"))
    }

    fn value(&mut self) -> DqResult<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.u8()? != 0)),
            2 => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))),
            3 => Ok(Value::Real(f64::from_bits(self.u64()?))),
            4 => Ok(Value::str(self.str()?)),
            tag => Err(corrupt(self.path, format!("unknown value tag {tag}"))),
        }
    }

    fn domain(&mut self) -> DqResult<Domain> {
        match self.u8()? {
            0 => Ok(Domain::Int),
            1 => Ok(Domain::Real),
            2 => Ok(Domain::Text),
            3 => Ok(Domain::Bool),
            4 => {
                let n = self.u64()? as usize;
                let mut vs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    vs.push(self.value()?);
                }
                Ok(Domain::Finite(vs.into()))
            }
            tag => Err(corrupt(self.path, format!("unknown domain tag {tag}"))),
        }
    }

    fn finish(self) -> DqResult<()> {
        if self.pos != self.buf.len() {
            return Err(corrupt(self.path, "trailing bytes after payload"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Segment writing and reading
// ---------------------------------------------------------------------------

/// Streams one segment to disk: header first (the payload length must be
/// known up front), payload in chunks, checksum trailer last.
struct SegmentWriter {
    out: BufWriter<File>,
    hash: Fnv,
    path: PathBuf,
    remaining: u64,
}

impl SegmentWriter {
    fn create(path: &Path, kind: Kind, payload_len: u64) -> DqResult<Self> {
        let file = File::create(path).map_err(|e| io_err(path, e))?;
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[6..8].copy_from_slice(&(kind as u16).to_le_bytes());
        header[8..16].copy_from_slice(&payload_len.to_le_bytes());
        let mut hash = Fnv::new();
        hash.update(&header);
        let mut out = BufWriter::new(file);
        out.write_all(&header).map_err(|e| io_err(path, e))?;
        Ok(SegmentWriter {
            out,
            hash,
            path: path.to_path_buf(),
            remaining: payload_len,
        })
    }

    fn write(&mut self, bytes: &[u8]) -> DqResult<()> {
        debug_assert!(bytes.len() as u64 <= self.remaining, "payload overflow");
        self.remaining -= bytes.len() as u64;
        self.hash.update(bytes);
        self.out.write_all(bytes).map_err(|e| io_err(&self.path, e))
    }

    /// Writes the checksum trailer and flushes.  Returns total file bytes.
    fn finish(mut self) -> DqResult<u64> {
        assert_eq!(self.remaining, 0, "payload shorter than declared");
        let sum = self.hash.finish().to_le_bytes();
        self.out
            .write_all(&sum)
            .map_err(|e| io_err(&self.path, e))?;
        self.out.flush().map_err(|e| io_err(&self.path, e))?;
        let len = self
            .out
            .get_ref()
            .metadata()
            .map_err(|e| io_err(&self.path, e))?
            .len();
        dq_obs::add("store.io.save_bytes", len);
        dq_obs::inc("store.io.segments_written");
        Ok(len)
    }
}

/// Writes a fully buffered segment in one go.
fn write_segment(path: &Path, kind: Kind, payload: &[u8]) -> DqResult<u64> {
    let mut w = SegmentWriter::create(path, kind, payload.len() as u64)?;
    w.write(payload)?;
    w.finish()
}

/// An opened, header-validated segment: the mapped file plus its payload
/// range.
struct Segment {
    bytes: Arc<MappedBytes>,
    payload: Range<usize>,
}

impl Segment {
    fn payload(&self) -> &[u8] {
        &self.bytes[self.payload.clone()]
    }
}

/// Opens and validates one segment.  The header (magic, format version,
/// kind, length) is always validated; the payload checksum is verified only
/// when `verify` is set — id segments skip it by default so opening a
/// multi-gigabyte relation doesn't fault every page in just to add bytes
/// up.
fn open_segment(path: &Path, kind: Kind, verify: bool) -> DqResult<Segment> {
    let start = std::time::Instant::now();
    let bytes = Arc::new(MappedBytes::open(path).map_err(|e| io_err(path, e))?);
    if bytes.len() < HEADER_LEN + 8 {
        return Err(corrupt(path, "file shorter than segment header"));
    }
    if bytes[0..4] != MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(DqError::VersionMismatch {
            path: path.display().to_string(),
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let found_kind = u16::from_le_bytes([bytes[6], bytes[7]]);
    if found_kind != kind as u16 {
        return Err(corrupt(
            path,
            format!("expected segment kind {}, found {found_kind}", kind as u16),
        ));
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    if HEADER_LEN + payload_len + 8 != bytes.len() {
        return Err(corrupt(path, "declared payload length disagrees with file"));
    }
    if verify {
        let mut hash = Fnv::new();
        hash.update(&bytes[..HEADER_LEN + payload_len]);
        let stored = u64::from_le_bytes(bytes[HEADER_LEN + payload_len..].try_into().unwrap());
        if hash.finish() != stored {
            return Err(corrupt(path, "checksum mismatch"));
        }
    }
    dq_obs::inc("store.io.segments_loaded");
    dq_obs::record(
        "store.io.segment_load_ns",
        start.elapsed().as_nanos() as u64,
    );
    Ok(Segment {
        bytes,
        payload: HEADER_LEN..HEADER_LEN + payload_len,
    })
}

// ---------------------------------------------------------------------------
// File naming
// ---------------------------------------------------------------------------

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

fn dict_path(dir: &Path, attr: usize, seg: usize) -> PathBuf {
    dir.join(format!("col{attr}.dict.{seg}"))
}

fn shard_path(dir: &Path, attr: usize, shard: usize) -> PathBuf {
    dir.join(format!("col{attr}.shard.{shard}"))
}

fn rows_path(dir: &Path) -> PathBuf {
    dir.join("rows.seg")
}

fn postings_path(dir: &Path, attr: usize) -> PathBuf {
    dir.join(format!("col{attr}.postings"))
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Decoded MANIFEST contents.
#[derive(Clone, Debug)]
struct Manifest {
    schema: Arc<RelationSchema>,
    instance_id: u64,
    version: u64,
    shard_rows: usize,
    rows: usize,
    /// `true` when tuple ids are the identity of row positions (no
    /// `rows.seg`).
    identity_rows: bool,
    /// Per column: entry count of each dictionary chain segment.
    dict_chains: Vec<Vec<u64>>,
}

impl Manifest {
    fn shard_count(&self) -> usize {
        self.rows.div_ceil(self.shard_rows.max(1)).max(1)
    }

    fn shard_len(&self, shard: usize) -> usize {
        let start = (shard * self.shard_rows).min(self.rows);
        let end = ((shard + 1) * self.shard_rows).min(self.rows);
        end - start
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_str(self.schema.name(), &mut out);
        out.extend_from_slice(&(self.schema.arity() as u64).to_le_bytes());
        for attr in self.schema.attributes() {
            encode_str(&attr.name, &mut out);
            encode_domain(&attr.domain, &mut out);
        }
        out.extend_from_slice(&self.instance_id.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.shard_rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.rows as u64).to_le_bytes());
        out.push(u8::from(self.identity_rows));
        for chain in &self.dict_chains {
            out.extend_from_slice(&(chain.len() as u64).to_le_bytes());
            for &count in chain {
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        out
    }

    fn decode(payload: &[u8], path: &Path) -> DqResult<Manifest> {
        let mut c = Cursor::new(payload, path);
        let name = c.str()?;
        let arity = c.u64()? as usize;
        if arity > 1 << 20 {
            return Err(corrupt(path, "implausible arity"));
        }
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            let attr_name = c.str()?;
            let domain = c.domain()?;
            attrs.push(Attribute::new(attr_name, domain));
        }
        let schema = Arc::new(RelationSchema::new(
            name,
            attrs.into_iter().map(|a| (a.name, a.domain)),
        ));
        let instance_id = c.u64()?;
        let version = c.u64()?;
        let shard_rows = c.u64()? as usize;
        let rows = c.u64()? as usize;
        if shard_rows == 0 {
            return Err(corrupt(path, "zero shard size"));
        }
        let identity_rows = c.u8()? != 0;
        let mut dict_chains = Vec::with_capacity(arity);
        for _ in 0..arity {
            let segs = c.u64()? as usize;
            if segs > 1 << 20 {
                return Err(corrupt(path, "implausible dictionary chain length"));
            }
            let mut chain = Vec::with_capacity(segs);
            for _ in 0..segs {
                chain.push(c.u64()?);
            }
            dict_chains.push(chain);
        }
        c.finish()?;
        Ok(Manifest {
            schema,
            instance_id,
            version,
            shard_rows,
            rows,
            identity_rows,
            dict_chains,
        })
    }

    /// Writes the manifest atomically: temp file, then rename over.
    fn write(&self, dir: &Path) -> DqResult<u64> {
        let tmp = dir.join("MANIFEST.tmp");
        let len = write_segment(&tmp, Kind::Manifest, &self.encode())?;
        fs::rename(&tmp, manifest_path(dir)).map_err(|e| io_err(&tmp, e))?;
        Ok(len)
    }

    fn read(dir: &Path) -> DqResult<Manifest> {
        let path = manifest_path(dir);
        let seg = open_segment(&path, Kind::Manifest, true)?;
        Manifest::decode(seg.payload(), &path)
    }
}

// ---------------------------------------------------------------------------
// Low-level payload writers
// ---------------------------------------------------------------------------

/// Writes one shard's ids segment from (possibly several) id slices.
fn write_ids_segment(path: &Path, slices: &[&[super::interner::ValueId]]) -> DqResult<u64> {
    let count: usize = slices.iter().map(|s| s.len()).sum();
    let payload_len = (ID_PREAMBLE + count * 4) as u64;
    let mut w = SegmentWriter::create(path, Kind::ShardIds, payload_len)?;
    let mut preamble = [0u8; ID_PREAMBLE];
    preamble[0..8].copy_from_slice(&(count as u64).to_le_bytes());
    w.write(&preamble)?;
    let mut buf = Vec::with_capacity(4 << 10);
    for slice in slices {
        for id in *slice {
            buf.extend_from_slice(&id.0.to_le_bytes());
            if buf.len() >= (4 << 10) {
                w.write(&buf)?;
                buf.clear();
            }
        }
    }
    w.write(&buf)?;
    w.finish()
}

/// Writes one dictionary chain segment (values in id order).
fn write_dict_segment(path: &Path, values: &[Value]) -> DqResult<u64> {
    let payload_len = 8 + values.iter().map(value_encoded_len).sum::<usize>();
    let mut w = SegmentWriter::create(path, Kind::Dict, payload_len as u64)?;
    w.write(&(values.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(16 << 10);
    for v in values {
        encode_value(v, &mut buf);
        if buf.len() >= (16 << 10) {
            w.write(&buf)?;
            buf.clear();
        }
    }
    w.write(&buf)?;
    dq_obs::add("store.io.spill_dict_entries", values.len() as u64);
    w.finish()
}

/// Writes the explicit tuple-id segment.
fn write_rows_segment(path: &Path, rows: &[TupleId]) -> DqResult<u64> {
    let mut w = SegmentWriter::create(path, Kind::TupleIds, (8 + rows.len() * 8) as u64)?;
    w.write(&(rows.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(8 << 10);
    for id in rows {
        buf.extend_from_slice(&(id.0 as u64).to_le_bytes());
        if buf.len() >= (8 << 10) {
            w.write(&buf)?;
            buf.clear();
        }
    }
    w.write(&buf)?;
    w.finish()
}

/// Opens one shard ids segment, returning the mapped view of its ids.
fn open_ids_segment(path: &Path, expected: usize, verify: bool) -> DqResult<MappedIds> {
    let seg = open_segment(path, Kind::ShardIds, verify)?;
    let payload = seg.payload();
    if payload.len() < ID_PREAMBLE {
        return Err(corrupt(path, "ids payload shorter than preamble"));
    }
    let count = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
    if count != expected {
        return Err(corrupt(
            path,
            format!("shard carries {count} ids, manifest expects {expected}"),
        ));
    }
    if payload.len() != ID_PREAMBLE + count * 4 {
        return Err(corrupt(path, "ids payload length disagrees with count"));
    }
    Ok(MappedIds {
        offset: seg.payload.start + ID_PREAMBLE,
        count,
        bytes: seg.bytes,
    })
}

/// Opens a dictionary chain, returning the interner (all entries frozen).
fn open_dict_chain(dir: &Path, attr: usize, chain: &[u64]) -> DqResult<ValueInterner> {
    let total: u64 = chain.iter().sum();
    let mut values = Vec::with_capacity(total as usize);
    for (k, &expected) in chain.iter().enumerate() {
        let path = dict_path(dir, attr, k);
        let seg = open_segment(&path, Kind::Dict, true)?;
        let payload = seg.payload();
        let mut c = Cursor::new(payload, &path);
        let count = c.u64()?;
        if count != expected {
            return Err(corrupt(
                &path,
                format!("dictionary segment carries {count} entries, manifest expects {expected}"),
            ));
        }
        for _ in 0..count {
            values.push(c.value()?);
        }
        c.finish()?;
    }
    dq_obs::add("store.io.open_dict_entries", values.len() as u64);
    Ok(ValueInterner::from_frozen(values))
}

// ---------------------------------------------------------------------------
// Saving a ColumnarStore
// ---------------------------------------------------------------------------

/// Counters describing one [`ColumnarStore::save_to`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaveStats {
    /// Rows described by the new manifest.
    pub rows: usize,
    /// Shard segments (re)written — on an incremental save, only the shards
    /// past the previous high-water mark.
    pub shards_written: usize,
    /// Dictionary entries spilled — on an incremental save, only each
    /// column's overlay.
    pub dict_entries_spilled: usize,
    /// Total bytes written, including the manifest.
    pub bytes_written: u64,
    /// Did the save extend an earlier snapshot instead of rewriting?
    pub incremental: bool,
}

impl ColumnarStore {
    /// Persists this snapshot into `dir` (created if missing) under the
    /// default [`SHARD_ROWS`] shard size.  See
    /// [`save_to_with_shard_rows`](Self::save_to_with_shard_rows).
    pub fn save_to(&self, instance: &RelationInstance, dir: &Path) -> DqResult<SaveStats> {
        self.save_to_with_shard_rows(instance, dir, SHARD_ROWS)
    }

    /// Persists this snapshot into `dir` with an explicit shard size (the
    /// bench smoke paths shrink it to exercise multi-shard layouts on small
    /// data).
    ///
    /// `dir` is managed exclusively by the persist layer.  When it already
    /// holds a snapshot of the *same instance* at the *same shard size* and
    /// every mutation since that snapshot was an insertion, the save is
    /// incremental: unchanged complete shards and already-spilled
    /// dictionary prefixes are left untouched.  Any other situation (first
    /// save, different instance, edits or deletions in between) rewrites
    /// the directory from scratch.
    pub fn save_to_with_shard_rows(
        &self,
        instance: &RelationInstance,
        dir: &Path,
        shard_rows: usize,
    ) -> DqResult<SaveStats> {
        let _span = dq_obs::span!("store.io.save");
        let shard_rows = shard_rows.max(1);
        let identity_rows = self.rows().iter().enumerate().all(|(row, id)| id.0 == row);
        let prev = Manifest::read(dir).ok();
        let incremental = prev.as_ref().is_some_and(|m| {
            m.instance_id == self.instance_id()
                && m.shard_rows == shard_rows
                && m.rows <= self.len()
                && m.identity_rows == identity_rows
                && m.schema.as_ref() == instance.schema().as_ref()
                && instance.append_only_since(m.version)
        });
        if !incremental && dir.exists() {
            fs::remove_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;

        let arity = instance.schema().arity();
        let columns: Vec<Arc<Column>> = (0..arity).map(|a| self.column(instance, a)).collect();
        let mut stats = SaveStats {
            rows: self.len(),
            incremental,
            ..SaveStats::default()
        };

        // Shards: everything on a fresh save; only the shards at or past the
        // previous (possibly partial) last shard on an incremental one.
        let shard_count = self.len().div_ceil(shard_rows).max(1);
        let first_shard = match &prev {
            Some(m) if incremental => m.rows / shard_rows,
            _ => 0,
        };
        for shard in first_shard..shard_count {
            let range =
                (shard * shard_rows).min(self.len())..((shard + 1) * shard_rows).min(self.len());
            if range.is_empty() && shard > 0 {
                continue;
            }
            for (attr, col) in columns.iter().enumerate() {
                let slices = col.shard_ids(range.clone());
                stats.bytes_written += write_ids_segment(&shard_path(dir, attr, shard), &slices)?;
                stats.shards_written += usize::from(attr == 0);
            }
        }

        // Dictionaries: the full dictionary as segment 0 on a fresh save;
        // only the overlay past the previously persisted prefix on an
        // incremental one.
        let mut dict_chains: Vec<Vec<u64>> = match &prev {
            Some(m) if incremental => m.dict_chains.clone(),
            _ => vec![Vec::new(); arity],
        };
        for (attr, col) in columns.iter().enumerate() {
            let persisted: u64 = dict_chains[attr].iter().sum();
            let values = col.interner().values();
            debug_assert!(persisted as usize <= values.len());
            let overlay = &values[persisted as usize..];
            if !overlay.is_empty() || dict_chains[attr].is_empty() {
                let seg = dict_chains[attr].len();
                stats.bytes_written += write_dict_segment(&dict_path(dir, attr, seg), overlay)?;
                stats.dict_entries_spilled += overlay.len();
                dict_chains[attr].push(overlay.len() as u64);
            }
        }

        if !identity_rows {
            stats.bytes_written += write_rows_segment(&rows_path(dir), self.rows())?;
        }

        let manifest = Manifest {
            schema: Arc::clone(instance.schema()),
            instance_id: self.instance_id(),
            version: self.version(),
            shard_rows,
            rows: self.len(),
            identity_rows,
            dict_chains,
        };
        stats.bytes_written += manifest.write(dir)?;
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// Streams rows into a persisted relation without materializing an instance
/// or an in-RAM store: cells are interned straight into per-column
/// dictionaries, shard id buffers are flushed to disk as they fill, and
/// dictionaries spill once at [`finish`](Self::finish).  Used by
/// [`crate::csv::stream_into_store`] and the chunked bulk-load paths; peak
/// memory is O(dictionaries + one shard).
///
/// [`RelationWriter::append_to`] re-opens an existing relation for further
/// appends: the persisted dictionaries are re-hydrated *frozen*
/// ([`ValueInterner::from_frozen`]), so only genuinely new values are
/// interned and only they are spilled again — the on-disk dictionary prefix
/// is never rewritten.
pub struct RelationWriter {
    dir: PathBuf,
    schema: Arc<RelationSchema>,
    shard_rows: usize,
    dicts: Vec<ValueInterner>,
    dict_chains: Vec<Vec<u64>>,
    /// Id buffer of the current (partial) shard, per column.
    buf: Vec<Vec<super::interner::ValueId>>,
    /// Rows in fully flushed shards.
    flushed_rows: usize,
    shards_flushed: usize,
    bytes_written: u64,
    /// Identity carried into the manifest (provenance only).
    instance_id: u64,
    version: u64,
}

impl RelationWriter {
    /// Starts a fresh relation at `dir` (wiping whatever was there).
    pub fn create(
        dir: &Path,
        schema: Arc<RelationSchema>,
        shard_rows: usize,
    ) -> DqResult<RelationWriter> {
        if dir.exists() {
            fs::remove_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let arity = schema.arity();
        Ok(RelationWriter {
            dir: dir.to_path_buf(),
            schema,
            shard_rows: shard_rows.max(1),
            dicts: (0..arity).map(|_| ValueInterner::new()).collect(),
            dict_chains: vec![Vec::new(); arity],
            buf: vec![Vec::new(); arity],
            flushed_rows: 0,
            shards_flushed: 0,
            bytes_written: 0,
            instance_id: 0,
            version: 0,
        })
    }

    /// Re-opens the relation at `dir` for appending.  The persisted
    /// dictionaries load frozen (only new values will be interned); a
    /// partial trailing shard is read back into the buffer and will be
    /// rewritten on the next flush.
    pub fn append_to(dir: &Path) -> DqResult<RelationWriter> {
        let manifest = Manifest::read(dir)?;
        if !manifest.identity_rows {
            return Err(corrupt(
                &manifest_path(dir),
                "cannot append to a relation with explicit tuple ids",
            ));
        }
        let arity = manifest.schema.arity();
        let mut dicts = Vec::with_capacity(arity);
        for attr in 0..arity {
            dicts.push(open_dict_chain(dir, attr, &manifest.dict_chains[attr])?);
        }
        // A partial last shard is pulled back into the buffer; complete
        // shards stay on disk untouched.
        let full_shards = manifest.rows / manifest.shard_rows;
        let tail = manifest.rows % manifest.shard_rows;
        let mut buf = vec![Vec::new(); arity];
        if tail > 0 {
            for (attr, b) in buf.iter_mut().enumerate() {
                let mapped = open_ids_segment(&shard_path(dir, attr, full_shards), tail, true)?;
                let raw = &mapped.bytes[mapped.offset..mapped.offset + mapped.count * 4];
                b.extend(raw.chunks_exact(4).map(|c| {
                    super::interner::ValueId(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                }));
            }
        }
        Ok(RelationWriter {
            dir: dir.to_path_buf(),
            schema: manifest.schema,
            shard_rows: manifest.shard_rows,
            dicts,
            dict_chains: manifest.dict_chains,
            buf,
            flushed_rows: full_shards * manifest.shard_rows,
            shards_flushed: full_shards,
            bytes_written: 0,
            instance_id: manifest.instance_id,
            version: manifest.version,
        })
    }

    /// Sets the instance identity recorded in the manifest (provenance for
    /// incremental saves).
    pub fn set_identity(&mut self, instance_id: u64, version: u64) {
        self.instance_id = instance_id;
        self.version = version;
    }

    /// The schema being written.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Rows accepted so far (flushed plus buffered).
    pub fn rows(&self) -> usize {
        self.flushed_rows + self.buf.first().map_or(0, Vec::len)
    }

    /// Appends one row.  Cells are validated against the schema domains and
    /// interned immediately — no tuple is ever materialized.
    pub fn push_row<I>(&mut self, values: I) -> DqResult<()>
    where
        I: IntoIterator<Item = Value>,
    {
        let mut count = 0usize;
        for (attr, value) in values.into_iter().enumerate() {
            if attr >= self.schema.arity() {
                count += 1;
                continue;
            }
            if !self.schema.domain(attr).contains(&value) {
                return Err(DqError::DomainViolation {
                    relation: self.schema.name().to_string(),
                    attribute: self.schema.attr_name(attr).to_string(),
                    value: value.to_string(),
                });
            }
            self.buf[attr].push(self.dicts[attr].intern(&value));
            count += 1;
        }
        if count != self.schema.arity() {
            // Roll back the partial row so the buffers stay rectangular.
            let filled = count.min(self.schema.arity());
            for b in self.buf.iter_mut().take(filled) {
                b.pop();
            }
            return Err(DqError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: count,
            });
        }
        if self.buf.first().map_or(0, Vec::len) == self.shard_rows {
            self.flush_shard()?;
        }
        Ok(())
    }

    fn flush_shard(&mut self) -> DqResult<()> {
        let rows = self.buf.first().map_or(0, Vec::len);
        if rows == 0 {
            return Ok(());
        }
        for (attr, ids) in self.buf.iter_mut().enumerate() {
            let path = shard_path(&self.dir, attr, self.shards_flushed);
            self.bytes_written += write_ids_segment(&path, &[ids])?;
            ids.clear();
        }
        self.flushed_rows += rows;
        self.shards_flushed += 1;
        Ok(())
    }

    /// Flushes the trailing partial shard, spills each dictionary's overlay
    /// and writes the manifest.  Returns the save counters.
    pub fn finish(mut self) -> DqResult<SaveStats> {
        let _span = dq_obs::span!("store.io.save");
        let total_rows = self.rows();
        let partial = self.buf.first().map_or(0, Vec::len);
        if partial > 0 {
            self.flush_shard()?;
        }
        let mut dict_entries_spilled = 0usize;
        for (attr, dict) in self.dicts.iter_mut().enumerate() {
            let overlay = dict.overlay();
            if !overlay.is_empty() || self.dict_chains[attr].is_empty() {
                let seg = self.dict_chains[attr].len();
                self.bytes_written +=
                    write_dict_segment(&dict_path(&self.dir, attr, seg), overlay)?;
                dict_entries_spilled += overlay.len();
                self.dict_chains[attr].push(overlay.len() as u64);
            }
            dict.mark_frozen();
        }
        let manifest = Manifest {
            schema: Arc::clone(&self.schema),
            instance_id: self.instance_id,
            version: self.version,
            shard_rows: self.shard_rows,
            rows: total_rows,
            identity_rows: true,
            dict_chains: self.dict_chains.clone(),
        };
        self.bytes_written += manifest.write(&self.dir)?;
        Ok(SaveStats {
            rows: total_rows,
            shards_written: self.shards_flushed,
            dict_entries_spilled,
            bytes_written: self.bytes_written,
            incremental: false,
        })
    }
}

// ---------------------------------------------------------------------------
// Opening
// ---------------------------------------------------------------------------

/// A persisted relation re-opened with memory-mapped id segments.
///
/// Dictionaries are fully resident (`O(distinct values)`); ids fault in
/// page-by-page as the shard-cursor paths scan them and can be dropped by
/// the kernel (or explicitly via [`ShardSource::release_shard`]) behind the
/// cursor.  Implements [`ShardSource`], so detection and discovery run over
/// it with the same code — and byte-identical output — as over an in-RAM
/// snapshot.
#[derive(Debug)]
pub struct MappedRelation {
    dir: PathBuf,
    schema: Arc<RelationSchema>,
    instance_id: u64,
    version: u64,
    shard_rows: usize,
    rows: usize,
    columns: Vec<Arc<Column>>,
    /// Explicit tuple ids, when row positions are not the identity.
    tuple_ids: Option<Vec<TupleId>>,
    row_lookup: OnceLock<FxHashMap<usize, usize>>,
}

/// Opens the persisted relation at `dir`.  Manifest, dictionary and
/// tuple-id segments are checksum-verified; shard id segments are
/// header-validated only (pass `verify = true` to
/// [`open_mmap_verified`] to fault every page in and verify them too).
pub fn open_mmap(dir: &Path) -> DqResult<MappedRelation> {
    open_relation(dir, false)
}

/// [`open_mmap`] with full payload checksum verification of every segment.
pub fn open_mmap_verified(dir: &Path) -> DqResult<MappedRelation> {
    open_relation(dir, true)
}

fn open_relation(dir: &Path, verify: bool) -> DqResult<MappedRelation> {
    let _span = dq_obs::span!("store.io.open");
    let manifest = Manifest::read(dir)?;
    let arity = manifest.schema.arity();
    let mut columns = Vec::with_capacity(arity);
    for attr in 0..arity {
        let interner = open_dict_chain(dir, attr, &manifest.dict_chains[attr])?;
        let mut segments = Vec::with_capacity(manifest.shard_count());
        for shard in 0..manifest.shard_count() {
            let expected = manifest.shard_len(shard);
            if expected == 0 && shard > 0 {
                continue;
            }
            segments.push(open_ids_segment(
                &shard_path(dir, attr, shard),
                expected,
                verify,
            )?);
        }
        let column = Column::from_mapped(interner, segments);
        if column.len() != manifest.rows {
            return Err(corrupt(
                &manifest_path(dir),
                format!(
                    "column {attr} carries {} rows, manifest expects {}",
                    column.len(),
                    manifest.rows
                ),
            ));
        }
        // Every id must resolve inside its dictionary; a cheap per-shard
        // max-check would fault everything in, so ids are validated lazily
        // by the resolving paths (out-of-range ids panic rather than read
        // out of bounds, because `ValueInterner::resolve` bounds-checks).
        columns.push(Arc::new(column));
    }
    let tuple_ids = if manifest.identity_rows {
        None
    } else {
        let path = rows_path(dir);
        let seg = open_segment(&path, Kind::TupleIds, true)?;
        let mut c = Cursor::new(seg.payload(), &path);
        let count = c.u64()? as usize;
        if count != manifest.rows {
            return Err(corrupt(&path, "tuple id count disagrees with manifest"));
        }
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(TupleId(c.u64()? as usize));
        }
        c.finish()?;
        Some(ids)
    };
    Ok(MappedRelation {
        dir: dir.to_path_buf(),
        schema: manifest.schema,
        instance_id: manifest.instance_id,
        version: manifest.version,
        shard_rows: manifest.shard_rows,
        rows: manifest.rows,
        columns,
        tuple_ids,
        row_lookup: OnceLock::new(),
    })
}

impl MappedRelation {
    /// The directory this relation was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Identity of the instance the persisted snapshot was taken from.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Version of the instance the persisted snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// All columns, by attribute position.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Are all columns' id segments actually memory-mapped (as opposed to
    /// decoded through the buffered fallback)?
    pub fn is_fully_mapped(&self) -> bool {
        self.columns.iter().all(|c| c.is_mapped())
    }

    /// Total bytes of the segment files on disk.
    pub fn disk_bytes(&self) -> u64 {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The classes of the persisted CSR posting sidecar of `attr`, if one
    /// was written ([`save_postings`]): each class is the (ascending) tuple
    /// ids of one value group with ≥ 2 members.  `Ok(None)` when no sidecar
    /// exists.
    pub fn posting_classes(&self, attr: usize) -> DqResult<Option<Vec<Vec<TupleId>>>> {
        let path = postings_path(&self.dir, attr);
        if !path.exists() {
            return Ok(None);
        }
        let seg = open_segment(&path, Kind::Postings, true)?;
        let mut c = Cursor::new(seg.payload(), &path);
        let classes = c.u64()? as usize;
        let mut out = Vec::with_capacity(classes.min(1 << 24));
        for _ in 0..classes {
            let len = c.u64()? as usize;
            let mut class = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                class.push(TupleId(c.u64()? as usize));
            }
            out.push(class);
        }
        c.finish()?;
        Ok(Some(out))
    }
}

impl ShardSource for MappedRelation {
    fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    fn column(&self, attr: usize) -> Arc<Column> {
        Arc::clone(&self.columns[attr])
    }

    fn tuple_id(&self, row: usize) -> TupleId {
        match &self.tuple_ids {
            None => TupleId(row),
            Some(ids) => ids[row],
        }
    }

    fn row_of(&self, id: TupleId) -> Option<usize> {
        match &self.tuple_ids {
            None => (id.0 < self.rows).then_some(id.0),
            Some(ids) => {
                let lookup = self
                    .row_lookup
                    .get_or_init(|| ids.iter().enumerate().map(|(row, t)| (t.0, row)).collect());
                lookup.get(&id.0).copied()
            }
        }
    }

    fn release_shard(&self, _shard: usize) {
        // Segments are per-shard files, so releasing the shard means
        // releasing each column's segment for it.  Column-level release is
        // coarse (a column whose segments span shards releases them all);
        // per-shard mapped columns — the layout `save_to` writes — release
        // exactly one shard's pages.
        for col in &self.columns {
            col.release_pages();
        }
    }
}

/// Persists the CSR posting sidecar of one single-attribute index: every
/// multi-row group's (ascending) tuple ids, in group order.  Re-opened via
/// [`MappedRelation::posting_classes`] these are exactly the classes of a
/// stripped partition, so FD discovery over a mapped relation can load its
/// base partitions without scanning any id segment.
pub fn save_postings(dir: &Path, attr: usize, index: &InternedIndex) -> DqResult<u64> {
    let mut payload_len = 8u64;
    let mut classes = 0u64;
    for (_, rows) in index.multi_groups() {
        payload_len += 8 + rows.len() as u64 * 8;
        classes += 1;
    }
    let path = postings_path(dir, attr);
    let mut w = SegmentWriter::create(&path, Kind::Postings, payload_len)?;
    w.write(&classes.to_le_bytes())?;
    let mut buf = Vec::with_capacity(8 << 10);
    for (_, rows) in index.multi_groups() {
        buf.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for &row in rows {
            buf.extend_from_slice(&(index.tuple_id(row).0 as u64).to_le_bytes());
            if buf.len() >= (8 << 10) {
                w.write(&buf)?;
                buf.clear();
            }
        }
    }
    w.write(&buf)?;
    w.finish()
}

// `release_shard` on MappedRelation is column-granular; see the comment in
// the impl.  A per-(column, shard) release would need segment handles keyed
// by shard, which the `Column` keeps private — revisit if profiles show
// resident creep on the cursor paths.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, RelationSchema};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dq_persist_test_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_instance(n: usize) -> RelationInstance {
        let schema = RelationSchema::new(
            "t",
            [("A", Domain::Int), ("B", Domain::Text), ("C", Domain::Real)],
        );
        let mut inst = RelationInstance::from_schema(schema);
        for i in 0..n {
            inst.insert_values([
                Value::int((i % 13) as i64),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::str(format!("name-{}", i % 29))
                },
                Value::real(i as f64 * 0.5),
            ])
            .unwrap();
        }
        inst
    }

    fn assert_equals_store(
        mapped: &MappedRelation,
        instance: &RelationInstance,
        store: &ColumnarStore,
    ) {
        assert_eq!(mapped.len(), store.len());
        for attr in 0..instance.schema().arity() {
            let m = mapped.column(attr);
            let s = store.column(instance, attr);
            assert_eq!(m.len(), s.len());
            for row in 0..store.len() {
                assert_eq!(
                    m.interner().resolve(m.id_at(row)),
                    s.interner().resolve(s.id_at(row)),
                    "attr {attr} row {row}"
                );
            }
            // Ids themselves are identical too: first-seen order round-trips.
            assert_eq!(m.interner().values(), s.interner().values());
        }
        for row in 0..store.len() {
            assert_eq!(mapped.tuple_id(row), store.tuple_id(row), "row {row}");
        }
    }

    #[test]
    fn save_open_round_trip_is_byte_identical() {
        let dir = tmp_dir("roundtrip");
        let inst = sample_instance(500);
        let store = inst.columnar();
        let stats = store
            .save_to_with_shard_rows(&inst, &dir, 64)
            .expect("save");
        assert!(!stats.incremental);
        assert_eq!(stats.rows, 500);
        assert_eq!(stats.shards_written, 500usize.div_ceil(64));
        for verify in [false, true] {
            let mapped = if verify {
                open_mmap_verified(&dir).expect("open verified")
            } else {
                open_mmap(&dir).expect("open")
            };
            assert_eq!(mapped.schema().name(), "t");
            assert_eq!(mapped.shard_count(), 500usize.div_ceil(64));
            assert_equals_store(&mapped, &inst, &store);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_save_spills_only_the_overlay() {
        let dir = tmp_dir("incremental");
        let mut inst = sample_instance(100);
        let store = inst.columnar();
        store
            .save_to_with_shard_rows(&inst, &dir, 64)
            .expect("first save");
        // Append rows: some reuse dictionary entries, one brings new values.
        for i in 0..40 {
            inst.insert_values([
                Value::int((i % 13) as i64),
                Value::str(if i == 7 {
                    "brand-new".into()
                } else {
                    format!("name-{}", i % 29)
                }),
                Value::real(1.25),
            ])
            .unwrap();
        }
        let store2 = inst.columnar();
        let stats = store2
            .save_to_with_shard_rows(&inst, &dir, 64)
            .expect("second save");
        assert!(
            stats.incremental,
            "append-only extension saves incrementally"
        );
        // 100 rows = 1 full shard + 36-row partial; the partial shard and
        // the new one are rewritten, shard 0 is untouched.
        assert_eq!(stats.shards_written, 2);
        // Only genuinely new dictionary entries spill: "brand-new" plus the
        // new reals (1.25 and nothing else — 0.5-steps of the first 100 rows
        // covered many, but 1.25 arrived with the appends only if absent).
        assert!(stats.dict_entries_spilled < 10, "{stats:?}");
        let mapped = open_mmap_verified(&dir).expect("open after incremental");
        assert_equals_store(&mapped, &inst, &store2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edits_force_a_full_rewrite_that_still_round_trips() {
        use crate::instance::CellRef;
        let dir = tmp_dir("edits");
        let mut inst = sample_instance(80);
        inst.columnar()
            .save_to_with_shard_rows(&inst, &dir, 32)
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(3), 1), Value::str("edited"))
            .unwrap();
        let store = inst.columnar();
        let stats = store.save_to_with_shard_rows(&inst, &dir, 32).unwrap();
        assert!(
            !stats.incremental,
            "edits invalidate the append-only fast path"
        );
        let mapped = open_mmap_verified(&dir).unwrap();
        assert_equals_store(&mapped, &inst, &store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deletions_persist_explicit_tuple_ids() {
        let dir = tmp_dir("deadrows");
        let mut inst = sample_instance(50);
        inst.remove(TupleId(10));
        inst.remove(TupleId(33));
        let store = inst.columnar();
        store.save_to_with_shard_rows(&inst, &dir, 16).unwrap();
        let mapped = open_mmap_verified(&dir).unwrap();
        assert_equals_store(&mapped, &inst, &store);
        assert_eq!(mapped.row_of(TupleId(10)), None);
        assert_eq!(mapped.row_of(TupleId(11)), store.row_of(TupleId(11)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_segment_is_a_typed_error_not_a_panic() {
        let dir = tmp_dir("corrupt");
        let inst = sample_instance(60);
        inst.columnar()
            .save_to_with_shard_rows(&inst, &dir, 16)
            .unwrap();
        // Flip a byte inside a dictionary payload.
        let dict = dict_path(&dir, 1, 0);
        let mut bytes = fs::read(&dict).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&dict, &bytes).unwrap();
        match open_mmap(&dir) {
            Err(DqError::CorruptSegment { path, .. }) => assert!(path.contains("col1.dict.0")),
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_is_a_typed_error() {
        let dir = tmp_dir("truncated");
        let inst = sample_instance(60);
        inst.columnar()
            .save_to_with_shard_rows(&inst, &dir, 16)
            .unwrap();
        let shard = shard_path(&dir, 0, 1);
        let bytes = fs::read(&shard).unwrap();
        fs::write(&shard, &bytes[..bytes.len() - 9]).unwrap();
        match open_mmap(&dir) {
            Err(DqError::CorruptSegment { .. }) => {}
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let dir = tmp_dir("version");
        let inst = sample_instance(20);
        inst.columnar()
            .save_to_with_shard_rows(&inst, &dir, 16)
            .unwrap();
        let path = manifest_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        // Re-stamp the checksum so only the version differs.
        let payload_end = bytes.len() - 8;
        let mut hash = Fnv::new();
        hash.update(&bytes[..payload_end]);
        let sum = hash.finish().to_le_bytes();
        bytes[payload_end..].copy_from_slice(&sum);
        fs::write(&path, &bytes).unwrap();
        match open_mmap(&dir) {
            Err(DqError::VersionMismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_clean_open_failure() {
        let dir = tmp_dir("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        match open_mmap(&dir) {
            Err(DqError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_streams_rows_and_appends_with_frozen_dictionaries() {
        let dir = tmp_dir("writer");
        let inst = sample_instance(150);
        {
            let mut w =
                RelationWriter::create(&dir, Arc::clone(inst.schema()), 32).expect("create");
            for (_, tuple) in inst.iter() {
                w.push_row((0..3).map(|a| tuple.get(a).clone())).unwrap();
            }
            let stats = w.finish().unwrap();
            assert_eq!(stats.rows, 150);
        }
        let store = inst.columnar();
        let mapped = open_mmap_verified(&dir).unwrap();
        assert_equals_store(&mapped, &inst, &store);

        // Append through a re-opened writer: dictionaries come back frozen.
        {
            let mut w = RelationWriter::append_to(&dir).expect("append_to");
            assert_eq!(w.rows(), 150);
            w.push_row([Value::int(1), Value::str("name-1"), Value::real(0.5)])
                .unwrap();
            w.push_row([
                Value::int(2),
                Value::str("appended-only"),
                Value::real(9.75),
            ])
            .unwrap();
            let stats = w.finish().unwrap();
            assert_eq!(stats.rows, 152);
            // Only the two genuinely new values spilled ("appended-only",
            // 9.75): everything else was frozen on disk already.
            assert_eq!(stats.dict_entries_spilled, 2);
        }
        let mapped = open_mmap_verified(&dir).unwrap();
        assert_eq!(mapped.len(), 152);
        let b = mapped.column(1);
        assert_eq!(
            b.interner().resolve(b.id_at(151)),
            &Value::str("appended-only")
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_rejects_bad_rows() {
        let dir = tmp_dir("badrows");
        let schema = Arc::new(RelationSchema::new("r", [("A", Domain::Int)]));
        let mut w = RelationWriter::create(&dir, schema, 8).unwrap();
        assert!(matches!(
            w.push_row([Value::str("nope")]),
            Err(DqError::DomainViolation { .. })
        ));
        assert!(matches!(
            w.push_row([Value::int(1), Value::int(2)]),
            Err(DqError::ArityMismatch { .. })
        ));
        assert!(matches!(
            w.push_row(std::iter::empty()),
            Err(DqError::ArityMismatch { .. })
        ));
        w.push_row([Value::int(5)]).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.rows, 1);
        let mapped = open_mmap_verified(&dir).unwrap();
        assert_eq!(mapped.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn postings_sidecar_round_trips_partition_classes() {
        let dir = tmp_dir("postings");
        let inst = sample_instance(90);
        let store = inst.columnar();
        store.save_to_with_shard_rows(&inst, &dir, 32).unwrap();
        let index = InternedIndex::build(&inst, &store, &[0], 1);
        save_postings(&dir, 0, &index).unwrap();
        let mapped = open_mmap(&dir).unwrap();
        let classes = mapped.posting_classes(0).unwrap().expect("sidecar exists");
        let expected: Vec<Vec<TupleId>> = index
            .multi_groups()
            .map(|(_, rows)| rows.iter().map(|&r| index.tuple_id(r)).collect())
            .collect();
        assert_eq!(classes, expected);
        assert_eq!(mapped.posting_classes(1).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
