//! Compact hash indexes over interned columns.
//!
//! [`InternedIndex`] replaces the `HashMap<Vec<Value>, Vec<TupleId>>` of
//! [`HashIndex`](crate::index::HashIndex) with machine-word keys and a CSR
//! (offsets + postings) group layout:
//!
//! * **keys** — a tuple's projection onto the index attributes is a vector
//!   of per-column [`ValueId`]s; because dictionaries are dense, the whole
//!   projection packs *exactly* (no lossy hashing) into a single `u64` by
//!   mixed-radix encoding whenever the product of the column dictionary
//!   sizes fits, into a `u128` by 32-bit shifts for up to four attributes
//!   otherwise, and into a boxed id slice only for very wide keys;
//! * **groups** — instead of one heap `Vec<TupleId>` per distinct key, all
//!   row numbers live in a single postings array indexed by a group offset
//!   table, eliminating per-group allocations;
//! * **sharding** — rows are processed in the fixed-size shards of the
//!   backing [`ColumnarStore`], so one index build parallelizes across a
//!   thread pool and a single huge dependency no longer serializes.
//!
//! Equality of ids is equality of values (per column), so the groups are
//! *identical* to the value-keyed index's groups — detection reports stay
//! byte-identical — while a million-tuple index shrinks from `Vec<Value>`
//! keys (~100s of MB) to a few tens of bytes per distinct key.

use super::columnar::{Column, ColumnarStore, SHARD_ROWS};
use super::fx::FxHashMap;
use super::interner::ValueId;
use crate::instance::{CellChange, RelationInstance, TupleId};
use crate::value::Value;
use std::hash::Hash;
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A packed projection of one row onto an attribute list; used by detectors
/// to sub-partition groups (e.g. by RHS projection) without materializing
/// values.  Produced by [`KeyCodec::pack_row`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProjectionKey {
    /// Mixed-radix exact packing into one word.
    U64(u64),
    /// 32-bit-per-attribute shift packing (up to four attributes).
    U128(u128),
    /// One id per attribute, for very wide projections.
    Wide(Box<[ValueId]>),
}

/// How a key over a fixed column list is packed.
#[derive(Clone, Debug)]
pub(crate) enum Repr {
    /// Mixed-radix into `u64`: radix `i` is the dictionary size of column
    /// `i`, so the packing is a bijection on id tuples.
    Radix(Vec<u64>),
    /// 32 bits per id in a `u128` (width ≤ 4).
    Shift,
    /// Boxed id slice.
    Wide,
}

/// How an append-time extension adapts a mixed-radix `u64` packing whose
/// per-column radices new dictionary entries outgrew.  Computed by
/// [`widen_plan`]; `Keep` means the existing packing is still exact.
pub(crate) enum WidenPlan {
    /// No key column's dictionary outgrew its radix: reuse the packing.
    Keep,
    /// Re-pack the existing `u64` keys under the widened radices (the new
    /// product still fits in 64 bits).
    Widen(Vec<u64>),
    /// The widened product overflows `u64`: switch the index to the
    /// radix-free 32-bit shift packing (width ≤ 4 only).
    ToShift,
}

/// Decides how (whether) an extension can reuse `prev_repr` over the current
/// `columns`, whose dictionaries may have grown since the packing was chosen.
/// Returns `None` when no exact packing can be carried over (a > 4-wide
/// radix key whose widened product overflows `u64`) and the caller must fall
/// back to a full rebuild.  The chosen plan always reproduces the repr a
/// from-scratch [`KeyCodec::new`] would pick, so extended artifacts stay
/// indistinguishable from fresh builds.
pub(crate) fn widen_plan(prev_repr: &Repr, columns: &[Arc<Column>]) -> Option<WidenPlan> {
    let Repr::Radix(radices) = prev_repr else {
        // Shift and wide packings are radix-free and always extendable.
        return Some(WidenPlan::Keep);
    };
    if columns
        .iter()
        .zip(radices)
        .all(|(col, &radix)| col.distinct() as u64 <= radix)
    {
        return Some(WidenPlan::Keep);
    }
    let widened: Vec<u64> = columns.iter().map(|c| c.distinct().max(1) as u64).collect();
    let mut product = 1u64;
    let fits = widened
        .iter()
        .all(|&radix| product.checked_mul(radix).map(|p| product = p).is_some());
    if fits {
        Some(WidenPlan::Widen(widened))
    } else if columns.len() <= 4 {
        Some(WidenPlan::ToShift)
    } else {
        None
    }
}

/// Packs row projections over a fixed list of columns into compact keys.
///
/// The packing is exact (collision-free): equal keys mean equal id tuples,
/// which per-column dictionaries guarantee means equal value tuples.
#[derive(Clone, Debug)]
pub struct KeyCodec {
    columns: Vec<Arc<Column>>,
    pub(crate) repr: Repr,
}

impl KeyCodec {
    /// A codec over `columns` (the dictionaries are frozen once a column is
    /// built, so the chosen radices stay valid for the store's lifetime).
    pub fn new(columns: Vec<Arc<Column>>) -> Self {
        let mut product: u64 = 1;
        let mut radix_fits = true;
        let mut radices = Vec::with_capacity(columns.len());
        for col in &columns {
            let radix = col.distinct().max(1) as u64;
            radices.push(radix);
            match product.checked_mul(radix) {
                Some(p) => product = p,
                None => {
                    radix_fits = false;
                    break;
                }
            }
        }
        let repr = if radix_fits {
            Repr::Radix(radices)
        } else if columns.len() <= 4 {
            Repr::Shift
        } else {
            Repr::Wide
        };
        KeyCodec { columns, repr }
    }

    /// The columns this codec packs over.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Builds a codec from parts (extension paths carry a repr forward).
    pub(crate) fn from_parts(columns: Vec<Arc<Column>>, repr: Repr) -> Self {
        KeyCodec { columns, repr }
    }

    #[inline]
    pub(crate) fn pack_u64_row(radices: &[u64], columns: &[Arc<Column>], row: usize) -> u64 {
        let mut acc = 0u64;
        for (col, &radix) in columns.iter().zip(radices) {
            acc = acc * radix + col.id_at(row).0 as u64;
        }
        acc
    }

    #[inline]
    pub(crate) fn pack_u128_row(columns: &[Arc<Column>], row: usize) -> u128 {
        let mut acc = 0u128;
        for col in columns {
            acc = (acc << 32) | col.id_at(row).0 as u128;
        }
        acc
    }

    pub(crate) fn pack_u64_ids(radices: &[u64], ids: &[ValueId]) -> u64 {
        ids.iter()
            .zip(radices)
            .fold(0u64, |acc, (id, &radix)| acc * radix + id.0 as u64)
    }

    pub(crate) fn pack_u128_ids(ids: &[ValueId]) -> u128 {
        ids.iter().fold(0u128, |acc, id| (acc << 32) | id.0 as u128)
    }

    pub(crate) fn unpack_u64_into(radices: &[u64], mut key: u64, out: &mut [ValueId]) {
        for (slot, &radix) in out.iter_mut().zip(radices).rev() {
            *slot = ValueId((key % radix) as u32);
            key /= radix;
        }
    }

    pub(crate) fn unpack_u64(radices: &[u64], key: u64) -> Vec<ValueId> {
        let mut out = vec![ValueId(0); radices.len()];
        Self::unpack_u64_into(radices, key, &mut out);
        out
    }

    pub(crate) fn unpack_u128_into(mut key: u128, out: &mut [ValueId]) {
        for slot in out.iter_mut().rev() {
            *slot = ValueId((key & u32::MAX as u128) as u32);
            key >>= 32;
        }
    }

    pub(crate) fn unpack_u128(width: usize, key: u128) -> Vec<ValueId> {
        let mut out = vec![ValueId(0); width];
        Self::unpack_u128_into(key, &mut out);
        out
    }

    /// The packed projection of row `row`.
    #[inline]
    pub fn pack_row(&self, row: usize) -> ProjectionKey {
        match &self.repr {
            Repr::Radix(radices) => {
                ProjectionKey::U64(Self::pack_u64_row(radices, &self.columns, row))
            }
            Repr::Shift => ProjectionKey::U128(Self::pack_u128_row(&self.columns, row)),
            Repr::Wide => ProjectionKey::Wide(
                self.columns
                    .iter()
                    .map(|c| c.id_at(row))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            ),
        }
    }
}

/// The group map of an [`InternedIndex`], monomorphized per key packing so
/// entries stay as small as the packing allows.
#[derive(Clone, Debug)]
enum GroupMap {
    U64(FxHashMap<u64, u32>),
    U128(FxHashMap<u128, u32>),
    Wide(FxHashMap<Box<[ValueId]>, u32>),
}

/// A hash index over interned columns: packed keys, CSR group storage.
///
/// Group postings are *row numbers* of the backing [`ColumnarStore`] (dense
/// positions, not tuple ids); translate with [`InternedIndex::tuple_id`].
/// Rows ascend within each group, matching the ascending-`TupleId` group
/// order of [`HashIndex`](crate::index::HashIndex).
#[derive(Clone, Debug)]
pub struct InternedIndex {
    attrs: Vec<usize>,
    store: Arc<ColumnarStore>,
    codec: KeyCodec,
    map: GroupMap,
    /// Group → start of its postings; `offsets.len() == groups + 1`.
    offsets: Vec<u32>,
    /// Row numbers, grouped and ascending within each group.
    postings: Vec<u32>,
}

impl InternedIndex {
    /// Builds the index of `instance` on `attrs` over the columnar snapshot
    /// `store`, using up to `threads` worker threads for the shard scan.
    pub fn build(
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
        attrs: &[usize],
        threads: usize,
    ) -> Self {
        Self::build_with_shard_rows(instance, store, attrs, threads, SHARD_ROWS)
    }

    /// [`build`](Self::build) with an explicit shard size (exposed for
    /// tuning and for exercising the multi-shard merge path in tests).
    pub fn build_with_shard_rows(
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
        attrs: &[usize],
        threads: usize,
        shard_rows: usize,
    ) -> Self {
        let columns: Vec<Arc<Column>> = attrs.iter().map(|&a| store.column(instance, a)).collect();
        let codec = KeyCodec::new(columns);
        let n = store.len();
        let (map, offsets, postings) = match &codec.repr {
            Repr::Radix(radices) => {
                let (map, offsets, postings) = build_groups(n, threads, shard_rows, |row| {
                    KeyCodec::pack_u64_row(radices, &codec.columns, row)
                });
                (GroupMap::U64(map), offsets, postings)
            }
            Repr::Shift => {
                let (map, offsets, postings) = build_groups(n, threads, shard_rows, |row| {
                    KeyCodec::pack_u128_row(&codec.columns, row)
                });
                (GroupMap::U128(map), offsets, postings)
            }
            Repr::Wide => {
                let (map, offsets, postings) = build_groups(n, threads, shard_rows, |row| {
                    codec
                        .columns
                        .iter()
                        .map(|c| c.id_at(row))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                });
                (GroupMap::Wide(map), offsets, postings)
            }
        };
        InternedIndex {
            attrs: attrs.to_vec(),
            store: Arc::clone(store),
            codec,
            map,
            offsets,
            postings,
        }
    }

    /// Extends `prev` — an index of the same instance on the same attribute
    /// list, built at an earlier version — after append-only mutations:
    /// the group table is cloned, the old CSR postings are memcpy'd group by
    /// group, and only the *appended* rows are packed and hashed.
    ///
    /// A mixed-radix `u64` codec whose per-column radices new dictionary
    /// entries outgrew is *re-packed* rather than rebuilt: the existing keys
    /// are transcoded under the widened radices (or, when the widened
    /// product no longer fits 64 bits, into the radix-free shift packing) —
    /// an O(distinct keys) transform that leaves offsets and postings
    /// untouched.  Only a > 4-wide radix key whose widened product overflows
    /// `u64` returns `None`, sending the caller to a full rebuild.
    ///
    /// `store` must be the current columnar snapshot of `instance`, and the
    /// caller must guarantee the append-only property between the two
    /// versions ([`RelationInstance::append_only_since`]); shared prefix
    /// rows then receive identical dictionary ids (dictionaries assign ids
    /// in first-seen row order), so extended groups equal built-from-scratch
    /// groups exactly.
    pub fn try_extended(
        prev: &InternedIndex,
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
    ) -> Option<InternedIndex> {
        if store.instance_id() != prev.store.instance_id() || store.len() < prev.store.len() {
            return None;
        }
        let columns: Vec<Arc<Column>> = prev
            .attrs
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        let (seed, repr) = match (widen_plan(&prev.codec.repr, &columns)?, &prev.map) {
            (WidenPlan::Keep, map) => (map.clone(), prev.codec.repr.clone()),
            (WidenPlan::Widen(widened), GroupMap::U64(m)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let repacked = m
                    .iter()
                    .map(|(&k, &g)| {
                        (
                            KeyCodec::pack_u64_ids(&widened, &KeyCodec::unpack_u64(old, k)),
                            g,
                        )
                    })
                    .collect();
                (GroupMap::U64(repacked), Repr::Radix(widened))
            }
            (WidenPlan::ToShift, GroupMap::U64(m)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let shifted = m
                    .iter()
                    .map(|(&k, &g)| (KeyCodec::pack_u128_ids(&KeyCodec::unpack_u64(old, k)), g))
                    .collect();
                (GroupMap::U128(shifted), Repr::Shift)
            }
            _ => unreachable!("widening plans only arise from u64 group maps"),
        };
        let codec = KeyCodec { columns, repr };
        let new_rows = prev.store.len()..store.len();
        let (map, offsets, postings) = match (seed, &codec.repr) {
            (GroupMap::U64(m), Repr::Radix(radices)) => {
                let (map, offsets, postings) =
                    extend_groups(m, &prev.offsets, &prev.postings, new_rows, |row| {
                        KeyCodec::pack_u64_row(radices, &codec.columns, row)
                    });
                (GroupMap::U64(map), offsets, postings)
            }
            (GroupMap::U128(m), Repr::Shift) => {
                let (map, offsets, postings) =
                    extend_groups(m, &prev.offsets, &prev.postings, new_rows, |row| {
                        KeyCodec::pack_u128_row(&codec.columns, row)
                    });
                (GroupMap::U128(map), offsets, postings)
            }
            (GroupMap::Wide(m), Repr::Wide) => {
                let (map, offsets, postings) =
                    extend_groups(m, &prev.offsets, &prev.postings, new_rows, |row| {
                        codec
                            .columns
                            .iter()
                            .map(|c| c.id_at(row))
                            .collect::<Vec<_>>()
                            .into_boxed_slice()
                    });
                (GroupMap::Wide(map), offsets, postings)
            }
            _ => unreachable!("map variant always matches codec repr"),
        };
        Some(InternedIndex {
            attrs: prev.attrs.clone(),
            store: Arc::clone(store),
            codec,
            map,
            offsets,
            postings,
        })
    }

    /// Patches `prev` — an index of the same instance on the same attribute
    /// list, built at an earlier version — after journaled cell writes
    /// (plus, possibly, interleaved insertions): each row whose key cells
    /// changed is moved out of its old CSR group and into the group of its
    /// new key, interning (hashing) at most one new key per move; rows whose
    /// changes touch only non-key attributes never move at all.  Groups left
    /// empty are dropped and the numbering compacted, so the group table is
    /// indistinguishable from a fresh build's.  The codec is carried forward
    /// under the same widening rules as [`try_extended`](Self::try_extended)
    /// — dictionary growth from new cell values re-packs the keys in place,
    /// and only the same > 4-wide radix overflow returns `None` (full
    /// rebuild).
    ///
    /// `store` must be the current (patched) columnar snapshot and `changes`
    /// the coalesced delta ([`RelationInstance::changed_cells_since`])
    /// between `prev`'s version and now.  Patched snapshots keep every old
    /// id valid (dictionaries only append), so old rows keep their row
    /// numbers and unchanged groups are bit-identical.
    pub fn try_patched(
        prev: &InternedIndex,
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
        changes: &[CellChange],
    ) -> Option<InternedIndex> {
        if store.instance_id() != prev.store.instance_id() || store.len() < prev.store.len() {
            return None;
        }
        let columns: Vec<Arc<Column>> = prev
            .attrs
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        let (seed, repr) = match (widen_plan(&prev.codec.repr, &columns)?, &prev.map) {
            (WidenPlan::Keep, map) => (map.clone(), prev.codec.repr.clone()),
            (WidenPlan::Widen(widened), GroupMap::U64(m)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let repacked = m
                    .iter()
                    .map(|(&k, &g)| {
                        (
                            KeyCodec::pack_u64_ids(&widened, &KeyCodec::unpack_u64(old, k)),
                            g,
                        )
                    })
                    .collect();
                (GroupMap::U64(repacked), Repr::Radix(widened))
            }
            (WidenPlan::ToShift, GroupMap::U64(m)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let shifted = m
                    .iter()
                    .map(|(&k, &g)| (KeyCodec::pack_u128_ids(&KeyCodec::unpack_u64(old, k)), g))
                    .collect();
                (GroupMap::U128(shifted), Repr::Shift)
            }
            _ => unreachable!("widening plans only arise from u64 group maps"),
        };
        let codec = KeyCodec { columns, repr };
        // Rows of the previous snapshot whose key cells changed.  Cell
        // writes never change liveness, so those rows keep their numbers in
        // the new store; changes to tuples appended *after* `prev` have no
        // previous row and are covered by the append pass below.
        let mut moved: Vec<usize> = changes
            .iter()
            .filter(|c| prev.attrs.contains(&c.cell.attr))
            .filter_map(|c| prev.store.row_of(c.cell.tuple))
            .collect();
        moved.sort_unstable();
        moved.dedup();
        let new_rows = prev.store.len()..store.len();
        let (map, offsets, postings) = match (seed, &codec.repr) {
            (GroupMap::U64(m), Repr::Radix(radices)) => {
                let (map, offsets, postings) =
                    patch_groups(m, &prev.offsets, &prev.postings, &moved, new_rows, |row| {
                        KeyCodec::pack_u64_row(radices, &codec.columns, row)
                    });
                (GroupMap::U64(map), offsets, postings)
            }
            (GroupMap::U128(m), Repr::Shift) => {
                let (map, offsets, postings) =
                    patch_groups(m, &prev.offsets, &prev.postings, &moved, new_rows, |row| {
                        KeyCodec::pack_u128_row(&codec.columns, row)
                    });
                (GroupMap::U128(map), offsets, postings)
            }
            (GroupMap::Wide(m), Repr::Wide) => {
                let (map, offsets, postings) =
                    patch_groups(m, &prev.offsets, &prev.postings, &moved, new_rows, |row| {
                        codec
                            .columns
                            .iter()
                            .map(|c| c.id_at(row))
                            .collect::<Vec<_>>()
                            .into_boxed_slice()
                    });
                (GroupMap::Wide(map), offsets, postings)
            }
            _ => unreachable!("map variant always matches codec repr"),
        };
        Some(InternedIndex {
            attrs: prev.attrs.clone(),
            store: Arc::clone(store),
            codec,
            map,
            offsets,
            postings,
        })
    }

    /// The attribute positions this index is keyed on.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// The columnar snapshot behind the index.
    pub fn store(&self) -> &Arc<ColumnarStore> {
        &self.store
    }

    /// The key columns, positionally aligned with [`attrs`](Self::attrs).
    pub fn columns(&self) -> &[Arc<Column>] {
        self.codec.columns()
    }

    /// Number of distinct keys.
    pub fn group_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.group_count() == 0
    }

    /// Translates a group row number to its tuple id.
    #[inline]
    pub fn tuple_id(&self, row: u32) -> TupleId {
        self.store.tuple_id(row as usize)
    }

    #[inline]
    fn group_rows(&self, group: u32) -> &[u32] {
        let g = group as usize;
        &self.postings[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// The id of `value` in the `pos`-th key column, if any tuple carries it
    /// there.
    pub fn lookup_id(&self, pos: usize, value: &Value) -> Option<ValueId> {
        self.codec.columns[pos].interner().lookup(value)
    }

    /// Rows whose projection equals the id tuple `key` (empty when absent).
    pub fn rows_for_ids(&self, key: &[ValueId]) -> &[u32] {
        debug_assert_eq!(key.len(), self.attrs.len());
        let group = match (&self.map, &self.codec.repr) {
            (GroupMap::U64(m), Repr::Radix(radices)) => {
                m.get(&KeyCodec::pack_u64_ids(radices, key))
            }
            (GroupMap::U128(m), _) => m.get(&KeyCodec::pack_u128_ids(key)),
            (GroupMap::Wide(m), _) => m.get(key),
            _ => unreachable!("map variant always matches codec repr"),
        };
        match group {
            Some(&g) => self.group_rows(g),
            None => &[],
        }
    }

    /// Rows whose projection equals the value tuple `key`.  A value absent
    /// from its column's dictionary cannot match any row.
    pub fn rows_for_values(&self, key: &[Value]) -> &[u32] {
        let mut ids = Vec::with_capacity(key.len());
        for (pos, v) in key.iter().enumerate() {
            match self.lookup_id(pos, v) {
                Some(id) => ids.push(id),
                None => return &[],
            }
        }
        self.rows_for_ids(&ids)
    }

    /// Does any tuple project to the value tuple `key`?
    pub fn contains_values(&self, key: &[Value]) -> bool {
        !self.rows_for_values(key).is_empty()
    }

    /// Iterates over `(key ids, group rows)` pairs of groups with at least
    /// `min_rows` rows, filtering on group size *before* decoding the key —
    /// on high-cardinality indexes almost every group is a singleton, and
    /// skipping their decode avoids one small allocation per distinct key.
    fn groups_with_min(
        &self,
        min_rows: usize,
    ) -> Box<dyn Iterator<Item = (Vec<ValueId>, &[u32])> + '_> {
        let width = self.attrs.len();
        match (&self.map, &self.codec.repr) {
            (GroupMap::U64(m), Repr::Radix(radices)) => {
                Box::new(m.iter().filter_map(move |(&k, &g)| {
                    let rows = self.group_rows(g);
                    (rows.len() >= min_rows).then(|| (KeyCodec::unpack_u64(radices, k), rows))
                }))
            }
            (GroupMap::U128(m), _) => Box::new(m.iter().filter_map(move |(&k, &g)| {
                let rows = self.group_rows(g);
                (rows.len() >= min_rows).then(|| (KeyCodec::unpack_u128(width, k), rows))
            })),
            (GroupMap::Wide(m), _) => Box::new(m.iter().filter_map(move |(k, &g)| {
                let rows = self.group_rows(g);
                (rows.len() >= min_rows).then(|| (k.to_vec(), rows))
            })),
            _ => unreachable!("map variant always matches codec repr"),
        }
    }

    /// Iterates over `(key ids, group rows)` pairs in unspecified order.
    pub fn groups(&self) -> Box<dyn Iterator<Item = (Vec<ValueId>, &[u32])> + '_> {
        self.groups_with_min(0)
    }

    /// Iterates over the row slices of every group, in CSR (first-seen)
    /// order, without touching the key map at all.  Consumers that only
    /// need the grouping — stripped partitions, `g3` tallies — skip the
    /// per-group key decode entirely.
    pub fn group_rows_iter(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .windows(2)
            .map(|w| &self.postings[w[0] as usize..w[1] as usize])
    }

    /// Groups containing at least two rows — the only candidates for
    /// FD-style pair violations.  Singleton keys are never decoded.
    pub fn multi_groups(&self) -> impl Iterator<Item = (Vec<ValueId>, &[u32])> {
        self.groups_with_min(2)
    }

    /// Approximate heap bytes of the index itself (map + offsets +
    /// postings).  The backing columns are shared across indexes and
    /// reported separately by [`ColumnarStore::stats`].
    pub fn approx_heap_bytes(&self) -> usize {
        let map_bytes = match &self.map {
            GroupMap::U64(m) => m.capacity() * (size_of::<(u64, u32)>() + 1),
            GroupMap::U128(m) => m.capacity() * (size_of::<(u128, u32)>() + 1),
            GroupMap::Wide(m) => {
                m.capacity() * (size_of::<(Box<[ValueId]>, u32)>() + 1)
                    + m.keys()
                        .map(|k| k.len() * size_of::<ValueId>())
                        .sum::<usize>()
            }
        };
        map_bytes
            + self.offsets.capacity() * size_of::<u32>()
            + self.postings.capacity() * size_of::<u32>()
    }
}

/// Per-shard scan output: distinct keys in first-seen order, each row's
/// local group, and local group sizes.
struct ShardGroups<K> {
    keys: Vec<K>,
    row_groups: Vec<u32>,
    counts: Vec<u32>,
}

fn scan_shard<K: Eq + Hash + Clone>(
    rows: std::ops::Range<usize>,
    key_at: &(impl Fn(usize) -> K + ?Sized),
) -> ShardGroups<K> {
    let mut map: FxHashMap<K, u32> = FxHashMap::default();
    let mut keys = Vec::new();
    let mut row_groups = Vec::with_capacity(rows.len());
    let mut counts: Vec<u32> = Vec::new();
    for row in rows {
        let key = key_at(row);
        let next = counts.len() as u32;
        let before = map.len();
        let group = *map.entry(key.clone()).or_insert(next);
        if map.len() > before {
            keys.push(key);
            counts.push(0);
        }
        counts[group as usize] += 1;
        row_groups.push(group);
    }
    ShardGroups {
        keys,
        row_groups,
        counts,
    }
}

/// Two-pass CSR construction: scan shards (in parallel when `threads > 1`)
/// into local group tables, merge them in shard order, then scatter row
/// numbers into a single postings array.  Processing shards in order keeps
/// postings ascending within each group.
fn build_groups<K: Eq + Hash + Clone + Send>(
    n_rows: usize,
    threads: usize,
    shard_rows: usize,
    key_at: impl Fn(usize) -> K + Sync,
) -> (FxHashMap<K, u32>, Vec<u32>, Vec<u32>) {
    let shard_rows = shard_rows.max(1);
    let shard_count = n_rows.div_ceil(shard_rows).max(1);
    let shard_range = |s: usize| (s * shard_rows).min(n_rows)..((s + 1) * shard_rows).min(n_rows);

    let shards: Vec<ShardGroups<K>> = if threads <= 1 || shard_count <= 1 {
        (0..shard_count)
            .map(|s| scan_shard(shard_range(s), &key_at))
            .collect()
    } else {
        // Scoped workers claim shards through an atomic cursor (uneven
        // group skew balances across threads).
        let slots: Vec<Mutex<Option<ShardGroups<K>>>> =
            (0..shard_count).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(shard_count) {
                scope.spawn(|| loop {
                    let s = cursor.fetch_add(1, Ordering::Relaxed);
                    if s >= shard_count {
                        break;
                    }
                    *slots[s].lock().expect("shard slot poisoned") =
                        Some(scan_shard(shard_range(s), &key_at));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("shard slot poisoned")
                    .expect("every shard scanned before scope exit")
            })
            .collect()
    };

    // Merge: assign global group numbers in shard-then-first-seen order.
    let mut map: FxHashMap<K, u32> = FxHashMap::default();
    let mut counts: Vec<u32> = Vec::new();
    let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(shards.len());
    for shard in &shards {
        let remap: Vec<u32> = shard
            .keys
            .iter()
            .map(|key| {
                let next = counts.len() as u32;
                let before = map.len();
                let group = *map.entry(key.clone()).or_insert(next);
                if map.len() > before {
                    counts.push(0);
                }
                group
            })
            .collect();
        for (local, &count) in shard.counts.iter().enumerate() {
            counts[remap[local] as usize] += count;
        }
        remaps.push(remap);
    }

    // Prefix sums, then scatter rows in shard order so postings ascend
    // within each group.
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &count in &counts {
        acc += count;
        offsets.push(acc);
    }
    let mut cursors: Vec<u32> = offsets[..counts.len()].to_vec();
    let mut postings = vec![0u32; n_rows];
    for (s, shard) in shards.iter().enumerate() {
        let base = shard_range(s).start;
        for (i, &local) in shard.row_groups.iter().enumerate() {
            let group = remaps[s][local as usize] as usize;
            postings[cursors[group] as usize] = (base + i) as u32;
            cursors[group] += 1;
        }
    }
    map.shrink_to_fit();
    (map, offsets, postings)
}

/// Append-only CSR extension: take the (possibly re-packed) group map, key
/// and hash only the rows of `new_rows`, then lay out a fresh
/// offsets/postings pair in which each group's old postings are copied
/// verbatim ahead of its new rows.  Old rows precede new rows, so postings
/// stay ascending within each group.
fn extend_groups<K: Eq + Hash + Clone>(
    mut map: FxHashMap<K, u32>,
    prev_offsets: &[u32],
    prev_postings: &[u32],
    new_rows: std::ops::Range<usize>,
    key_at: impl Fn(usize) -> K,
) -> (FxHashMap<K, u32>, Vec<u32>, Vec<u32>) {
    let old_groups = prev_offsets.len().saturating_sub(1);
    let mut added: Vec<u32> = vec![0; old_groups];
    let mut row_groups: Vec<u32> = Vec::with_capacity(new_rows.len());
    for row in new_rows.clone() {
        let key = key_at(row);
        let next = added.len() as u32;
        let before = map.len();
        let group = *map.entry(key).or_insert(next);
        if map.len() > before {
            added.push(0);
        }
        added[group as usize] += 1;
        row_groups.push(group);
    }
    let groups = added.len();
    let mut offsets = Vec::with_capacity(groups + 1);
    offsets.push(0u32);
    let mut acc = 0u32;
    for (g, &extra) in added.iter().enumerate() {
        let old_count = if g < old_groups {
            prev_offsets[g + 1] - prev_offsets[g]
        } else {
            0
        };
        acc += old_count + extra;
        offsets.push(acc);
    }
    let mut cursors: Vec<u32> = Vec::with_capacity(groups);
    let mut postings = vec![0u32; prev_postings.len() + row_groups.len()];
    for g in 0..groups {
        let start = offsets[g];
        cursors.push(start);
        if g < old_groups {
            let old = &prev_postings[prev_offsets[g] as usize..prev_offsets[g + 1] as usize];
            postings[start as usize..start as usize + old.len()].copy_from_slice(old);
            cursors[g] += old.len() as u32;
        }
    }
    for (i, &g) in row_groups.iter().enumerate() {
        postings[cursors[g as usize] as usize] = (new_rows.start + i) as u32;
        cursors[g as usize] += 1;
    }
    map.shrink_to_fit();
    (map, offsets, postings)
}

/// Cell-delta CSR patch: take the (possibly re-packed) group map, move each
/// row of `moved_rows` from its previous group to the group of its current
/// key (at most one map insert per move), key the appended rows of
/// `new_rows`, drop groups left empty and compact the numbering, then lay
/// the postings out again in one ascending-row pass.  Only moved and
/// appended rows are packed and hashed; the relayout itself is a cheap
/// linear scatter.
fn patch_groups<K: Eq + Hash + Clone>(
    mut map: FxHashMap<K, u32>,
    prev_offsets: &[u32],
    prev_postings: &[u32],
    moved_rows: &[usize],
    new_rows: std::ops::Range<usize>,
    key_at: impl Fn(usize) -> K,
) -> (FxHashMap<K, u32>, Vec<u32>, Vec<u32>) {
    let old_groups = prev_offsets.len().saturating_sub(1);
    let n_old = prev_postings.len();
    // Recover each old row's group from the CSR.
    let mut row_groups: Vec<u32> = vec![0; n_old];
    for g in 0..old_groups {
        for &row in &prev_postings[prev_offsets[g] as usize..prev_offsets[g + 1] as usize] {
            row_groups[row as usize] = g as u32;
        }
    }
    let mut counts: Vec<u32> = (0..old_groups)
        .map(|g| prev_offsets[g + 1] - prev_offsets[g])
        .collect();
    let assign = |map: &mut FxHashMap<K, u32>, counts: &mut Vec<u32>, key: K| -> u32 {
        let next = counts.len() as u32;
        let before = map.len();
        let group = *map.entry(key).or_insert(next);
        if map.len() > before {
            counts.push(0);
        }
        group
    };
    for &row in moved_rows {
        let group = assign(&mut map, &mut counts, key_at(row));
        let old = row_groups[row];
        if old == group {
            continue;
        }
        counts[old as usize] -= 1;
        counts[group as usize] += 1;
        row_groups[row] = group;
    }
    let mut appended_groups: Vec<u32> = Vec::with_capacity(new_rows.len());
    for row in new_rows.clone() {
        let group = assign(&mut map, &mut counts, key_at(row));
        counts[group as usize] += 1;
        appended_groups.push(group);
    }
    // Compact away emptied groups: vacated keys leave the map and the group
    // table matches what a fresh build would produce.
    let mut remap: Vec<u32> = vec![u32::MAX; counts.len()];
    let mut kept = 0u32;
    for (g, &count) in counts.iter().enumerate() {
        if count > 0 {
            remap[g] = kept;
            kept += 1;
        }
    }
    map.retain(|_, g| {
        let new = remap[*g as usize];
        *g = new;
        new != u32::MAX
    });
    let mut offsets = Vec::with_capacity(kept as usize + 1);
    offsets.push(0u32);
    let mut acc = 0u32;
    for &count in counts.iter().filter(|&&c| c > 0) {
        acc += count;
        offsets.push(acc);
    }
    // Scatter every row in ascending row order, so postings ascend within
    // each group.
    let mut cursors: Vec<u32> = offsets[..kept as usize].to_vec();
    let mut postings = vec![0u32; n_old + appended_groups.len()];
    for (row, &g) in row_groups.iter().enumerate() {
        let g = remap[g as usize] as usize;
        postings[cursors[g] as usize] = row as u32;
        cursors[g] += 1;
    }
    for (i, &g) in appended_groups.iter().enumerate() {
        let g = remap[g as usize] as usize;
        postings[cursors[g] as usize] = (new_rows.start + i) as u32;
        cursors[g] += 1;
    }
    map.shrink_to_fit();
    (map, offsets, postings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::HashIndex;
    use crate::schema::{Domain, RelationSchema};
    use std::collections::BTreeMap;

    fn instance(n: usize) -> RelationInstance {
        let schema = RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Text), ("C", Domain::Int)],
        );
        let mut inst = RelationInstance::from_schema(schema);
        for i in 0..n {
            inst.insert_values([
                Value::int((i % 7) as i64),
                Value::str(format!("s{}", i % 5)),
                Value::int(i as i64),
            ])
            .unwrap();
        }
        inst
    }

    /// Canonical view of an index: resolved key values → sorted tuple ids.
    fn canonical_interned(idx: &InternedIndex) -> BTreeMap<Vec<Value>, Vec<TupleId>> {
        idx.groups()
            .map(|(ids, rows)| {
                let key: Vec<Value> = ids
                    .iter()
                    .zip(idx.columns())
                    .map(|(&id, col)| col.interner().resolve(id).clone())
                    .collect();
                (key, rows.iter().map(|&r| idx.tuple_id(r)).collect())
            })
            .collect()
    }

    fn canonical_hash(idx: &HashIndex) -> BTreeMap<Vec<Value>, Vec<TupleId>> {
        idx.groups().map(|(k, g)| (k.clone(), g.clone())).collect()
    }

    #[test]
    fn groups_match_the_value_keyed_index() {
        let inst = instance(100);
        let store = inst.columnar();
        for attrs in [&[0usize][..], &[1], &[0, 1], &[0, 1, 2], &[]] {
            let interned = InternedIndex::build(&inst, &store, attrs, 1);
            let baseline = HashIndex::build(&inst, attrs);
            assert_eq!(
                canonical_interned(&interned),
                canonical_hash(&baseline),
                "attrs {attrs:?}"
            );
        }
    }

    #[test]
    fn sharded_parallel_build_matches_sequential() {
        let inst = instance(257);
        let store = inst.columnar();
        let sequential = InternedIndex::build(&inst, &store, &[0, 1], 1);
        for (threads, shard_rows) in [(1, 16), (4, 16), (4, 50), (3, 1)] {
            let sharded =
                InternedIndex::build_with_shard_rows(&inst, &store, &[0, 1], threads, shard_rows);
            assert_eq!(
                canonical_interned(&sharded),
                canonical_interned(&sequential),
                "threads {threads}, shard_rows {shard_rows}"
            );
            // Rows ascend within every group regardless of sharding.
            for (_, rows) in sharded.groups() {
                assert!(rows.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn probes_by_ids_and_values_agree() {
        let inst = instance(60);
        let store = inst.columnar();
        let idx = InternedIndex::build(&inst, &store, &[0, 1], 1);
        let key = [Value::int(3), Value::str("s3")];
        let by_values: Vec<TupleId> = idx
            .rows_for_values(&key)
            .iter()
            .map(|&r| idx.tuple_id(r))
            .collect();
        let ids: Vec<ValueId> = key
            .iter()
            .enumerate()
            .map(|(pos, v)| idx.lookup_id(pos, v).unwrap())
            .collect();
        let by_ids: Vec<TupleId> = idx
            .rows_for_ids(&ids)
            .iter()
            .map(|&r| idx.tuple_id(r))
            .collect();
        assert_eq!(by_values, by_ids);
        assert!(!by_values.is_empty());
        // Absent values match nothing.
        assert!(idx
            .rows_for_values(&[Value::int(3), Value::str("missing")])
            .is_empty());
        assert!(!idx.contains_values(&[Value::int(999), Value::str("s0")]));
    }

    #[test]
    fn wide_keys_fall_back_to_boxed_ids() {
        let schema = RelationSchema::new("w", (0..6).map(|i| (format!("A{i}"), Domain::Int)));
        let mut inst = RelationInstance::from_schema(schema);
        for i in 0..20i64 {
            inst.insert_values((0..6).map(|j| Value::int((i + j) % 4)))
                .unwrap();
        }
        let store = inst.columnar();
        let attrs: Vec<usize> = (0..6).collect();
        let interned = InternedIndex::build(&inst, &store, &attrs, 1);
        let baseline = HashIndex::build(&inst, &attrs);
        assert_eq!(canonical_interned(&interned), canonical_hash(&baseline));
    }

    #[test]
    fn empty_attribute_list_groups_everything_together() {
        let inst = instance(10);
        let store = inst.columnar();
        let idx = InternedIndex::build(&inst, &store, &[], 1);
        assert_eq!(idx.group_count(), 1);
        assert_eq!(idx.rows_for_ids(&[]).len(), 10);
    }

    #[test]
    fn empty_instance_builds_an_empty_index() {
        let inst = instance(0);
        let store = inst.columnar();
        let idx = InternedIndex::build(&inst, &store, &[0], 1);
        assert!(idx.is_empty());
        assert!(idx.rows_for_values(&[Value::int(1)]).is_empty());
    }

    #[test]
    fn extended_index_equals_fresh_build() {
        // Repeating value pools keep per-column distinct counts stable, so
        // the mixed-radix u64 codec survives the extension.
        let mut inst = instance(40);
        let prev_store = inst.columnar();
        let prev = InternedIndex::build(&inst, &prev_store, &[0, 1], 1);
        for i in 40..100usize {
            inst.insert_values([
                Value::int((i % 7) as i64),
                Value::str(format!("s{}", i % 5)),
                Value::int(i as i64),
            ])
            .unwrap();
        }
        let store = inst.columnar();
        let extended = InternedIndex::try_extended(&prev, &inst, &store)
            .expect("no new dictionary entries on the key columns");
        let fresh = InternedIndex::build(&inst, &store, &[0, 1], 1);
        assert_eq!(canonical_interned(&extended), canonical_interned(&fresh));
        for (_, rows) in extended.groups() {
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows ascend");
        }
    }

    #[test]
    fn radix_outgrowth_repacks_and_extends() {
        let mut inst = instance(30);
        let prev_store = inst.columnar();
        let prev = InternedIndex::build(&inst, &prev_store, &[0, 1], 1);
        // A brand-new B value outgrows that column's radix; the extension
        // re-packs the existing keys under the widened radices instead of
        // declining.
        inst.insert_values([Value::int(1), Value::str("unseen"), Value::int(999)])
            .unwrap();
        let store = inst.columnar();
        let extended = InternedIndex::try_extended(&prev, &inst, &store)
            .expect("radix outgrowth re-packs in place");
        let fresh = InternedIndex::build(&inst, &store, &[0, 1], 1);
        assert_eq!(canonical_interned(&extended), canonical_interned(&fresh));
        // Probes keep working against the widened packing.
        assert_eq!(
            extended
                .rows_for_values(&[Value::int(1), Value::str("unseen")])
                .len(),
            1
        );
    }

    #[test]
    fn radix_overflow_on_extension_switches_to_shift_packing() {
        // Four columns at 2^16 - 1 distinct values each: the radix product
        // still fits u64, but one more distinct value per column pushes it
        // past 2^64, so the extension must transcode to the shift packing.
        let schema = RelationSchema::new("w", (0..4).map(|i| (format!("A{i}"), Domain::Int)));
        let mut inst = RelationInstance::from_schema(schema);
        let base = (1i64 << 16) - 1;
        for i in 0..base {
            inst.insert_values((0..4).map(|j| Value::int(i + j * base)))
                .unwrap();
        }
        let prev_store = inst.columnar();
        let prev = InternedIndex::build(&inst, &prev_store, &[0, 1, 2, 3], 1);
        for i in base..base + 3 {
            inst.insert_values((0..4).map(|j| Value::int(i + j * base)))
                .unwrap();
        }
        let store = inst.columnar();
        let extended = InternedIndex::try_extended(&prev, &inst, &store)
            .expect("width <= 4 always has an exact packing");
        let fresh = InternedIndex::build(&inst, &store, &[0, 1, 2, 3], 1);
        assert_eq!(canonical_interned(&extended), canonical_interned(&fresh));
    }

    #[test]
    fn wide_and_shift_codecs_extend_under_new_values() {
        // 2^16 distinct values per column overflow the u64 radix product on
        // four columns (shift packing) and on six (wide packing); both are
        // radix-free and must extend even when dictionaries grow.
        let schema = RelationSchema::new("w", (0..6).map(|i| (format!("A{i}"), Domain::Int)));
        let mut inst = RelationInstance::from_schema(schema);
        let base = 1i64 << 16;
        for i in 0..base {
            inst.insert_values((0..6).map(|j| Value::int(i + j * base)))
                .unwrap();
        }
        let shift_attrs: Vec<usize> = (0..4).collect();
        let wide_attrs: Vec<usize> = (0..6).collect();
        let prev_store = inst.columnar();
        let prev_shift = InternedIndex::build(&inst, &prev_store, &shift_attrs, 1);
        let prev_wide = InternedIndex::build(&inst, &prev_store, &wide_attrs, 1);
        for i in base..base + 10 {
            inst.insert_values((0..6).map(|j| Value::int(i + j * base)))
                .unwrap();
        }
        let store = inst.columnar();
        for (prev, attrs) in [(prev_shift, shift_attrs), (prev_wide, wide_attrs)] {
            let extended = InternedIndex::try_extended(&prev, &inst, &store)
                .expect("radix-free packing extends");
            let fresh = InternedIndex::build(&inst, &store, &attrs, 1);
            assert_eq!(canonical_interned(&extended), canonical_interned(&fresh));
        }
    }

    #[test]
    fn patched_index_equals_fresh_build() {
        use crate::instance::CellRef;
        let mut inst = instance(50);
        let prev_store = inst.columnar();
        let prev = InternedIndex::build(&inst, &prev_store, &[0, 1], 1);
        let v0 = inst.version();
        // Move a row between existing groups, vacate a group entirely by
        // moving its only row, edit a non-key attribute, and append a tuple.
        inst.update_cell(CellRef::new(TupleId(3), 0), Value::int(5))
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(10), 2), Value::int(-1))
            .unwrap();
        inst.insert_values([Value::int(2), Value::str("s2"), Value::int(500)])
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(7), 1), Value::str("s0"))
            .unwrap();
        let changes = inst.changed_cells_since(v0).unwrap();
        let store = inst.columnar();
        let patched = InternedIndex::try_patched(&prev, &inst, &store, &changes)
            .expect("key dictionaries did not overflow");
        let fresh = InternedIndex::build(&inst, &store, &[0, 1], 1);
        assert_eq!(canonical_interned(&patched), canonical_interned(&fresh));
        assert_eq!(patched.group_count(), fresh.group_count());
        for (_, rows) in patched.groups() {
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows ascend");
        }
        let baseline = HashIndex::build(&inst, &[0, 1]);
        assert_eq!(patched.group_count(), baseline.len());
    }

    #[test]
    fn patch_vacates_groups_and_interns_new_keys() {
        use crate::instance::CellRef;
        let mut inst = instance(8);
        let prev_store = inst.columnar();
        let prev = InternedIndex::build(&inst, &prev_store, &[1], 1);
        let v0 = inst.version();
        // Rewrite every "s4" cell (only tuple 4 in 0..8) to the brand-new
        // value "fresh": group s4 must vanish, group "fresh" must appear —
        // and the new value outgrows the B radix, exercising the re-pack.
        inst.update_cell(CellRef::new(TupleId(4), 1), Value::str("fresh"))
            .unwrap();
        let changes = inst.changed_cells_since(v0).unwrap();
        let store = inst.columnar();
        let patched = InternedIndex::try_patched(&prev, &inst, &store, &changes)
            .expect("radix outgrowth re-packs in place");
        let fresh = InternedIndex::build(&inst, &store, &[1], 1);
        assert_eq!(canonical_interned(&patched), canonical_interned(&fresh));
        assert!(patched.rows_for_values(&[Value::str("s4")]).is_empty());
        assert_eq!(patched.rows_for_values(&[Value::str("fresh")]).len(), 1);
        assert_eq!(patched.group_count(), HashIndex::build(&inst, &[1]).len());
    }

    #[test]
    fn patched_wide_and_shift_codecs_match_fresh_builds() {
        use crate::instance::CellRef;
        // Six int columns with 2^16 distinct values overflow the radix
        // product at width 4 (shift) and 6 (wide); both must patch.
        let schema = RelationSchema::new("w", (0..6).map(|i| (format!("A{i}"), Domain::Int)));
        let mut inst = RelationInstance::from_schema(schema);
        let base = 1i64 << 16;
        for i in 0..base {
            inst.insert_values((0..6).map(|j| Value::int(i + j * base)))
                .unwrap();
        }
        let shift_attrs: Vec<usize> = (0..4).collect();
        let wide_attrs: Vec<usize> = (0..6).collect();
        let prev_store = inst.columnar();
        let prev_shift = InternedIndex::build(&inst, &prev_store, &shift_attrs, 1);
        let prev_wide = InternedIndex::build(&inst, &prev_store, &wide_attrs, 1);
        let v0 = inst.version();
        inst.update_cell(CellRef::new(TupleId(0), 0), Value::int(base + 7))
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(9), 5), Value::int(0))
            .unwrap();
        let changes = inst.changed_cells_since(v0).unwrap();
        let store = inst.columnar();
        for (prev, attrs) in [(prev_shift, shift_attrs), (prev_wide, wide_attrs)] {
            let patched = InternedIndex::try_patched(&prev, &inst, &store, &changes)
                .expect("radix-free packings patch");
            let fresh = InternedIndex::build(&inst, &store, &attrs, 1);
            assert_eq!(canonical_interned(&patched), canonical_interned(&fresh));
        }
    }

    #[test]
    fn interned_index_is_much_smaller_than_value_keyed() {
        let inst = instance(5_000);
        let store = inst.columnar();
        // Key on the unique attribute so every tuple is its own group — the
        // worst case for per-key overhead.
        let interned = InternedIndex::build(&inst, &store, &[0, 1, 2], 1);
        let baseline = HashIndex::build(&inst, &[0, 1, 2]);
        assert!(
            interned.approx_heap_bytes() * 4 <= baseline.approx_heap_bytes(),
            "interned {} bytes vs baseline {} bytes",
            interned.approx_heap_bytes(),
            baseline.approx_heap_bytes()
        );
    }
}
