//! Thin, dependency-free memory-mapping wrapper.
//!
//! The persisted shard segments (see [`super::persist`]) are read either by
//! memory-mapping the file — so the kernel pages ids in on demand and can
//! evict them under memory pressure, which is what keeps resident memory
//! bounded on instances larger than RAM — or, when mapping is unavailable
//! (non-unix targets, exotic filesystems, mapping failure), by falling back
//! to one buffered read into an owned `Vec<u8>`.
//!
//! The wrapper speaks to the OS through raw `extern "C"` declarations of
//! `mmap`/`munmap`/`madvise` rather than the `libc` crate, so `dq-relation`
//! stays free of external dependencies.  Mappings are read-only and private;
//! [`MappedBytes`] is `Send + Sync` because the bytes can never change
//! underneath a reader (`MAP_PRIVATE` snapshots the file contents).

use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_DONTNEED: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

/// How the bytes of one segment file are held in memory.
enum Backing {
    /// A read-only private mapping; the pointer owns `len` mapped bytes
    /// which are unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// Owned bytes read through the buffered fallback path.
    Buffered(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable for its whole
// lifetime — and the raw pointer is never handed out mutably.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// The contents of one segment file: memory-mapped when possible, an owned
/// buffer otherwise.  Dereferences to `[u8]` either way.
pub struct MappedBytes {
    backing: Backing,
}

impl MappedBytes {
    /// Maps `path` read-only.  Falls back to a buffered read (and bumps the
    /// `store.io.mmap_fallbacks` counter) when mapping is unsupported or
    /// fails; empty files always use the (trivial) buffered form.
    pub fn open(path: &Path) -> std::io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                dq_obs::add("store.io.mmap_bytes", len as u64);
                return Ok(MappedBytes {
                    backing: Backing::Mapped {
                        ptr: ptr as *mut u8,
                        len,
                    },
                });
            }
            dq_obs::inc("store.io.mmap_fallbacks");
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        dq_obs::add("store.io.buffered_bytes", buf.len() as u64);
        Ok(MappedBytes {
            backing: Backing::Buffered(buf),
        })
    }

    /// Reads `path` through the buffered path unconditionally (used by
    /// integrity checks that want plain owned bytes, and by tests to cover
    /// the fallback).
    pub fn open_buffered(path: &Path) -> std::io::Result<MappedBytes> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        dq_obs::add("store.io.buffered_bytes", buf.len() as u64);
        Ok(MappedBytes {
            backing: Backing::Buffered(buf),
        })
    }

    /// Is this an actual kernel mapping (as opposed to the buffered
    /// fallback)?
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Buffered(_) => false,
        }
    }

    /// Hints the kernel that the mapping will be scanned front-to-back
    /// (larger readahead).  No-op on buffered backings.
    pub fn advise_sequential(&self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            unsafe { sys::madvise(*ptr as *mut _, *len, sys::MADV_SEQUENTIAL) };
        }
    }

    /// Hints the kernel that the pages are no longer needed and may be
    /// reclaimed immediately — the shard-cursor paths call this after
    /// finishing a segment so resident memory stays at O(one shard).
    /// No-op on buffered backings.
    pub fn release(&self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            if unsafe { sys::madvise(*ptr as *mut _, *len, sys::MADV_DONTNEED) } == 0 {
                dq_obs::add("store.io.released_bytes", *len as u64);
            }
        }
    }
}

impl Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Backing::Buffered(buf) => buf,
        }
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            unsafe { sys::munmap(*ptr as *mut _, *len) };
        }
    }
}

impl std::fmt::Debug for MappedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("dq_mmap_test_{}_{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_and_buffered_agree() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = tmp_file("agree", &payload);
        let mapped = MappedBytes::open(&path).unwrap();
        let buffered = MappedBytes::open_buffered(&path).unwrap();
        assert_eq!(&*mapped, &payload[..]);
        assert_eq!(&*buffered, &payload[..]);
        assert!(!buffered.is_mapped());
        mapped.advise_sequential();
        mapped.release();
        // Private mappings survive a release hint: the contents re-fault in.
        assert_eq!(&*mapped, &payload[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp_file("empty", &[]);
        let mapped = MappedBytes::open(&path).unwrap();
        assert!(mapped.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        let path = std::env::temp_dir().join("dq_mmap_test_definitely_missing");
        assert!(MappedBytes::open(&path).is_err());
    }
}
