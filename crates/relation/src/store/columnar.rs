//! Interned, sharded columnar backing of a
//! [`RelationInstance`](crate::instance::RelationInstance).
//!
//! A [`ColumnarStore`] is a read-only, version-tagged snapshot of an
//! instance: the live tuples in insertion order (`rows`), a constant-time
//! slot → row translation (`row_index`), and one lazily built
//! dictionary-encoded [`Column`] per attribute.  Columns hold a dense
//! `Vec<ValueId>` — one `u32` per live tuple — plus the per-column
//! [`ValueInterner`] that issued the ids, so equality of cell values reduces
//! to equality of ids and multi-attribute keys pack into machine words (see
//! [`super::index::InternedIndex`]).
//!
//! Rows are range-sharded into fixed-size chunks of [`SHARD_ROWS`] so index
//! builds and group scans can parallelize *within* one index, not just
//! across dependencies.  The store never mutates: instances hand out a
//! snapshot per version through
//! [`RelationInstance::columnar`](crate::instance::RelationInstance::columnar)
//! and mutations simply make the next access build a fresh one, mirroring
//! the `(instance, version)` memoization of
//! [`IndexPool`](crate::index::IndexPool).

use super::interner::{InternerStats, ValueId, ValueInterner};
use super::mmap::MappedBytes;
use crate::instance::{CellChange, RelationInstance, TupleId};
use std::mem::size_of;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Number of rows per shard: large enough that per-shard hash maps amortize,
/// small enough that a million-tuple instance yields double-digit shards for
/// the thread pool.
pub const SHARD_ROWS: usize = 1 << 16;

/// Backing storage of a column's id vector: an owned `Vec` for columns built
/// from an instance, or a view into memory-mapped segment files for columns
/// re-opened from a persisted relation (see [`super::persist`]).  Mapped ids
/// are paged in by the kernel on access and can be evicted under pressure,
/// so a mapped column's resident footprint is bounded by its dictionary.
#[derive(Clone, Debug)]
enum Ids {
    /// Owned ids, in row order.
    Ram(Vec<ValueId>),
    /// A concatenation of mapped segment slices (one per persisted shard),
    /// each carrying `count` little-endian `u32` ids at `offset` bytes.
    /// Constructed only when the byte offset is 4-aligned on a little-endian
    /// target ([`Ids::from_segments`] decodes into `Ram` otherwise), so the
    /// slice reinterpretation below is always valid.
    Mapped {
        segments: Vec<MappedIds>,
        /// Exclusive prefix-sum row boundaries, `segments.len() + 1` long.
        bounds: Vec<usize>,
    },
}

/// One mapped shard's worth of ids.
#[derive(Clone, Debug)]
pub(crate) struct MappedIds {
    pub(crate) bytes: Arc<MappedBytes>,
    pub(crate) offset: usize,
    pub(crate) count: usize,
}

impl MappedIds {
    /// The ids of this segment as a slice.  Soundness: the constructor path
    /// ([`Ids::from_segments`]) verified alignment and endianness, the
    /// mapping is immutable, and `ValueId` is `repr(transparent)` over
    /// `u32`.
    #[inline]
    fn as_slice(&self) -> &[ValueId] {
        unsafe {
            std::slice::from_raw_parts(
                self.bytes.as_ptr().add(self.offset) as *const ValueId,
                self.count,
            )
        }
    }
}

impl Ids {
    /// Wraps mapped segments, falling back to an eager decode into owned ids
    /// when zero-copy reinterpretation would be unsound (misaligned offset,
    /// big-endian target).
    fn from_segments(segments: Vec<MappedIds>) -> Ids {
        let zero_copy = cfg!(target_endian = "little")
            && segments.iter().all(|s| {
                s.offset % std::mem::align_of::<u32>() == 0
                    && unsafe { s.bytes.as_ptr().add(s.offset) as usize }
                        % std::mem::align_of::<u32>()
                        == 0
                    && s.offset + s.count * size_of::<u32>() <= s.bytes.len()
            });
        if zero_copy {
            let mut bounds = Vec::with_capacity(segments.len() + 1);
            bounds.push(0);
            for s in &segments {
                bounds.push(bounds.last().unwrap() + s.count);
            }
            return Ids::Mapped { segments, bounds };
        }
        let mut ids = Vec::with_capacity(segments.iter().map(|s| s.count).sum());
        for s in &segments {
            let raw = &s.bytes[s.offset..s.offset + s.count * size_of::<u32>()];
            ids.extend(
                raw.chunks_exact(4)
                    .map(|c| ValueId(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))),
            );
        }
        Ids::Ram(ids)
    }

    fn len(&self) -> usize {
        match self {
            Ids::Ram(v) => v.len(),
            Ids::Mapped { bounds, .. } => *bounds.last().unwrap(),
        }
    }
}

/// One dictionary-encoded attribute: the ids of every live tuple's cell (in
/// row order) plus the dictionary that issued them.
#[derive(Clone, Debug)]
pub struct Column {
    interner: ValueInterner,
    ids: Ids,
}

impl Column {
    /// A column from already-encoded parts (the persist layer's open path
    /// and streaming ingest build columns without an instance).
    pub(crate) fn from_parts(interner: ValueInterner, ids: Vec<ValueId>) -> Column {
        Column {
            interner,
            ids: Ids::Ram(ids),
        }
    }

    /// A column whose ids live in mapped segment files.  Falls back to an
    /// eager decode when zero-copy reinterpretation is unsound on this
    /// target.
    pub(crate) fn from_mapped(interner: ValueInterner, segments: Vec<MappedIds>) -> Column {
        Column {
            interner,
            ids: Ids::from_segments(segments),
        }
    }

    /// The id of the cell in row `row` (row positions come from
    /// [`ColumnarStore::row_of`] / [`ColumnarStore::rows`]).
    #[inline]
    pub fn id_at(&self, row: usize) -> ValueId {
        match &self.ids {
            Ids::Ram(v) => v[row],
            Ids::Mapped { segments, bounds } => {
                let seg = bounds.partition_point(|&b| b <= row) - 1;
                segments[seg].as_slice()[row - bounds[seg]]
            }
        }
    }

    /// All cell ids, in row order.  Mapped columns whose segments are
    /// contiguous in one file expose them zero-copy; otherwise the ids of
    /// each persisted shard are available through
    /// [`shard_ids`](Self::shard_ids).
    ///
    /// # Panics
    /// Panics on a multi-segment mapped column (no single backing slice
    /// exists); use [`shard_ids`](Self::shard_ids) or [`id_at`](Self::id_at)
    /// there.
    pub fn ids(&self) -> &[ValueId] {
        match &self.ids {
            Ids::Ram(v) => v,
            Ids::Mapped { segments, .. } => {
                assert_eq!(
                    segments.len(),
                    1,
                    "multi-segment mapped column has no contiguous id slice; \
                     iterate shard_ids() instead"
                );
                segments[0].as_slice()
            }
        }
    }

    /// The ids of rows `range`, as up to one slice per backing segment (in
    /// row order).  This is the shard-cursor access path: each slice stays
    /// inside one mapped segment, so scans touch one shard's pages at a
    /// time.
    pub fn shard_ids(&self, range: Range<usize>) -> Vec<&[ValueId]> {
        match &self.ids {
            Ids::Ram(v) => vec![&v[range]],
            Ids::Mapped { segments, bounds } => {
                let mut out = Vec::new();
                let mut row = range.start;
                while row < range.end {
                    let seg = bounds.partition_point(|&b| b <= row) - 1;
                    let take = (bounds[seg + 1] - row).min(range.end - row);
                    let local = row - bounds[seg];
                    out.push(&segments[seg].as_slice()[local..local + take]);
                    row += take;
                }
                out
            }
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.ids.len() == 0
    }

    /// Is the id storage memory-mapped (as opposed to owned)?
    pub fn is_mapped(&self) -> bool {
        matches!(self.ids, Ids::Mapped { .. })
    }

    /// Hints the kernel that this column's mapped pages are no longer
    /// needed.  No-op for owned columns.
    pub fn release_pages(&self) {
        if let Ids::Mapped { segments, .. } = &self.ids {
            for s in segments {
                s.bytes.release();
            }
        }
    }

    /// The dictionary behind this column.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// Number of distinct values in the column.
    pub fn distinct(&self) -> usize {
        self.interner.len()
    }

    /// Approximate heap bytes of ids plus dictionary.  Mapped ids are file
    /// pages, not heap, and count as zero.
    pub fn approx_heap_bytes(&self) -> usize {
        let id_bytes = match &self.ids {
            Ids::Ram(v) => v.capacity() * size_of::<ValueId>(),
            Ids::Mapped { .. } => 0,
        };
        id_bytes + self.interner.approx_heap_bytes()
    }

    /// Owned ids in row order: borrowed from RAM columns, gathered from the
    /// segments of mapped ones.
    fn ids_to_vec(&self) -> Vec<ValueId> {
        match &self.ids {
            Ids::Ram(v) => v.clone(),
            Ids::Mapped { segments, .. } => {
                let mut out = Vec::with_capacity(self.ids.len());
                for s in segments {
                    out.extend_from_slice(s.as_slice());
                }
                out
            }
        }
    }

    /// A copy of this column covering the old rows plus `new_rows`: the
    /// dictionary and the existing id vector are cloned wholesale (no
    /// re-hashing of old cells) and only the appended cells are interned.
    /// Ids of values already in the dictionary are unchanged, so structures
    /// keyed on them stay valid.
    fn extended(&self, instance: &RelationInstance, attr: usize, new_rows: &[TupleId]) -> Column {
        let mut interner = self.interner.clone();
        let mut ids = self.ids_to_vec();
        ids.reserve(new_rows.len());
        for &id in new_rows {
            let tuple = instance.tuple(id).expect("appended row is live");
            ids.push(interner.intern(tuple.get(attr)));
        }
        Column {
            interner,
            ids: Ids::Ram(ids),
        }
    }
}

/// Aggregate counters of a [`ColumnarStore`], reported by the bench harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Live rows in the snapshot.
    pub rows: usize,
    /// Columns built so far (columns are built on first use).
    pub built_columns: usize,
    /// Total distinct values across built columns.
    pub distinct_values: usize,
    /// Approximate heap bytes across built columns (ids + dictionaries).
    pub heap_bytes: usize,
    /// Bytes the interned representation saves versus materializing one
    /// `Value` per cell of the built columns.
    pub bytes_saved_vs_values: usize,
}

impl dq_obs::MetricSource for ColumnarStats {
    fn emit(&self, prefix: &str, sink: &mut dyn dq_obs::MetricSink) {
        let gauge = |v: usize| i64::try_from(v).unwrap_or(i64::MAX);
        sink.gauge(&format!("{prefix}.rows"), gauge(self.rows));
        sink.gauge(
            &format!("{prefix}.built_columns"),
            gauge(self.built_columns),
        );
        sink.gauge(
            &format!("{prefix}.distinct_values"),
            gauge(self.distinct_values),
        );
        sink.gauge(&format!("{prefix}.heap_bytes"), gauge(self.heap_bytes));
        sink.gauge(
            &format!("{prefix}.bytes_saved_vs_values"),
            gauge(self.bytes_saved_vs_values),
        );
    }
}

/// A version-tagged columnar snapshot of one relation instance.
#[derive(Debug)]
pub struct ColumnarStore {
    instance_id: u64,
    version: u64,
    rows: Vec<TupleId>,
    /// Slot → row position; `u32::MAX` marks dead slots.
    row_index: Vec<u32>,
    columns: Vec<OnceLock<Arc<Column>>>,
}

impl ColumnarStore {
    /// Snapshots the live rows of `instance`.  Columns are built lazily on
    /// first access through [`column`](Self::column).
    pub fn new(instance: &RelationInstance) -> Self {
        dq_obs::time("store.snapshot_ns", || {
            let mut rows = Vec::with_capacity(instance.len());
            let mut row_index = Vec::new();
            for (id, _) in instance.iter() {
                while row_index.len() < id.0 {
                    row_index.push(u32::MAX);
                }
                row_index
                    .push(u32::try_from(rows.len()).expect("instance larger than u32::MAX rows"));
                rows.push(id);
            }
            ColumnarStore {
                instance_id: instance.instance_id(),
                version: instance.version(),
                rows,
                row_index,
                columns: (0..instance.schema().arity())
                    .map(|_| OnceLock::new())
                    .collect(),
            }
        })
    }

    /// Extends a previous snapshot of the same instance after append-only
    /// mutations: the old rows, row index and every column already built on
    /// `prev` are reused (dictionaries cloned, old ids memcpy'd) and only
    /// the appended tuples are encoded, instead of re-interning the whole
    /// instance.  Columns `prev` never built stay lazy.
    ///
    /// The caller must guarantee that every mutation between
    /// `prev.version()` and the instance's current version was an insertion
    /// ([`RelationInstance::append_only_since`]); under that guarantee the
    /// live rows of `prev` are a prefix of the current live rows.
    pub fn extended(prev: &ColumnarStore, instance: &RelationInstance) -> Self {
        let _t = dq_obs::timer("store.extend_ns");
        assert_eq!(
            prev.instance_id,
            instance.instance_id(),
            "snapshot extended for a different instance"
        );
        debug_assert!(instance.append_only_since(prev.version));
        let mut rows = Vec::with_capacity(instance.len());
        rows.extend_from_slice(&prev.rows);
        let mut row_index = prev.row_index.clone();
        // Append-only mutations never touch existing slots, so every live
        // tuple in a slot beyond the old row index is an appended one.
        let first_new_slot = prev.row_index.len();
        let mut new_rows = Vec::with_capacity(instance.len() - prev.rows.len());
        for (id, _) in instance.iter() {
            if id.0 < first_new_slot {
                continue;
            }
            while row_index.len() < id.0 {
                row_index.push(u32::MAX);
            }
            row_index.push(u32::try_from(rows.len()).expect("instance larger than u32::MAX rows"));
            rows.push(id);
            new_rows.push(id);
        }
        let columns: Vec<OnceLock<Arc<Column>>> = prev
            .columns
            .iter()
            .enumerate()
            .map(|(attr, slot)| {
                let lock = OnceLock::new();
                if let Some(col) = slot.get() {
                    lock.set(Arc::new(col.extended(instance, attr, &new_rows)))
                        .expect("freshly created lock is empty");
                }
                lock
            })
            .collect();
        ColumnarStore {
            instance_id: prev.instance_id,
            version: instance.version(),
            rows,
            row_index,
            columns,
        }
    }

    /// Patches a previous snapshot of the same instance after journaled
    /// cell writes (plus, possibly, interleaved insertions): like
    /// [`extended`](Self::extended) it reuses the old rows and every built
    /// column's dictionary and id vector wholesale, then re-interns *only*
    /// the changed cells in place.  Dictionaries are append-only, so every
    /// unchanged cell keeps its id and structures keyed on old ids stay
    /// valid; a patched dictionary may carry values no live cell holds any
    /// more, which costs a little memory but never correctness.
    ///
    /// The caller must guarantee the delta journal covers `prev.version()`
    /// ([`RelationInstance::delta_covers`]) and pass the coalesced changes
    /// ([`RelationInstance::changed_cells_since`]).
    pub fn patched(
        prev: &ColumnarStore,
        instance: &RelationInstance,
        changes: &[CellChange],
    ) -> Self {
        let _t = dq_obs::timer("store.patch_ns");
        assert_eq!(
            prev.instance_id,
            instance.instance_id(),
            "snapshot patched for a different instance"
        );
        debug_assert!(instance.delta_covers(prev.version));
        // Cell writes never change liveness, so — exactly as in `extended`
        // — every live tuple in a slot beyond the old row index is an
        // appended one.
        let mut rows = Vec::with_capacity(instance.len());
        rows.extend_from_slice(&prev.rows);
        let mut row_index = prev.row_index.clone();
        let first_new_slot = prev.row_index.len();
        let mut new_rows = Vec::with_capacity(instance.len() - prev.rows.len());
        for (id, _) in instance.iter() {
            if id.0 < first_new_slot {
                continue;
            }
            while row_index.len() < id.0 {
                row_index.push(u32::MAX);
            }
            row_index.push(u32::try_from(rows.len()).expect("instance larger than u32::MAX rows"));
            rows.push(id);
            new_rows.push(id);
        }
        let columns: Vec<OnceLock<Arc<Column>>> = prev
            .columns
            .iter()
            .enumerate()
            .map(|(attr, slot)| {
                let lock = OnceLock::new();
                if let Some(col) = slot.get() {
                    let mut patched = col.extended(instance, attr, &new_rows);
                    let Ids::Ram(ids) = &mut patched.ids else {
                        unreachable!("extended columns always own their ids");
                    };
                    for change in changes.iter().filter(|c| c.cell.attr == attr) {
                        // Appended-then-edited tuples were already interned
                        // at their current value by the extension above;
                        // re-interning is a no-op for them.
                        if let Some(&row) = row_index.get(change.cell.tuple.0) {
                            if row != u32::MAX {
                                ids[row as usize] = patched.interner.intern(&change.new);
                            }
                        }
                    }
                    lock.set(Arc::new(patched))
                        .expect("freshly created lock is empty");
                }
                lock
            })
            .collect();
        ColumnarStore {
            instance_id: prev.instance_id,
            version: instance.version(),
            rows,
            row_index,
            columns,
        }
    }

    /// Identity of the instance this snapshot was taken from.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Version of the instance this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live tuple ids in insertion (row) order.
    pub fn rows(&self) -> &[TupleId] {
        &self.rows
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tuple id stored in row `row`.
    #[inline]
    pub fn tuple_id(&self, row: usize) -> TupleId {
        self.rows[row]
    }

    /// The row position of a tuple id, if the tuple was live at snapshot
    /// time.
    #[inline]
    pub fn row_of(&self, id: TupleId) -> Option<usize> {
        match self.row_index.get(id.0) {
            Some(&row) if row != u32::MAX => Some(row as usize),
            _ => None,
        }
    }

    /// Number of fixed-size row shards.
    pub fn shard_count(&self) -> usize {
        self.rows.len().div_ceil(SHARD_ROWS).max(1)
    }

    /// The row range of shard `shard`.
    pub fn shard_rows(&self, shard: usize) -> Range<usize> {
        let start = shard * SHARD_ROWS;
        start.min(self.rows.len())..((shard + 1) * SHARD_ROWS).min(self.rows.len())
    }

    /// The dictionary-encoded column of attribute `attr`, built on first
    /// access (subsequent calls, from any thread, share the same column).
    ///
    /// `instance` must be the instance this store was snapshotted from, at
    /// the same version — mutations invalidate the snapshot, and
    /// [`RelationInstance::columnar`] hands out a fresh store per version.
    pub fn column(&self, instance: &RelationInstance, attr: usize) -> Arc<Column> {
        Arc::clone(self.columns[attr].get_or_init(|| {
            let _t = dq_obs::timer("store.column_build_ns");
            assert_eq!(
                (instance.instance_id(), instance.version()),
                (self.instance_id, self.version),
                "columnar snapshot is stale for this instance"
            );
            let mut interner = ValueInterner::new();
            let mut ids = Vec::with_capacity(self.rows.len());
            for &id in &self.rows {
                let tuple = instance.tuple(id).expect("snapshot row is live");
                ids.push(interner.intern(tuple.get(attr)));
            }
            let column = Arc::new(Column::from_parts(interner, ids));
            dq_obs::add(
                "store.column_bytes_built",
                column.approx_heap_bytes() as u64,
            );
            column
        }))
    }

    /// The column of attribute `attr`, if it has been built already.
    pub fn built_column(&self, attr: usize) -> Option<Arc<Column>> {
        self.columns.get(attr).and_then(|c| c.get().cloned())
    }

    /// Aggregate counters across built columns.
    pub fn stats(&self) -> ColumnarStats {
        let mut stats = ColumnarStats {
            rows: self.rows.len(),
            ..ColumnarStats::default()
        };
        for slot in &self.columns {
            if let Some(col) = slot.get() {
                stats.built_columns += 1;
                stats.distinct_values += col.distinct();
                stats.heap_bytes += col.approx_heap_bytes();
                let row_values = self.rows.len() * size_of::<crate::value::Value>();
                stats.bytes_saved_vs_values += row_values.saturating_sub(col.approx_heap_bytes());
            }
        }
        stats
    }

    /// Per-column dictionary stats of the built columns, by attribute
    /// position.
    pub fn column_stats(&self) -> Vec<(usize, InternerStats)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(attr, slot)| slot.get().map(|c| (attr, c.interner().stats())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, RelationSchema};
    use crate::value::Value;

    fn instance() -> RelationInstance {
        let schema = RelationSchema::new("r", [("A", Domain::Int), ("B", Domain::Text)]);
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b) in [(1, "x"), (2, "y"), (1, "x"), (3, "x")] {
            inst.insert_values([Value::int(a), Value::str(b)]).unwrap();
        }
        inst
    }

    #[test]
    fn columns_round_trip_cell_values() {
        let inst = instance();
        let store = ColumnarStore::new(&inst);
        assert_eq!(store.len(), 4);
        for attr in 0..2 {
            let col = store.column(&inst, attr);
            for (row, &id) in store.rows().iter().enumerate() {
                let original = inst.tuple(id).unwrap().get(attr);
                assert_eq!(col.interner().resolve(col.id_at(row)), original);
            }
        }
        // Duplicate cells share ids.
        let a = store.column(&inst, 0);
        assert_eq!(a.id_at(0), a.id_at(2));
        assert_eq!(a.distinct(), 3);
        let b = store.column(&inst, 1);
        assert_eq!(b.distinct(), 2);
    }

    #[test]
    fn row_index_skips_dead_slots() {
        let mut inst = instance();
        inst.remove(TupleId(1));
        let store = ColumnarStore::new(&inst);
        assert_eq!(store.len(), 3);
        assert_eq!(store.row_of(TupleId(0)), Some(0));
        assert_eq!(store.row_of(TupleId(1)), None);
        assert_eq!(store.row_of(TupleId(2)), Some(1));
        assert_eq!(store.row_of(TupleId(3)), Some(2));
        assert_eq!(store.row_of(TupleId(99)), None);
        assert_eq!(store.tuple_id(1), TupleId(2));
    }

    #[test]
    fn shards_cover_all_rows() {
        let inst = instance();
        let store = ColumnarStore::new(&inst);
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.shard_rows(0), 0..4);
        let covered: usize = (0..store.shard_count())
            .map(|s| store.shard_rows(s).len())
            .sum();
        assert_eq!(covered, store.len());
    }

    #[test]
    fn extended_snapshot_equals_fresh_build() {
        let mut inst = instance();
        let prev = inst.columnar();
        prev.column(&inst, 0); // built column gets extended eagerly
        for (a, b) in [(2, "z"), (1, "x"), (9, "w")] {
            inst.insert_values([Value::int(a), Value::str(b)]).unwrap();
        }
        assert!(inst.append_only_since(prev.version()));
        let extended = ColumnarStore::extended(&prev, &inst);
        let fresh = ColumnarStore::new(&inst);
        assert_eq!(extended.version(), inst.version());
        assert_eq!(extended.rows(), fresh.rows());
        assert!(extended.built_column(0).is_some(), "built column extended");
        assert!(
            extended.built_column(1).is_none(),
            "unbuilt column stays lazy"
        );
        for attr in 0..2 {
            let e = extended.column(&inst, attr);
            let f = fresh.column(&inst, attr);
            for row in 0..extended.len() {
                assert_eq!(
                    e.interner().resolve(e.id_at(row)),
                    f.interner().resolve(f.id_at(row)),
                    "attr {attr} row {row}"
                );
            }
            // Shared prefixes receive identical ids (first-seen order).
            assert_eq!(e.ids(), f.ids(), "attr {attr}");
        }
    }

    #[test]
    fn extension_skips_dead_slots_from_before_the_snapshot() {
        let mut inst = instance();
        inst.remove(TupleId(3)); // trailing slot dead before the snapshot
        let prev = inst.columnar();
        prev.column(&inst, 1);
        inst.insert_values([Value::int(7), Value::str("q")])
            .unwrap();
        let extended = inst.columnar();
        assert_eq!(extended.len(), 4);
        assert_eq!(extended.row_of(TupleId(3)), None);
        assert_eq!(extended.row_of(TupleId(4)), Some(3));
        let fresh = ColumnarStore::new(&inst);
        assert_eq!(extended.rows(), fresh.rows());
        let col = extended.column(&inst, 1);
        assert_eq!(col.interner().resolve(col.id_at(3)), &Value::str("q"));
    }

    #[test]
    fn patched_snapshot_round_trips_like_a_fresh_build() {
        use crate::instance::CellRef;
        let mut inst = instance();
        let prev = inst.columnar();
        prev.column(&inst, 0);
        prev.column(&inst, 1);
        let v0 = inst.version();
        // Edit two cells (one to a brand-new value), append one tuple, and
        // edit the appended tuple too.
        inst.update_cell(CellRef::new(TupleId(0), 1), Value::str("edited"))
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(2), 0), Value::int(42))
            .unwrap();
        inst.insert_values([Value::int(5), Value::str("n")])
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(4), 1), Value::str("m"))
            .unwrap();
        let changes = inst.changed_cells_since(v0).unwrap();
        let patched = ColumnarStore::patched(&prev, &inst, &changes);
        assert_eq!(patched.version(), inst.version());
        let fresh = ColumnarStore::new(&inst);
        assert_eq!(patched.rows(), fresh.rows());
        for attr in 0..2 {
            assert!(patched.built_column(attr).is_some(), "built column patched");
            let p = patched.column(&inst, attr);
            for (row, &id) in patched.rows().iter().enumerate() {
                assert_eq!(
                    p.interner().resolve(p.id_at(row)),
                    inst.tuple(id).unwrap().get(attr),
                    "attr {attr} row {row}"
                );
            }
        }
        // Unchanged cells keep their previous ids (dictionaries only grow).
        let p = patched.column(&inst, 1);
        let old = prev.column(&inst, 1);
        assert_eq!(p.id_at(1), old.id_at(1));
    }

    #[test]
    fn instance_snapshot_cache_takes_the_patch_path() {
        use crate::instance::CellRef;
        let mut inst = instance();
        let prev = inst.columnar();
        prev.column(&inst, 1);
        inst.update_cell(CellRef::new(TupleId(1), 1), Value::str("patched"))
            .unwrap();
        let next = inst.columnar();
        assert!(
            next.built_column(1).is_some(),
            "cache served a patched snapshot, not a cold rebuild"
        );
        let col = next.column(&inst, 1);
        let row = next.row_of(TupleId(1)).unwrap();
        assert_eq!(
            col.interner().resolve(col.id_at(row)),
            &Value::str("patched")
        );
    }

    #[test]
    fn stats_reflect_built_columns() {
        let inst = instance();
        let store = ColumnarStore::new(&inst);
        assert_eq!(store.stats().built_columns, 0);
        assert!(store.built_column(0).is_none());
        store.column(&inst, 0);
        let stats = store.stats();
        assert_eq!(stats.built_columns, 1);
        assert_eq!(stats.distinct_values, 3);
        assert!(stats.heap_bytes > 0);
        assert!(store.built_column(0).is_some());
    }
}
