//! A fast, non-cryptographic hasher for the hot paths of the storage
//! subsystem.
//!
//! Index construction hashes one key per tuple; with SipHash (the std
//! default) that hash is a measurable fraction of a cold detection pass.
//! Dictionary-encoded keys are small integers with no adversarial source, so
//! the storage subsystem uses the well-known Fx multiply-xor hash (the rustc
//! internal hasher) instead.  Maps holding user-controlled `Value` keys
//! (the interner dictionaries) use it too: the workloads here are data
//! cleaning batches, not untrusted network input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (pi's fractional bits, as used by rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; not collision-resistant against adversaries, very
/// fast on the small fixed-width keys the store produces.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so prefixes don't collide trivially.
            self.add(u64::from_le_bytes(word) ^ ((bytes.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche so low-entropy keys spread across buckets.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// Builder for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("abc"), hash_of("abc"));
        assert_eq!(hash_of((1u32, 2u32)), hash_of((1u32, 2u32)));
    }

    #[test]
    fn distinct_small_keys_spread() {
        let hashes: FxHashSet<u64> = (0u64..10_000).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on dense small ints");
    }

    #[test]
    fn byte_slices_of_different_lengths_differ() {
        assert_ne!(hash_of(&b"ab"[..]), hash_of(&b"ab\0"[..]));
        assert_ne!(hash_of(&b""[..]), hash_of(&b"\0"[..]));
    }
}
