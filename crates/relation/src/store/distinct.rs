//! Distinct-projection sets over interned columns.
//!
//! IND-style checks (`R1[X] ⊆ R2[Y]`, Section 2.2) reduce to a question
//! about *distinct* projections: every distinct `X`-projection of `R1` must
//! appear among the distinct `Y`-projections of `R2`.  The row-oriented
//! implementation materializes a `BTreeSet<Vec<Value>>` per side per
//! candidate; [`DistinctSet`] replaces that with the packed-key machinery of
//! [`InternedIndex`](super::index::InternedIndex) minus the CSR postings —
//! just the set of distinct keys, one machine word each for almost every
//! real projection — cached in
//! [`IndexPool`](crate::index::IndexPool) per `(instance, version,
//! attribute list)` and extended in place after append-only mutations.
//!
//! Cross-relation membership goes through [`IdTranslation`]: the LHS
//! dictionaries are translated into the RHS dictionaries *once per
//! dictionary entry* (`O(distinct values)`), after which each probe is a few
//! array lookups and one hash of a packed word — no `Vec<Value>` is ever
//! materialized.

use super::columnar::{Column, ColumnarStore, SHARD_ROWS};
use super::fx::FxHashSet;
use super::index::{widen_plan, KeyCodec, Repr, WidenPlan};
use super::interner::ValueId;
use crate::instance::{CellChange, RelationInstance};
use crate::value::Value;
use std::hash::Hash;
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The key storage of a [`DistinctSet`], monomorphized per packing.
#[derive(Clone, Debug)]
enum KeySet {
    U64(FxHashSet<u64>),
    U128(FxHashSet<u128>),
    Wide(FxHashSet<Box<[ValueId]>>),
}

/// The set of distinct projections of one instance onto a fixed attribute
/// list, as packed dictionary-id keys.
///
/// Equality of ids is equality of values per column, so membership answers
/// are identical to the `BTreeSet<Vec<Value>>` the row-oriented projection
/// builds — at a fraction of the memory and with no per-probe allocation.
#[derive(Clone, Debug)]
pub struct DistinctSet {
    attrs: Vec<usize>,
    store: Arc<ColumnarStore>,
    codec: KeyCodec,
    keys: KeySet,
}

impl DistinctSet {
    /// Builds the distinct-projection set of `instance` on `attrs` over the
    /// columnar snapshot `store`, using up to `threads` workers.
    pub fn build(
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
        attrs: &[usize],
        threads: usize,
    ) -> Self {
        Self::build_with_shard_rows(instance, store, attrs, threads, SHARD_ROWS)
    }

    /// [`build`](Self::build) with an explicit shard size (exposed for
    /// exercising the multi-shard union path in tests).
    pub fn build_with_shard_rows(
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
        attrs: &[usize],
        threads: usize,
        shard_rows: usize,
    ) -> Self {
        let columns: Vec<Arc<Column>> = attrs.iter().map(|&a| store.column(instance, a)).collect();
        let codec = KeyCodec::new(columns);
        let n = store.len();
        let keys = match &codec.repr {
            Repr::Radix(radices) => KeySet::U64(collect_keys(n, threads, shard_rows, |row| {
                KeyCodec::pack_u64_row(radices, codec.columns(), row)
            })),
            Repr::Shift => KeySet::U128(collect_keys(n, threads, shard_rows, |row| {
                KeyCodec::pack_u128_row(codec.columns(), row)
            })),
            Repr::Wide => KeySet::Wide(collect_keys(n, threads, shard_rows, |row| {
                codec
                    .columns()
                    .iter()
                    .map(|c| c.id_at(row))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            })),
        };
        DistinctSet {
            attrs: attrs.to_vec(),
            store: Arc::clone(store),
            codec,
            keys,
        }
    }

    /// Extends `prev` — a set of the same instance on the same attributes,
    /// built at an earlier version — after append-only mutations: the key
    /// set is cloned (re-packed under widened radices when a key column's
    /// dictionary outgrew its radix, exactly like
    /// [`InternedIndex::try_extended`](super::index::InternedIndex::try_extended))
    /// and only the appended rows are packed and inserted.  Returns `None`
    /// only when no exact packing carries over (> 4-wide radix keys whose
    /// widened product overflows `u64`).
    pub fn try_extended(
        prev: &DistinctSet,
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
    ) -> Option<DistinctSet> {
        if store.instance_id() != prev.store.instance_id() || store.len() < prev.store.len() {
            return None;
        }
        let columns: Vec<Arc<Column>> = prev
            .attrs
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        let (mut keys, repr) = match (widen_plan(&prev.codec.repr, &columns)?, &prev.keys) {
            (WidenPlan::Keep, keys) => (keys.clone(), prev.codec.repr.clone()),
            (WidenPlan::Widen(widened), KeySet::U64(s)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let repacked = s
                    .iter()
                    .map(|&k| KeyCodec::pack_u64_ids(&widened, &KeyCodec::unpack_u64(old, k)))
                    .collect();
                (KeySet::U64(repacked), Repr::Radix(widened))
            }
            (WidenPlan::ToShift, KeySet::U64(s)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let shifted = s
                    .iter()
                    .map(|&k| KeyCodec::pack_u128_ids(&KeyCodec::unpack_u64(old, k)))
                    .collect();
                (KeySet::U128(shifted), Repr::Shift)
            }
            _ => unreachable!("widening plans only arise from u64 key sets"),
        };
        let codec = KeyCodec::from_parts(columns, repr);
        for row in prev.store.len()..store.len() {
            match (&mut keys, &codec.repr) {
                (KeySet::U64(s), Repr::Radix(radices)) => {
                    s.insert(KeyCodec::pack_u64_row(radices, codec.columns(), row));
                }
                (KeySet::U128(s), Repr::Shift) => {
                    s.insert(KeyCodec::pack_u128_row(codec.columns(), row));
                }
                (KeySet::Wide(s), Repr::Wide) => {
                    s.insert(
                        codec
                            .columns()
                            .iter()
                            .map(|c| c.id_at(row))
                            .collect::<Vec<_>>()
                            .into_boxed_slice(),
                    );
                }
                _ => unreachable!("key set variant always matches codec repr"),
            }
        }
        Some(DistinctSet {
            attrs: prev.attrs.clone(),
            store: Arc::clone(store),
            codec,
            keys,
        })
    }

    /// Patches `prev` — a set of the same instance on the same attributes,
    /// built at an earlier version — after journaled cell writes (plus,
    /// possibly, interleaved insertions): the new key of every changed row
    /// is inserted (at most one per change) and each *candidate-vacated*
    /// old key — the set keeps no per-key counts — is verified by a single
    /// packing sweep over the rows (no re-hashing into the set, early exit
    /// once every candidate is accounted for) before being removed.
    /// Changes touching only non-key attributes cost nothing.  The codec is
    /// carried forward under the same widening rules as
    /// [`try_extended`](Self::try_extended); `None` means full rebuild.
    ///
    /// `store` must be the current snapshot *descended from `prev`'s via
    /// extensions/patches* — the memoized [`RelationInstance::columnar`]
    /// chain guarantees this whenever the delta journal covers `prev`'s
    /// version — so that `prev`'s dictionary ids stay valid in the new
    /// dictionaries and old keys can be computed from `prev`'s columns.
    pub fn try_patched(
        prev: &DistinctSet,
        instance: &RelationInstance,
        store: &Arc<ColumnarStore>,
        changes: &[CellChange],
    ) -> Option<DistinctSet> {
        if store.instance_id() != prev.store.instance_id() || store.len() < prev.store.len() {
            return None;
        }
        let columns: Vec<Arc<Column>> = prev
            .attrs
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        // Patched dictionaries only ever append to their predecessors.
        debug_assert!(columns
            .iter()
            .zip(prev.codec.columns())
            .all(|(new, old)| new.distinct() >= old.distinct()));
        let (mut keys, repr) = match (widen_plan(&prev.codec.repr, &columns)?, &prev.keys) {
            (WidenPlan::Keep, keys) => (keys.clone(), prev.codec.repr.clone()),
            (WidenPlan::Widen(widened), KeySet::U64(s)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let repacked = s
                    .iter()
                    .map(|&k| KeyCodec::pack_u64_ids(&widened, &KeyCodec::unpack_u64(old, k)))
                    .collect();
                (KeySet::U64(repacked), Repr::Radix(widened))
            }
            (WidenPlan::ToShift, KeySet::U64(s)) => {
                let Repr::Radix(old) = &prev.codec.repr else {
                    unreachable!("widening plans only arise from radix packings");
                };
                let shifted = s
                    .iter()
                    .map(|&k| KeyCodec::pack_u128_ids(&KeyCodec::unpack_u64(old, k)))
                    .collect();
                (KeySet::U128(shifted), Repr::Shift)
            }
            _ => unreachable!("widening plans only arise from u64 key sets"),
        };
        let codec = KeyCodec::from_parts(columns, repr);
        // Rows of the previous snapshot whose key cells changed (cell
        // writes never change liveness, so they keep their row numbers);
        // appended-then-edited tuples are covered by the append pass inside
        // `patch_keys`.
        let mut moved: Vec<usize> = changes
            .iter()
            .filter(|c| prev.attrs.contains(&c.cell.attr))
            .filter_map(|c| prev.store.row_of(c.cell.tuple))
            .collect();
        moved.sort_unstable();
        moved.dedup();
        let (n_prev, n_new) = (prev.store.len(), store.len());
        match (&mut keys, &codec.repr) {
            (KeySet::U64(s), Repr::Radix(radices)) => patch_keys(
                s,
                n_prev,
                n_new,
                &moved,
                |row| KeyCodec::pack_u64_row(radices, prev.codec.columns(), row),
                |row| KeyCodec::pack_u64_row(radices, codec.columns(), row),
            ),
            (KeySet::U128(s), Repr::Shift) => patch_keys(
                s,
                n_prev,
                n_new,
                &moved,
                |row| KeyCodec::pack_u128_row(prev.codec.columns(), row),
                |row| KeyCodec::pack_u128_row(codec.columns(), row),
            ),
            (KeySet::Wide(s), Repr::Wide) => patch_keys(
                s,
                n_prev,
                n_new,
                &moved,
                |row| {
                    prev.codec
                        .columns()
                        .iter()
                        .map(|c| c.id_at(row))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                },
                |row| {
                    codec
                        .columns()
                        .iter()
                        .map(|c| c.id_at(row))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                },
            ),
            _ => unreachable!("key set variant always matches codec repr"),
        }
        Some(DistinctSet {
            attrs: prev.attrs.clone(),
            store: Arc::clone(store),
            codec,
            keys,
        })
    }

    /// The attribute positions this set projects onto.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// The columnar snapshot behind the set.
    pub fn store(&self) -> &Arc<ColumnarStore> {
        &self.store
    }

    /// The key columns, positionally aligned with [`attrs`](Self::attrs).
    pub fn columns(&self) -> &[Arc<Column>] {
        self.codec.columns()
    }

    /// Number of distinct projections.
    pub fn len(&self) -> usize {
        match &self.keys {
            KeySet::U64(s) => s.len(),
            KeySet::U128(s) => s.len(),
            KeySet::Wide(s) => s.len(),
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id of `value` in the `pos`-th key column's dictionary, if any
    /// tuple carries it there.
    pub fn lookup_id(&self, pos: usize, value: &Value) -> Option<ValueId> {
        self.codec.columns()[pos].interner().lookup(value)
    }

    /// Does some tuple project onto the id tuple `key` (ids from *this*
    /// set's dictionaries)?
    pub fn contains_ids(&self, key: &[ValueId]) -> bool {
        debug_assert_eq!(key.len(), self.attrs.len());
        match (&self.keys, &self.codec.repr) {
            (KeySet::U64(s), Repr::Radix(radices)) => {
                s.contains(&KeyCodec::pack_u64_ids(radices, key))
            }
            (KeySet::U128(s), _) => s.contains(&KeyCodec::pack_u128_ids(key)),
            (KeySet::Wide(s), _) => s.contains(key),
            _ => unreachable!("key set variant always matches codec repr"),
        }
    }

    /// Does some tuple project onto the value tuple `key`?  A value absent
    /// from its column's dictionary cannot match.
    pub fn contains_values(&self, key: &[Value]) -> bool {
        let mut ids = Vec::with_capacity(key.len());
        for (pos, v) in key.iter().enumerate() {
            match self.lookup_id(pos, v) {
                Some(id) => ids.push(id),
                None => return false,
            }
        }
        self.contains_ids(&ids)
    }

    /// Iterates over the distinct projections as id tuples, in unspecified
    /// order.
    pub fn iter_ids(&self) -> Box<dyn Iterator<Item = Vec<ValueId>> + '_> {
        let width = self.attrs.len();
        match (&self.keys, &self.codec.repr) {
            (KeySet::U64(s), Repr::Radix(radices)) => {
                Box::new(s.iter().map(move |&k| KeyCodec::unpack_u64(radices, k)))
            }
            (KeySet::U128(s), _) => {
                Box::new(s.iter().map(move |&k| KeyCodec::unpack_u128(width, k)))
            }
            (KeySet::Wide(s), _) => Box::new(s.iter().map(|k| k.to_vec())),
            _ => unreachable!("key set variant always matches codec repr"),
        }
    }

    /// Does `f` hold for every distinct projection?  Keys are decoded into
    /// one reused buffer, so the hot probe paths ([`included_in`]
    /// (Self::included_in), [`key_count`](Self::key_count)) allocate
    /// nothing per key.
    fn all_keys(&self, mut f: impl FnMut(&[ValueId]) -> bool) -> bool {
        let mut buf = vec![ValueId(0); self.attrs.len()];
        match (&self.keys, &self.codec.repr) {
            (KeySet::U64(s), Repr::Radix(radices)) => s.iter().all(|&k| {
                KeyCodec::unpack_u64_into(radices, k, &mut buf);
                f(&buf)
            }),
            (KeySet::U128(s), _) => s.iter().all(|&k| {
                KeyCodec::unpack_u128_into(k, &mut buf);
                f(&buf)
            }),
            (KeySet::Wide(s), _) => s.iter().all(|k| f(k)),
            _ => unreachable!("key set variant always matches codec repr"),
        }
    }

    /// The per-position ids of `Value::Null` in this set's dictionaries
    /// (`None` where the column has no null cell).  Used by SQL-style IND
    /// semantics to skip keys with a null component.
    pub fn null_ids(&self) -> Vec<Option<ValueId>> {
        self.codec
            .columns()
            .iter()
            .map(|c| c.interner().lookup(&Value::Null))
            .collect()
    }

    /// Number of distinct projections, optionally not counting projections
    /// with a `Value::Null` component (SQL-style IND semantics).
    pub fn key_count(&self, skip_null_keys: bool) -> usize {
        if !skip_null_keys {
            return self.len();
        }
        let nulls = self.null_ids();
        if nulls.iter().all(Option::is_none) {
            return self.len();
        }
        let mut count = 0usize;
        self.all_keys(|ids| {
            count += usize::from(!key_has_null(ids, &nulls));
            true
        });
        count
    }

    /// Is every distinct projection of `self` (optionally skipping
    /// projections with a null component) also a projection of `other`?
    ///
    /// The two sets may come from different relations: ids are translated
    /// between the dictionaries once per dictionary entry, not per key.
    pub fn included_in(&self, other: &DistinctSet, skip_null_keys: bool) -> bool {
        debug_assert_eq!(self.attrs.len(), other.attrs.len());
        // Counting argument: more distinct keys than the candidate superset
        // has cannot be a subset — decides most non-inclusions (foreign-key
        // shaped columns probed against smaller targets) without building
        // the translation tables at all.
        if self.key_count(skip_null_keys) > other.len() {
            return false;
        }
        let translation = IdTranslation::new(self.columns(), other.columns());
        let nulls = if skip_null_keys {
            self.null_ids()
        } else {
            vec![None; self.attrs.len()]
        };
        let mut translated = Vec::with_capacity(self.attrs.len());
        self.all_keys(|ids| {
            (skip_null_keys && key_has_null(ids, &nulls))
                || (translation.translate(ids, &mut translated) && other.contains_ids(&translated))
        })
    }

    /// Approximate heap bytes of the key set itself (the backing columns are
    /// shared and reported by [`ColumnarStore::stats`]).
    pub fn approx_heap_bytes(&self) -> usize {
        match &self.keys {
            KeySet::U64(s) => s.capacity() * (size_of::<u64>() + 1),
            KeySet::U128(s) => s.capacity() * (size_of::<u128>() + 1),
            KeySet::Wide(s) => {
                s.capacity() * (size_of::<Box<[ValueId]>>() + 1)
                    + s.iter()
                        .map(|k| k.len() * size_of::<ValueId>())
                        .sum::<usize>()
            }
        }
    }
}

/// Does the id tuple contain a component equal to its column's null id?
#[inline]
fn key_has_null(ids: &[ValueId], nulls: &[Option<ValueId>]) -> bool {
    ids.iter().zip(nulls).any(|(id, null)| Some(*id) == *null)
}

/// Per-position translation tables from one relation's column dictionaries
/// into another's, built once per dictionary (`O(distinct values)`) so that
/// cross-relation probes cost a few array lookups per key instead of hashing
/// a `Vec<Value>` per tuple.
#[derive(Debug)]
pub struct IdTranslation {
    /// `tables[pos][from_id] = Some(to_id)` when the value exists in the
    /// target dictionary, `None` when it cannot match any target tuple.
    tables: Vec<Vec<Option<ValueId>>>,
}

impl IdTranslation {
    /// Builds the translation from `from` dictionaries into positionally
    /// aligned `to` dictionaries.
    pub fn new(from: &[Arc<Column>], to: &[Arc<Column>]) -> Self {
        debug_assert_eq!(from.len(), to.len());
        IdTranslation {
            tables: from
                .iter()
                .zip(to)
                .map(|(f, t)| {
                    f.interner()
                        .values()
                        .iter()
                        .map(|v| t.interner().lookup(v))
                        .collect()
                })
                .collect(),
        }
    }

    /// Translates a source id tuple into `out`; `false` means some component
    /// value is absent from the target dictionary (and can match nothing).
    #[inline]
    pub fn translate(&self, ids: &[ValueId], out: &mut Vec<ValueId>) -> bool {
        out.clear();
        for (table, id) in self.tables.iter().zip(ids) {
            match table[id.index()] {
                Some(t) => out.push(t),
                None => return false,
            }
        }
        true
    }

    /// Translates the projection of row `row` of the source columns into
    /// `out`; `false` means some cell's value is absent from the target
    /// dictionary.
    #[inline]
    pub fn translate_row(
        &self,
        columns: &[Arc<Column>],
        row: usize,
        out: &mut Vec<ValueId>,
    ) -> bool {
        out.clear();
        for (table, col) in self.tables.iter().zip(columns) {
            match table[col.id_at(row).index()] {
                Some(t) => out.push(t),
                None => return false,
            }
        }
        true
    }
}

/// Cell-delta patch of a distinct-key set: insert the new key of every
/// moved row and every appended row, then decide which *old* keys of moved
/// rows actually vacated.  The set keeps no per-key counts, so candidates
/// are verified by one packing sweep over the current rows — membership
/// probes against the (usually tiny) candidate set, no inserts — with an
/// early exit once every candidate was seen.  Keys no row produces any more
/// are removed.
fn patch_keys<K: Eq + Hash>(
    keys: &mut FxHashSet<K>,
    n_prev: usize,
    n_new: usize,
    moved_rows: &[usize],
    old_key_at: impl Fn(usize) -> K,
    key_at: impl Fn(usize) -> K,
) {
    let mut candidates: FxHashSet<K> = FxHashSet::default();
    for &row in moved_rows {
        candidates.insert(old_key_at(row));
        keys.insert(key_at(row));
    }
    for row in n_prev..n_new {
        keys.insert(key_at(row));
    }
    if candidates.is_empty() {
        return;
    }
    for row in 0..n_new {
        candidates.remove(&key_at(row));
        if candidates.is_empty() {
            return;
        }
    }
    for key in candidates {
        keys.remove(&key);
    }
}

/// Parallel distinct-key collection: scan shards into local sets (claimed
/// through an atomic cursor when `threads > 1`), then union in any order —
/// sets are order-free, so no merge bookkeeping is needed.
fn collect_keys<K: Eq + Hash + Send>(
    n_rows: usize,
    threads: usize,
    shard_rows: usize,
    key_at: impl Fn(usize) -> K + Sync,
) -> FxHashSet<K> {
    let shard_rows = shard_rows.max(1);
    let shard_count = n_rows.div_ceil(shard_rows).max(1);
    let shard_range = |s: usize| (s * shard_rows).min(n_rows)..((s + 1) * shard_rows).min(n_rows);
    let scan = |range: std::ops::Range<usize>| -> FxHashSet<K> {
        let mut set = FxHashSet::default();
        for row in range {
            set.insert(key_at(row));
        }
        set
    };
    if threads <= 1 || shard_count <= 1 {
        let mut out = scan(shard_range(0));
        for s in 1..shard_count {
            out.extend(scan(shard_range(s)));
        }
        return out;
    }
    let slots: Vec<Mutex<Option<FxHashSet<K>>>> =
        (0..shard_count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(shard_count) {
            scope.spawn(|| loop {
                let s = cursor.fetch_add(1, Ordering::Relaxed);
                if s >= shard_count {
                    break;
                }
                *slots[s].lock().expect("shard slot poisoned") = Some(scan(shard_range(s)));
            });
        }
    });
    let mut out = FxHashSet::default();
    for slot in slots {
        out.extend(
            slot.into_inner()
                .expect("shard slot poisoned")
                .expect("every shard scanned before scope exit"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, RelationSchema};
    use std::collections::BTreeSet;

    fn instance(n: usize) -> RelationInstance {
        let schema = RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Text), ("C", Domain::Int)],
        );
        let mut inst = RelationInstance::from_schema(schema);
        for i in 0..n {
            inst.insert_values([
                Value::int((i % 7) as i64),
                Value::str(format!("s{}", i % 5)),
                Value::int(i as i64),
            ])
            .unwrap();
        }
        inst
    }

    /// Canonical view: the set of resolved value tuples.
    fn canonical(set: &DistinctSet) -> BTreeSet<String> {
        set.iter_ids()
            .map(|ids| {
                let key: Vec<&Value> = ids
                    .iter()
                    .zip(set.columns())
                    .map(|(&id, col)| col.interner().resolve(id))
                    .collect();
                format!("{key:?}")
            })
            .collect()
    }

    #[test]
    fn distinct_set_equals_row_oriented_projection() {
        let inst = instance(100);
        let store = inst.columnar();
        for attrs in [&[0usize][..], &[1], &[0, 1], &[0, 1, 2], &[]] {
            let set = DistinctSet::build(&inst, &store, attrs, 1);
            let reference = inst.project_distinct(attrs);
            assert_eq!(set.len(), reference.len(), "attrs {attrs:?}");
            for key in &reference {
                assert!(set.contains_values(key), "attrs {attrs:?}, key {key:?}");
            }
            assert!(
                !set.contains_values(
                    &attrs
                        .iter()
                        .map(|_| Value::str("missing"))
                        .collect::<Vec<_>>()
                ) || attrs.is_empty()
            );
        }
    }

    #[test]
    fn sharded_parallel_build_matches_sequential() {
        let inst = instance(257);
        let store = inst.columnar();
        let sequential = DistinctSet::build(&inst, &store, &[0, 1], 1);
        for (threads, shard_rows) in [(1, 16), (4, 16), (4, 50), (3, 1)] {
            let sharded =
                DistinctSet::build_with_shard_rows(&inst, &store, &[0, 1], threads, shard_rows);
            assert_eq!(
                canonical(&sharded),
                canonical(&sequential),
                "threads {threads}, shard_rows {shard_rows}"
            );
        }
    }

    #[test]
    fn extension_equals_fresh_build_even_under_dictionary_growth() {
        let mut inst = instance(40);
        let prev_store = inst.columnar();
        let prev = DistinctSet::build(&inst, &prev_store, &[0, 1], 1);
        // "fresh" outgrows B's radix: the extension re-packs.
        inst.insert_values([Value::int(9), Value::str("fresh"), Value::int(999)])
            .unwrap();
        inst.insert_values([Value::int(1), Value::str("s1"), Value::int(1000)])
            .unwrap();
        let store = inst.columnar();
        let extended =
            DistinctSet::try_extended(&prev, &inst, &store).expect("repack-aware extension");
        let fresh = DistinctSet::build(&inst, &store, &[0, 1], 1);
        assert_eq!(canonical(&extended), canonical(&fresh));
        assert!(extended.contains_values(&[Value::int(9), Value::str("fresh")]));
    }

    #[test]
    fn patched_set_equals_fresh_build() {
        use crate::instance::{CellRef, TupleId};
        let mut inst = instance(40);
        let prev_store = inst.columnar();
        let prev = DistinctSet::build(&inst, &prev_store, &[0, 1], 1);
        let v0 = inst.version();
        // Move a row to a brand-new value (dictionary growth → re-pack),
        // edit a non-key attribute (must cost nothing), and append a row.
        inst.update_cell(CellRef::new(TupleId(0), 1), Value::str("fresh"))
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(5), 2), Value::int(-5))
            .unwrap();
        inst.insert_values([Value::int(0), Value::str("s0"), Value::int(999)])
            .unwrap();
        let changes = inst.changed_cells_since(v0).unwrap();
        let store = inst.columnar();
        let patched =
            DistinctSet::try_patched(&prev, &inst, &store, &changes).expect("repack-aware patch");
        let fresh = DistinctSet::build(&inst, &store, &[0, 1], 1);
        assert_eq!(canonical(&patched), canonical(&fresh));
        assert_eq!(patched.len(), inst.project_distinct(&[0, 1]).len());
        assert!(patched.contains_values(&[Value::int(0), Value::str("fresh")]));
    }

    #[test]
    fn patch_keeps_keys_other_rows_still_hold() {
        use crate::instance::{CellRef, TupleId};
        // Two rows share the key (1, "a"); moving one away must NOT drop
        // the key, while moving the only (2, "b") row must.
        let schema = RelationSchema::new("r", [("A", Domain::Int), ("B", Domain::Text)]);
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b) in [(1, "a"), (1, "a"), (2, "b")] {
            inst.insert_values([Value::int(a), Value::str(b)]).unwrap();
        }
        let prev_store = inst.columnar();
        let prev = DistinctSet::build(&inst, &prev_store, &[0, 1], 1);
        let v0 = inst.version();
        inst.update_cell(CellRef::new(TupleId(0), 0), Value::int(2))
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(2), 0), Value::int(1))
            .unwrap();
        let changes = inst.changed_cells_since(v0).unwrap();
        let store = inst.columnar();
        let patched =
            DistinctSet::try_patched(&prev, &inst, &store, &changes).expect("no overflow");
        let fresh = DistinctSet::build(&inst, &store, &[0, 1], 1);
        assert_eq!(canonical(&patched), canonical(&fresh));
        assert!(patched.contains_values(&[Value::int(1), Value::str("a")]));
        assert!(patched.contains_values(&[Value::int(2), Value::str("a")]));
        assert!(patched.contains_values(&[Value::int(1), Value::str("b")]));
        assert!(!patched.contains_values(&[Value::int(2), Value::str("b")]));
    }

    #[test]
    fn included_in_translates_between_dictionaries() {
        let lhs = instance(20); // A values 0..=6, a strict subset of rows
        let rhs = instance(60);
        let lhs_set = DistinctSet::build(&lhs, &lhs.columnar(), &[0], 1);
        let rhs_set = DistinctSet::build(&rhs, &rhs.columnar(), &[0], 1);
        assert!(lhs_set.included_in(&rhs_set, false));
        // A value missing from the RHS dictionary breaks inclusion...
        let mut bigger = instance(5);
        bigger
            .insert_values([Value::int(100), Value::str("x"), Value::int(0)])
            .unwrap();
        let bigger_set = DistinctSet::build(&bigger, &bigger.columnar(), &[0], 1);
        assert!(!bigger_set.included_in(&rhs_set, false));
        // ...unless the offending key is null and null keys are skipped.
        let mut nullish = instance(5);
        nullish
            .insert_values([Value::Null, Value::str("x"), Value::int(0)])
            .unwrap();
        let null_set = DistinctSet::build(&nullish, &nullish.columnar(), &[0], 1);
        assert!(!null_set.included_in(&rhs_set, false));
        assert!(null_set.included_in(&rhs_set, true));
        assert_eq!(null_set.key_count(false), null_set.key_count(true) + 1);
    }

    #[test]
    fn empty_attribute_list_has_one_key() {
        let inst = instance(10);
        let set = DistinctSet::build(&inst, &inst.columnar(), &[], 1);
        assert_eq!(set.len(), 1);
        assert!(set.contains_ids(&[]));
        let none = instance(0);
        let empty = DistinctSet::build(&none, &none.columnar(), &[0], 1);
        assert!(empty.is_empty());
    }
}
