//! Dictionary encoding of [`Value`]s into dense [`ValueId`]s.
//!
//! Detection algorithms group, probe and compare attribute values millions of
//! times; materializing `Vec<Value>` keys per tuple dominates both the time
//! and the memory of a cold detection pass (see `BENCH_detection.json`).  A
//! [`ValueInterner`] maps every distinct value of a column to a dense `u32`
//! so that downstream structures (columns, index keys, group projections)
//! operate on machine integers instead.
//!
//! The encoding preserves the semantics of [`Value`]'s `Eq`/`Hash` (two
//! values receive the same id iff they are equal, including `Null == Null`
//! and the IEEE-754 total order treatment of `Real`, under which `NaN ==
//! NaN` and `-0.0 != +0.0`) and exposes `Ord` through
//! [`ValueInterner::cmp_ids`], which compares the *values* behind two ids —
//! ids themselves are assigned in first-seen order and carry no order.

use super::fx::FxHashMap;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;
use std::mem::size_of;

/// Dense identifier of a distinct value within one [`ValueInterner`].
///
/// Ids from different interners (different columns) are unrelated; comparing
/// them is only meaningful through the interner that issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a zero-based dictionary index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A value dictionary: distinct [`Value`]s in first-seen order, with a
/// reverse map for interning and lookup.
///
/// A dictionary re-hydrated from a persisted relation (see
/// [`super::persist`]) tracks how many of its entries came off disk
/// (`frozen`): the frozen prefix is immutable and already durable, so a
/// subsequent save spills only the *overlay* — entries interned since the
/// open — as a new dictionary segment.  Re-opening a saved relation
/// therefore interns nothing at all; only genuinely new values ever pass
/// through [`intern`](Self::intern) again.
#[derive(Clone, Debug, Default)]
pub struct ValueInterner {
    map: FxHashMap<Value, ValueId>,
    values: Vec<Value>,
    /// Entries `0..frozen` are persisted; `frozen..len` is the in-memory
    /// overlay.  Always `0` for interners never loaded from disk.
    frozen: usize,
}

/// Summary counters of a [`ValueInterner`], reported by the bench harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Number of distinct values in the dictionary.
    pub distinct: usize,
    /// Approximate heap bytes held by the dictionary (map + values + string
    /// payloads).
    pub heap_bytes: usize,
}

impl dq_obs::MetricSource for InternerStats {
    fn emit(&self, prefix: &str, sink: &mut dyn dq_obs::MetricSink) {
        sink.gauge(
            &format!("{prefix}.distinct"),
            i64::try_from(self.distinct).unwrap_or(i64::MAX),
        );
        sink.gauge(
            &format!("{prefix}.heap_bytes"),
            i64::try_from(self.heap_bytes).unwrap_or(i64::MAX),
        );
    }
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds an interner from a persisted dictionary: `values` are the
    /// decoded entries in id order, all marked frozen.  The reverse map is
    /// built once here — `O(distinct values)`, not `O(rows)` — which is the
    /// whole cost of re-opening a dictionary.
    pub fn from_frozen(values: Vec<Value>) -> Self {
        let map = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), ValueId(i as u32)))
            .collect();
        let frozen = values.len();
        ValueInterner {
            map,
            values,
            frozen,
        }
    }

    /// Number of entries already persisted (the frozen prefix); `0` for
    /// interners that never touched disk.
    pub fn frozen_len(&self) -> usize {
        self.frozen
    }

    /// The in-memory overlay: entries interned since the dictionary was
    /// loaded (or all entries, when it never was).  These are what a save
    /// spills as the next dictionary segment.
    pub fn overlay(&self) -> &[Value] {
        &self.values[self.frozen..]
    }

    /// Marks every current entry as persisted.  Called by the persist layer
    /// after spilling the overlay to disk.
    pub fn mark_frozen(&mut self) {
        self.frozen = self.values.len();
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns a value, returning its id.  Equal values (by [`Value`]'s `Eq`,
    /// which includes `Null == Null` and NaN-equal-NaN via the IEEE total
    /// order) always receive the same id; the first occurrence is cloned into
    /// the dictionary.
    pub fn intern(&mut self, value: &Value) -> ValueId {
        if let Some(&id) = self.map.get(value) {
            return id;
        }
        let id = ValueId(
            u32::try_from(self.values.len())
                .expect("more than u32::MAX distinct values in one column"),
        );
        self.values.push(value.clone());
        self.map.insert(value.clone(), id);
        id
    }

    /// Interns a value and hands back the *canonical* stored copy, so that
    /// repeated occurrences of the same string share one `Arc` allocation.
    /// Generators use this to dictionary-compress instances at build time.
    pub fn canonical(&mut self, value: Value) -> Value {
        let id = self.intern(&value);
        self.values[id.index()].clone()
    }

    /// The id of a value, if it has been interned.  `None` means no cell of
    /// the column carries this value — useful for short-circuiting probes.
    pub fn lookup(&self, value: &Value) -> Option<ValueId> {
        self.map.get(value).copied()
    }

    /// The value behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this interner.
    pub fn resolve(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Compares the *values* behind two ids, preserving [`Value`]'s total
    /// order (ids are assigned in first-seen order and are not themselves
    /// ordered).
    pub fn cmp_ids(&self, a: ValueId, b: ValueId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.resolve(a).cmp(self.resolve(b))
    }

    /// All distinct values, in id order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Approximate heap bytes held by the dictionary.  String payloads are
    /// counted once (the map shares the `Arc` with the values vector).
    pub fn approx_heap_bytes(&self) -> usize {
        let entry = size_of::<(Value, ValueId)>() + 1;
        let mut bytes = self.map.capacity() * entry + self.values.capacity() * size_of::<Value>();
        for v in &self.values {
            if let Value::Str(s) = v {
                bytes += s.len();
            }
        }
        bytes
    }

    /// Summary counters for reporting.
    pub fn stats(&self) -> InternerStats {
        InternerStats {
            distinct: self.len(),
            heap_bytes: self.approx_heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn equal_values_share_an_id() {
        let mut interner = ValueInterner::new();
        let a = interner.intern(&Value::str("EDI"));
        let b = interner.intern(&Value::str("EDI"));
        let c = interner.intern(&Value::str("NYC"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = ValueInterner::new();
        for v in [
            Value::Null,
            Value::bool(true),
            Value::int(-7),
            Value::real(2.5),
            Value::str(""),
            Value::str("Mayfield"),
        ] {
            let id = interner.intern(&v);
            assert_eq!(interner.resolve(id), &v);
            assert_eq!(interner.lookup(&v), Some(id));
        }
        assert_eq!(interner.lookup(&Value::str("absent")), None);
    }

    #[test]
    fn null_and_ieee_total_order_edge_cases() {
        let mut interner = ValueInterner::new();
        // Null is equal to itself, so it gets one id.
        assert_eq!(interner.intern(&Value::Null), interner.intern(&Value::Null));
        // NaN == NaN under the total order, so one id; -0.0 != +0.0, so two.
        let nan = interner.intern(&Value::real(f64::NAN));
        assert_eq!(interner.intern(&Value::real(f64::NAN)), nan);
        let neg_zero = interner.intern(&Value::real(-0.0));
        let pos_zero = interner.intern(&Value::real(0.0));
        assert_ne!(neg_zero, pos_zero);
        // Int(3) and Real(3.0) are distinct values.
        assert_ne!(
            interner.intern(&Value::int(3)),
            interner.intern(&Value::real(3.0))
        );
    }

    #[test]
    fn cmp_ids_preserves_value_order() {
        let mut interner = ValueInterner::new();
        let big = interner.intern(&Value::int(100));
        let small = interner.intern(&Value::int(2));
        let null = interner.intern(&Value::Null);
        assert_eq!(interner.cmp_ids(small, big), Ordering::Less);
        assert_eq!(interner.cmp_ids(big, small), Ordering::Greater);
        assert_eq!(interner.cmp_ids(big, big), Ordering::Equal);
        assert_eq!(interner.cmp_ids(null, small), Ordering::Less);
    }

    #[test]
    fn canonical_shares_string_allocations() {
        let mut interner = ValueInterner::new();
        let first = interner.canonical(Value::str("Crichton"));
        let second = interner.canonical(Value::str("Crichton"));
        match (&first, &second) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected strings"),
        }
    }
}
