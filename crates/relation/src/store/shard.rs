//! Shard-cursor access to a relation's columnar form.
//!
//! A [`ShardSource`] abstracts over *where the ids live*: an in-RAM
//! [`ColumnarStore`] snapshot of a live instance, or a persisted relation
//! whose id segments are memory-mapped ([`super::persist::MappedRelation`]).
//! Detection passes and partition builds that consume a `ShardSource`
//! advance shard-by-shard — dictionaries stay resident, ids page in and out
//! — so resident memory is bounded by O(dictionaries + one shard + output)
//! regardless of the instance size, and the *same* algorithm code runs
//! byte-identically over both backings (the property suites assert exactly
//! that).

use super::columnar::{Column, ColumnarStore, SHARD_ROWS};
use crate::instance::{RelationInstance, TupleId};
use crate::schema::RelationSchema;
use std::ops::Range;
use std::sync::Arc;

/// A relation seen as a sequence of fixed-size row shards of
/// dictionary-encoded columns.
pub trait ShardSource: Sync {
    /// The relation's schema.
    fn schema(&self) -> &Arc<RelationSchema>;

    /// Number of rows.
    fn len(&self) -> usize;

    /// Is the relation empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows per shard (the last shard may be shorter).
    fn shard_rows(&self) -> usize;

    /// Number of shards.
    fn shard_count(&self) -> usize {
        self.len().div_ceil(self.shard_rows().max(1)).max(1)
    }

    /// The row range of shard `shard`.
    fn shard_range(&self, shard: usize) -> Range<usize> {
        let per = self.shard_rows().max(1);
        (shard * per).min(self.len())..((shard + 1) * per).min(self.len())
    }

    /// The dictionary-encoded column of attribute `attr`.  For mapped
    /// sources the returned column's ids are backed by segment files and
    /// paged in on access.
    fn column(&self, attr: usize) -> Arc<Column>;

    /// The tuple id stored in row `row`.
    fn tuple_id(&self, row: usize) -> TupleId;

    /// The row position of a tuple id, if present.
    fn row_of(&self, id: TupleId) -> Option<usize>;

    /// Hints that a shard's pages are no longer needed (no-op for in-RAM
    /// sources).  Shard-cursor loops call this behind the cursor.
    fn release_shard(&self, _shard: usize) {}
}

/// [`ShardSource`] over an in-RAM columnar snapshot of a live instance —
/// the reference backing the mapped path is property-checked against.
pub struct StoreShardSource<'a> {
    instance: &'a RelationInstance,
    store: Arc<ColumnarStore>,
}

impl<'a> StoreShardSource<'a> {
    /// Wraps the instance's current columnar snapshot.
    pub fn new(instance: &'a RelationInstance) -> Self {
        let store = instance.columnar();
        StoreShardSource { instance, store }
    }

    /// Wraps an explicit snapshot of `instance`.
    pub fn with_store(instance: &'a RelationInstance, store: Arc<ColumnarStore>) -> Self {
        StoreShardSource { instance, store }
    }

    /// The underlying snapshot.
    pub fn store(&self) -> &Arc<ColumnarStore> {
        &self.store
    }
}

impl ShardSource for StoreShardSource<'_> {
    fn schema(&self) -> &Arc<RelationSchema> {
        self.instance.schema()
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn shard_rows(&self) -> usize {
        SHARD_ROWS
    }

    fn column(&self, attr: usize) -> Arc<Column> {
        self.store.column(self.instance, attr)
    }

    fn tuple_id(&self, row: usize) -> TupleId {
        self.store.tuple_id(row)
    }

    fn row_of(&self, id: TupleId) -> Option<usize> {
        self.store.row_of(id)
    }
}
