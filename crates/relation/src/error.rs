//! Error type shared by the relational substrate and the crates above it.

use std::fmt;

/// Result alias with [`DqError`].
pub type DqResult<T> = Result<T, DqError>;

/// Errors raised by the data-quality substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DqError {
    /// A relation name was not found in the database (schema).
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// An attribute name was not found in a relation schema.
    UnknownAttribute {
        /// Relation the attribute was looked up in.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// A tuple's arity did not match its schema.
    ArityMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Expected arity (schema arity).
        expected: usize,
        /// Actual number of values supplied.
        actual: usize,
    },
    /// A value fell outside the domain of its attribute.
    DomainViolation {
        /// Relation of the offending cell.
        relation: String,
        /// Attribute of the offending cell.
        attribute: String,
        /// Display form of the rejected value.
        value: String,
    },
    /// A dependency is not well formed over its schema(s).
    MalformedDependency {
        /// Human readable explanation.
        reason: String,
    },
    /// A query is not well formed or not in a supported class.
    MalformedQuery {
        /// Human readable explanation.
        reason: String,
    },
    /// Text parsing (CSV import) failed.
    Parse {
        /// Human readable explanation.
        reason: String,
    },
    /// A constraint set was rejected by static analysis: no nonempty
    /// instance can satisfy it, so detection or repair against it would be
    /// meaningless (repair could never converge).
    InconsistentConstraints {
        /// Display forms of a *minimal* conflicting core: dropping any one
        /// of these rules makes the remainder consistent.
        core: Vec<String>,
    },
    /// An operating-system I/O operation on a persisted relation failed.
    Io {
        /// Path of the file or directory the operation touched.
        path: String,
        /// Human readable explanation (the OS error).
        reason: String,
    },
    /// A persisted segment failed validation: bad magic, checksum mismatch,
    /// truncated payload, or an undecodable value.
    CorruptSegment {
        /// Path of the offending segment file.
        path: String,
        /// Human readable explanation of what failed to validate.
        reason: String,
    },
    /// A persisted relation was written under a different format version
    /// than this build understands.
    VersionMismatch {
        /// Path of the offending file.
        path: String,
        /// Format version found on disk.
        found: u16,
        /// Format version this build writes and reads.
        expected: u16,
    },
}

impl fmt::Display for DqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DqError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            DqError::UnknownAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "unknown attribute `{attribute}` in relation `{relation}`"
            ),
            DqError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for relation `{relation}`: expected {expected} values, got {actual}"
            ),
            DqError::DomainViolation {
                relation,
                attribute,
                value,
            } => write!(
                f,
                "value `{value}` is outside the domain of `{relation}.{attribute}`"
            ),
            DqError::MalformedDependency { reason } => {
                write!(f, "malformed dependency: {reason}")
            }
            DqError::MalformedQuery { reason } => write!(f, "malformed query: {reason}"),
            DqError::Parse { reason } => write!(f, "parse error: {reason}"),
            DqError::InconsistentConstraints { core } => {
                write!(
                    f,
                    "inconsistent constraint set; minimal conflicting core: {}",
                    core.join(" ; ")
                )
            }
            DqError::Io { path, reason } => write!(f, "io error on `{path}`: {reason}"),
            DqError::CorruptSegment { path, reason } => {
                write!(f, "corrupt segment `{path}`: {reason}")
            }
            DqError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "format version mismatch in `{path}`: found v{found}, this build reads v{expected}"
            ),
        }
    }
}

impl std::error::Error for DqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = DqError::UnknownAttribute {
            relation: "customer".into(),
            attribute: "zipcode".into(),
        };
        assert!(e.to_string().contains("zipcode"));
        assert!(e.to_string().contains("customer"));

        let e = DqError::ArityMismatch {
            relation: "r".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<DqError>();
    }
}
