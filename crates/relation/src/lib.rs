//! # dq-relation
//!
//! An in-memory, typed relational substrate used by every other crate of the
//! `dataquality` workspace.
//!
//! The paper (Fan, PODS 2008) defines all of its dependency classes over
//! standard relational schemas in which every attribute has an explicit
//! domain — and, unusually for dependency theory, the *finiteness* of domains
//! matters (Section 4.1: consistency of CFDs interacts with finite-domain
//! attributes).  This crate therefore models:
//!
//! * [`value::Value`] — dynamically typed constants with a total order and a
//!   hash, so they can be grouped, indexed and compared by the detection and
//!   repair algorithms;
//! * [`schema::Domain`] — infinite built-in domains (`Int`, `Real`, `Text`)
//!   and explicitly finite domains (`Bool`, enumerated `Finite` domains);
//! * [`schema::RelationSchema`] / [`schema::DatabaseSchema`] — attribute
//!   lists with domains;
//! * [`instance::RelationInstance`] / [`instance::Database`] — tuple stores
//!   with stable [`instance::TupleId`]s, so violations and repairs can refer
//!   to cells `(tuple, attribute)`;
//! * [`index::HashIndex`] — hash partitioning of a relation on an attribute
//!   list, the workhorse of CFD/CIND violation detection;
//! * [`algebra`] — selection / projection / Cartesian product / union views
//!   (the SPCU fragment used by dependency propagation, Theorem 4.7) with
//!   column provenance;
//! * [`query`] — conjunctive queries and a small first-order evaluator used
//!   by consistent query answering (Section 5.2).

pub mod algebra;
pub mod csv;
pub mod error;
pub mod index;
pub mod instance;
pub mod query;
pub mod schema;
pub mod store;
pub mod tuple;
pub mod value;

/// Frequently used items.
pub mod prelude {
    pub use crate::algebra::{Predicate, View};
    pub use crate::error::{DqError, DqResult};
    pub use crate::index::{HashIndex, IndexPool, IndexPoolStats};
    pub use crate::instance::{CellChange, CellRef, Database, RelationInstance, TupleId};
    pub use crate::query::{
        Atom, Binding, CompOp, Comparison, ConjunctiveQuery, FoQuery, Formula, Term,
    };
    pub use crate::schema::{Attribute, DatabaseSchema, Domain, RelationSchema};
    pub use crate::store::{
        open_mmap, open_mmap_verified, save_postings, Column, ColumnarStats, ColumnarStore,
        DistinctSet, FxHashMap, FxHashSet, FxHasher, IdTranslation, InternedIndex, InternerStats,
        KeyCodec, MappedBytes, MappedRelation, ProjectionKey, RelationWriter, SaveStats,
        ShardSource, StoreShardSource, ValueId, ValueInterner,
    };
    pub use crate::tuple::Tuple;
    pub use crate::value::{
        levenshtein, levenshtein_within, levenshtein_within_scratch, normalized_levenshtein,
        value_distance, Value,
    };
}

pub use prelude::*;
