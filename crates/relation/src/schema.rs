//! Schemas and domains.
//!
//! The paper is explicit (Section 2.1 and 4.1) that, unlike classical
//! dependency theory, the reasoning about conditional dependencies must take
//! attribute domains into account: whether `dom(A)` is finite changes the
//! complexity of consistency and implication (Table 1).  Domains are
//! therefore first-class values here, and schemas expose whether any of their
//! attributes range over a finite domain.

use crate::error::{DqError, DqResult};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The domain of an attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Unbounded integers.
    Int,
    /// Unbounded reals.
    Real,
    /// Unbounded strings.
    Text,
    /// The two-element boolean domain (finite).
    Bool,
    /// An explicitly enumerated finite domain, e.g. US states or the set of
    /// New York City area codes of Section 2.3.
    Finite(Arc<[Value]>),
}

impl Domain {
    /// Builds an enumerated finite domain from string constants.
    pub fn finite_str<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Domain::Finite(values.into_iter().map(Value::str).collect())
    }

    /// Builds an enumerated finite domain from integer constants.
    pub fn finite_int<I>(values: I) -> Self
    where
        I: IntoIterator<Item = i64>,
    {
        Domain::Finite(values.into_iter().map(Value::int).collect())
    }

    /// Is this a finite domain?  (Section 4.1: finite domains are the source
    /// of intractability for CFD consistency.)
    pub fn is_finite(&self) -> bool {
        matches!(self, Domain::Bool | Domain::Finite(_))
    }

    /// The number of elements of a finite domain, `None` for infinite ones.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Bool => Some(2),
            Domain::Finite(vs) => Some(vs.len()),
            _ => None,
        }
    }

    /// Enumerates the elements of a finite domain.
    pub fn enumerate(&self) -> Option<Vec<Value>> {
        match self {
            Domain::Bool => Some(vec![Value::Bool(false), Value::Bool(true)]),
            Domain::Finite(vs) => Some(vs.to_vec()),
            _ => None,
        }
    }

    /// Does `v` belong to this domain?  `Null` is allowed in every domain.
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true,
            (Domain::Int, Value::Int(_)) => true,
            (Domain::Real, Value::Real(_)) | (Domain::Real, Value::Int(_)) => true,
            (Domain::Text, Value::Str(_)) => true,
            (Domain::Bool, Value::Bool(_)) => true,
            (Domain::Finite(vs), v) => vs.iter().any(|x| x == v),
            _ => false,
        }
    }

    /// Two domains are *compatible* (Section 3.2) when values of one can be
    /// meaningfully compared against values of the other.
    pub fn compatible_with(&self, other: &Domain) -> bool {
        use Domain::*;
        match (self, other) {
            (Int, Int) | (Real, Real) | (Text, Text) | (Bool, Bool) => true,
            (Int, Real) | (Real, Int) => true,
            (Finite(a), Finite(b)) => {
                a.first().map(|v| v.type_name()) == b.first().map(|v| v.type_name())
            }
            (Finite(a), d) | (d, Finite(a)) => a.first().map(|v| d.contains(v)).unwrap_or(true),
            _ => false,
        }
    }

    /// A representative value *outside* the listed constants, used by the
    /// consistency and implication procedures to instantiate an unnamed
    /// variable `_` over an infinite domain with a fresh constant.  Returns
    /// `None` when the domain is finite and exhausted by `used`.
    pub fn fresh_value(&self, used: &[Value]) -> Option<Value> {
        match self {
            Domain::Int => {
                let mut candidate: i64 = 1_000_000;
                loop {
                    let v = Value::Int(candidate);
                    if !used.contains(&v) {
                        return Some(v);
                    }
                    candidate += 1;
                }
            }
            Domain::Real => {
                let mut candidate = 1_000_000.5;
                loop {
                    let v = Value::Real(candidate);
                    if !used.contains(&v) {
                        return Some(v);
                    }
                    candidate += 1.0;
                }
            }
            Domain::Text => {
                let mut i = 0usize;
                loop {
                    let v = Value::str(format!("_fresh_{i}"));
                    if !used.contains(&v) {
                        return Some(v);
                    }
                    i += 1;
                }
            }
            Domain::Bool | Domain::Finite(_) => self
                .enumerate()
                .unwrap()
                .into_iter()
                .find(|v| !used.contains(v)),
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Int => write!(f, "int"),
            Domain::Real => write!(f, "real"),
            Domain::Text => write!(f, "text"),
            Domain::Bool => write!(f, "bool"),
            Domain::Finite(vs) => write!(f, "finite[{}]", vs.len()),
        }
    }
}

/// A named, typed attribute of a relation schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (unique within its relation schema).
    pub name: String,
    /// Domain of the attribute.
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }
}

/// A relation schema `R(A1: dom1, ..., An: domn)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<Attribute>,
    by_name: BTreeMap<String, usize>,
}

impl RelationSchema {
    /// Builds a schema from `(attribute name, domain)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name — schemas are static program
    /// data, so this is a programming error rather than a runtime condition.
    pub fn new<I, S>(name: impl Into<String>, attrs: I) -> Self
    where
        I: IntoIterator<Item = (S, Domain)>,
        S: Into<String>,
    {
        let attributes: Vec<Attribute> = attrs
            .into_iter()
            .map(|(n, d)| Attribute::new(n, d))
            .collect();
        let mut by_name = BTreeMap::new();
        for (i, a) in attributes.iter().enumerate() {
            let prev = by_name.insert(a.name.clone(), i);
            assert!(prev.is_none(), "duplicate attribute name `{}`", a.name);
        }
        RelationSchema {
            name: name.into(),
            attributes,
            by_name,
        }
    }

    /// Schema (relation) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of an attribute by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Index of an attribute by name, returning an error naming the schema.
    pub fn require_attr(&self, name: &str) -> DqResult<usize> {
        self.attr_index(name)
            .ok_or_else(|| DqError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_string(),
            })
    }

    /// Index of an attribute by name.
    ///
    /// # Panics
    /// Panics when the attribute does not exist; use [`Self::attr_index`] for
    /// a fallible lookup.  Dependency definitions are static program data, so
    /// this is the ergonomic accessor used throughout examples and tests.
    pub fn attr(&self, name: &str) -> usize {
        self.require_attr(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Resolves a list of attribute names into indexes.
    pub fn attrs(&self, names: &[&str]) -> Vec<usize> {
        names.iter().map(|n| self.attr(n)).collect()
    }

    /// The attribute at `idx`.
    pub fn attribute(&self, idx: usize) -> &Attribute {
        &self.attributes[idx]
    }

    /// Name of the attribute at `idx`.
    pub fn attr_name(&self, idx: usize) -> &str {
        &self.attributes[idx].name
    }

    /// Domain of the attribute at `idx`.
    pub fn domain(&self, idx: usize) -> &Domain {
        &self.attributes[idx].domain
    }

    /// Does any attribute of this schema range over a finite domain?
    pub fn has_finite_domain_attribute(&self) -> bool {
        self.attributes.iter().any(|a| a.domain.is_finite())
    }

    /// Indexes of all finite-domain attributes.
    pub fn finite_domain_attributes(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.domain.is_finite())
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.domain)?;
        }
        write!(f, ")")
    }
}

/// A database schema: a set of relation schemas indexed by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    relations: BTreeMap<String, Arc<RelationSchema>>,
}

impl DatabaseSchema {
    /// Creates an empty database schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database schema from relation schemas.
    pub fn from_relations<I>(relations: I) -> Self
    where
        I: IntoIterator<Item = RelationSchema>,
    {
        let mut s = Self::new();
        for r in relations {
            s.add(r);
        }
        s
    }

    /// Adds (or replaces) a relation schema.
    pub fn add(&mut self, schema: RelationSchema) -> Arc<RelationSchema> {
        let arc = Arc::new(schema);
        self.relations
            .insert(arc.name().to_string(), Arc::clone(&arc));
        arc
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Option<Arc<RelationSchema>> {
        self.relations.get(name).cloned()
    }

    /// Looks up a relation schema, failing with a descriptive error.
    pub fn require_relation(&self, name: &str) -> DqResult<Arc<RelationSchema>> {
        self.relation(name).ok_or_else(|| DqError::UnknownRelation {
            relation: name.to_string(),
        })
    }

    /// Iterates over all relation schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<RelationSchema>> {
        self.relations.values()
    }

    /// Number of relation schemas.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> RelationSchema {
        RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("phn", Domain::Int),
                ("name", Domain::Text),
                ("street", Domain::Text),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        )
    }

    #[test]
    fn attribute_lookup_by_name_and_index() {
        let s = customer();
        assert_eq!(s.arity(), 7);
        assert_eq!(s.attr("zip"), 6);
        assert_eq!(s.attr_index("missing"), None);
        assert_eq!(s.attr_name(0), "CC");
        assert!(s.require_attr("nope").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_names_are_rejected() {
        RelationSchema::new("r", [("A", Domain::Int), ("A", Domain::Text)]);
    }

    #[test]
    fn finite_domain_detection() {
        let s = customer();
        assert!(!s.has_finite_domain_attribute());
        let t = RelationSchema::new("r", [("A", Domain::Bool), ("B", Domain::Text)]);
        assert!(t.has_finite_domain_attribute());
        assert_eq!(t.finite_domain_attributes(), vec![0]);
    }

    #[test]
    fn finite_domain_membership_and_enumeration() {
        let ac = Domain::finite_int([212, 718, 646, 347, 917]);
        assert!(ac.is_finite());
        assert_eq!(ac.cardinality(), Some(5));
        assert!(ac.contains(&Value::int(718)));
        assert!(!ac.contains(&Value::int(131)));
        assert!(ac.contains(&Value::Null));
        assert_eq!(ac.enumerate().unwrap().len(), 5);
    }

    #[test]
    fn infinite_domain_membership() {
        assert!(Domain::Int.contains(&Value::int(5)));
        assert!(!Domain::Int.contains(&Value::str("x")));
        assert!(Domain::Real.contains(&Value::int(5)));
        assert!(Domain::Text.contains(&Value::str("x")));
    }

    #[test]
    fn fresh_value_avoids_used_constants() {
        let used = vec![Value::Bool(false)];
        assert_eq!(Domain::Bool.fresh_value(&used), Some(Value::Bool(true)));
        let both = vec![Value::Bool(false), Value::Bool(true)];
        assert_eq!(Domain::Bool.fresh_value(&both), None);
        let fresh = Domain::Text.fresh_value(&[Value::str("_fresh_0")]).unwrap();
        assert_ne!(fresh, Value::str("_fresh_0"));
    }

    #[test]
    fn domain_compatibility() {
        assert!(Domain::Int.compatible_with(&Domain::Real));
        assert!(Domain::Text.compatible_with(&Domain::Text));
        assert!(!Domain::Text.compatible_with(&Domain::Int));
        let f = Domain::finite_str(["a", "b"]);
        assert!(f.compatible_with(&Domain::Text));
    }

    #[test]
    fn database_schema_lookup() {
        let mut db = DatabaseSchema::new();
        db.add(customer());
        assert!(db.relation("customer").is_some());
        assert!(db.relation("order").is_none());
        assert!(db.require_relation("order").is_err());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn display_formats() {
        let s = RelationSchema::new("r", [("A", Domain::Bool)]);
        assert_eq!(s.to_string(), "r(A: bool)");
        assert_eq!(Domain::finite_int([1, 2, 3]).to_string(), "finite[3]");
    }
}
