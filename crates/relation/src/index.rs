//! Hash partitioning of an instance on an attribute list.
//!
//! CFD violation detection (Section 2.1) boils down to grouping tuples on the
//! LHS attributes of the embedded FD and inspecting each group; CIND
//! detection (Section 2.2) boils down to probing the right-hand relation on
//! the correspondence attributes.  Both are served by [`HashIndex`].
//!
//! Building an index is the dominant cost of detection on large instances,
//! and dependency sets routinely share left-hand sides (every normalized
//! fragment of a CFD keeps its parent's LHS).  [`IndexPool`] therefore
//! memoizes built indexes per `(instance identity, instance version,
//! attribute list)`, so a batch of dependencies grouped by LHS builds each
//! index exactly once — and repeated detection runs over an unchanged
//! instance rebuild nothing at all.

use crate::instance::{RelationInstance, TupleId};
use crate::store::{DistinctSet, InternedIndex};
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A hash index mapping the projection of each tuple onto a fixed attribute
/// list to the set of tuple ids sharing that projection.
#[derive(Clone, Debug)]
pub struct HashIndex {
    attrs: Vec<usize>,
    groups: HashMap<Vec<Value>, Vec<TupleId>>,
}

impl HashIndex {
    /// Builds an index of `instance` on the attribute positions `attrs`.
    pub fn build(instance: &RelationInstance, attrs: &[usize]) -> Self {
        let mut groups: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::with_capacity(instance.len());
        for (id, tuple) in instance.iter() {
            let key = tuple.project(attrs);
            match groups.entry(key) {
                Entry::Occupied(mut e) => e.get_mut().push(id),
                Entry::Vacant(e) => {
                    e.insert(vec![id]);
                }
            }
        }
        HashIndex {
            attrs: attrs.to_vec(),
            groups,
        }
    }

    /// The attribute positions this index is keyed on.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Tuple ids whose projection equals `key`.
    pub fn get(&self, key: &[Value]) -> &[TupleId] {
        self.groups.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Does any tuple project to `key`?
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.groups.contains_key(key)
    }

    /// Iterates over `(key, group)` pairs.
    pub fn groups(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<TupleId>)> {
        self.groups.iter()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups containing at least two tuples — the only candidates for
    /// variable (FD-style) violations.
    pub fn multi_groups(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<TupleId>)> {
        self.groups.iter().filter(|(_, g)| g.len() > 1)
    }

    /// Approximate heap bytes held by the index: map buckets, per-key value
    /// vectors and per-group id vectors.  String payloads are shared with
    /// the instance (`Arc`) and not counted.  This is the `Vec<Value>`-keyed
    /// baseline the bench harness compares
    /// [`InternedIndex::approx_heap_bytes`] against.
    pub fn approx_heap_bytes(&self) -> usize {
        let entry = size_of::<(Vec<Value>, Vec<TupleId>)>() + 1;
        let mut bytes = self.groups.capacity() * entry;
        for (key, group) in &self.groups {
            bytes += key.capacity() * size_of::<Value>() + group.capacity() * size_of::<TupleId>();
        }
        bytes
    }
}

/// Cache key of a memoized index: which instance, at which version, on which
/// attribute list.
type PoolKey = (u64, u64, Vec<usize>);

/// Pre-registered `dq-obs` handles mirroring the pool's counters into the
/// process-wide recorder as live metrics, plus latency histograms for the
/// build/extend/patch paths.  Near-no-ops while recording is off.
struct PoolObs {
    hits: dq_obs::Counter,
    misses: dq_obs::Counter,
    appends: dq_obs::Counter,
    patches: dq_obs::Counter,
    races: dq_obs::Counter,
    entries: dq_obs::Gauge,
    build_ns: dq_obs::Histogram,
    extend_ns: dq_obs::Histogram,
    patch_ns: dq_obs::Histogram,
}

impl PoolObs {
    fn new() -> Self {
        let rec = dq_obs::recorder();
        PoolObs {
            hits: rec.counter("pool.hits"),
            misses: rec.counter("pool.misses"),
            appends: rec.counter("pool.appends"),
            patches: rec.counter("pool.patches"),
            races: rec.counter("pool.races"),
            entries: rec.gauge("pool.entries"),
            build_ns: rec.histogram("index.build_ns"),
            extend_ns: rec.histogram("index.extend_ns"),
            patch_ns: rec.histogram("index.patch_ns"),
        }
    }
}

impl std::fmt::Debug for PoolObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolObs")
    }
}

/// Hit/miss/size counters of an [`IndexPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexPoolStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to build an index.
    pub misses: u64,
    /// Misses served by extending a cached index of an older version after
    /// append-only mutations, instead of a full rebuild (a subset of
    /// `misses`).
    pub appends: u64,
    /// Misses served by *patching* a cached index of an older version after
    /// journaled cell writes — moving only the changed rows between groups
    /// — instead of a full rebuild (a subset of `misses`, disjoint from
    /// `appends`).
    pub patches: u64,
    /// Duplicate build races: misses whose build was discarded because a
    /// concurrent request built and inserted the same index first (builds
    /// run outside the cache lock, so two threads missing on the same cold
    /// key both build; the first insert wins and the loser's work is
    /// counted here).  A subset of `misses`.
    pub races: u64,
    /// Indexes currently cached.
    pub entries: usize,
}

impl dq_obs::MetricSource for IndexPoolStats {
    fn emit(&self, prefix: &str, sink: &mut dyn dq_obs::MetricSink) {
        sink.counter(&format!("{prefix}.hits"), self.hits);
        sink.counter(&format!("{prefix}.misses"), self.misses);
        sink.counter(&format!("{prefix}.appends"), self.appends);
        sink.counter(&format!("{prefix}.patches"), self.patches);
        sink.counter(&format!("{prefix}.races"), self.races);
        sink.gauge(
            &format!("{prefix}.entries"),
            i64::try_from(self.entries).unwrap_or(i64::MAX),
        );
    }
}

/// A thread-safe memo table of indexes keyed by
/// `(instance identity, instance version, attribute list)` — value-keyed
/// [`HashIndex`]es, compact [`InternedIndex`]es and distinct-projection
/// [`DistinctSet`]s side by side.
///
/// Any mutation of an instance bumps its [`RelationInstance::version`], so a
/// pool entry can never be served stale: a request for the mutated instance
/// simply misses and builds afresh.  Entries for outdated versions of the
/// requested instance are dropped eagerly on every insert (a mutation makes
/// them unreachable forever, so keeping them would grow the pool without
/// bound across mutate-and-detect loops); entries of *other* instances are
/// evicted only under capacity pressure.
///
/// The pool hands out `Arc`s so detection work can fan out across threads
/// while sharing one build of each index.
#[derive(Debug)]
pub struct IndexPool {
    capacity: usize,
    cache: Mutex<HashMap<PoolKey, Arc<HashIndex>>>,
    interned: Mutex<HashMap<PoolKey, Arc<InternedIndex>>>,
    distinct: Mutex<HashMap<PoolKey, Arc<DistinctSet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
    patches: AtomicU64,
    races: AtomicU64,
    obs: PoolObs,
}

impl Default for IndexPool {
    fn default() -> Self {
        Self::with_capacity(64)
    }
}

impl IndexPool {
    /// A pool with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool evicting once it holds `capacity` indexes (at least 1).  The
    /// bound is soft: the current version of the instance being probed is
    /// never evicted, so one oversized detection batch may exceed it
    /// temporarily rather than thrash.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexPool {
            capacity: capacity.max(1),
            cache: Mutex::new(HashMap::new()),
            interned: Mutex::new(HashMap::new()),
            distinct: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            races: AtomicU64::new(0),
            obs: PoolObs::new(),
        }
    }

    /// Inserts a freshly built index, dropping entries this insert orphans:
    /// always the requested instance's outdated versions (a mutation made
    /// them unreachable forever — without this, mutate-and-detect loops grow
    /// the pool without bound), and under capacity pressure everything but
    /// the requested `(instance, version)`.  Capacity stays a soft bound: a
    /// single detection batch needing more distinct indexes than `capacity`
    /// keeps them all — evicting live-version entries mid-batch would
    /// silently rebuild every index twice.
    /// `keep_stale` may exempt selected stale entries of the requested
    /// instance from the eager purge (the interned cache keeps the latest
    /// upgradable entry per *other* attribute list alive so it can still
    /// serve as an extension or patch donor; growth stays bounded because
    /// each attribute list's own insert drops its predecessors).
    /// Re-checks for a concurrent insert of the same key (builds run
    /// outside the lock): an already-present entry wins and the caller's
    /// duplicate build is discarded, counted in [`IndexPoolStats::races`].
    fn insert_evicting<V>(
        &self,
        cache: &mut HashMap<PoolKey, V>,
        key: PoolKey,
        built: V,
        keep_stale: impl Fn(&PoolKey) -> bool,
    ) -> V
    where
        V: Clone,
    {
        let before = cache.len();
        cache.retain(|cached, _| cached.0 != key.0 || cached.1 == key.1 || keep_stale(cached));
        if cache.len() >= self.capacity {
            cache.retain(|(id, version, _), _| *id == key.0 && *version == key.1);
        }
        let kept = match cache.entry(key) {
            Entry::Occupied(winner) => {
                self.races.fetch_add(1, Ordering::Relaxed);
                self.obs.races.inc();
                winner.get().clone()
            }
            Entry::Vacant(slot) => slot.insert(built).clone(),
        };
        self.obs.entries.add(cache.len() as i64 - before as i64);
        kept
    }

    /// The value-keyed index of `instance` on `attrs`, built at most once per
    /// instance version.
    pub fn index_for(&self, instance: &RelationInstance, attrs: &[usize]) -> Arc<HashIndex> {
        let key: PoolKey = (instance.instance_id(), instance.version(), attrs.to_vec());
        if let Some(hit) = self.cache.lock().expect("index pool poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.hits.inc();
            return Arc::clone(hit);
        }
        // Build outside the lock so concurrent requests for *different*
        // indexes proceed in parallel; a racing duplicate build of the same
        // index is benign (first write wins, both results are identical).
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs.misses.inc();
        let built = Arc::new(self.obs.build_ns.time(|| HashIndex::build(instance, attrs)));
        let mut cache = self.cache.lock().expect("index pool poisoned");
        self.insert_evicting(&mut cache, key, built, |_| false)
    }

    /// The upgrade-or-build protocol shared by every columnar artifact
    /// ([`InternedIndex`], [`DistinctSet`]): serve a hit, else find the best
    /// upgradable predecessor — same instance and attributes, older version,
    /// every mutation in between either an insert or a journaled cell write
    /// ([`RelationInstance::delta_covers`]) — and let `upgrade` re-key only
    /// the appended rows (counted in [`IndexPoolStats::appends`]) or move
    /// only the edited rows between groups (counted in
    /// [`IndexPoolStats::patches`]), falling back to `build`.  The insert
    /// keeps stale entries on *other* attribute lists alive while they stay
    /// upgradable, so one mutation round can upgrade every cached artifact,
    /// not just the first one re-requested; each attribute list's own insert
    /// still drops its predecessors.
    fn artifact_for<V>(
        &self,
        cache: &Mutex<HashMap<PoolKey, Arc<V>>>,
        instance: &RelationInstance,
        attrs: &[usize],
        upgrade: impl Fn(&V) -> Option<V>,
        build: impl FnOnce() -> V,
    ) -> Arc<V> {
        let key: PoolKey = (instance.instance_id(), instance.version(), attrs.to_vec());
        let predecessor = {
            let cache = cache.lock().expect("index pool poisoned");
            if let Some(hit) = cache.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs.hits.inc();
                return Arc::clone(hit);
            }
            cache
                .iter()
                .filter(|((id, version, cached_attrs), _)| {
                    *id == key.0
                        && *version < key.1
                        && cached_attrs == attrs
                        && instance.delta_covers(*version)
                })
                .max_by_key(|((_, version, _), _)| *version)
                .map(|(_, artifact)| Arc::clone(artifact))
        };
        // Build outside the lock so concurrent requests for *different*
        // artifacts proceed in parallel; a racing duplicate build of the
        // same one is benign (first write wins, results are identical).
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs.misses.inc();
        let upgraded = predecessor.and_then(|prev| upgrade(&prev));
        let built = Arc::new(match upgraded {
            Some(artifact) => artifact,
            None => self.obs.build_ns.time(build),
        });
        let mut cache = cache.lock().expect("index pool poisoned");
        self.insert_evicting(&mut cache, key, built, |cached| {
            cached.2 != *attrs && instance.delta_covers(cached.1)
        })
    }

    /// Shared append-vs-patch dispatch of the upgrade closures: an
    /// append-only gap takes `extend`, a journal-covered gap takes `patch`
    /// with the coalesced cell changes, and success bumps the matching
    /// counter.  `prev_version` must be the cached artifact's snapshot
    /// version.
    fn upgrade_artifact<V>(
        &self,
        instance: &RelationInstance,
        prev_version: u64,
        extend: impl FnOnce() -> Option<V>,
        patch: impl FnOnce(&[crate::instance::CellChange]) -> Option<V>,
    ) -> Option<V> {
        if instance.append_only_since(prev_version) {
            self.obs.extend_ns.time(extend).inspect(|_| {
                self.appends.fetch_add(1, Ordering::Relaxed);
                self.obs.appends.inc();
            })
        } else {
            let changes = instance.changed_cells_since(prev_version)?;
            self.obs.patch_ns.time(|| patch(&changes)).inspect(|_| {
                self.patches.fetch_add(1, Ordering::Relaxed);
                self.obs.patches.inc();
            })
        }
    }

    /// The interned (compact-key, CSR) index of `instance` on `attrs`, built
    /// at most once per instance version over the instance's columnar
    /// snapshot, using up to `threads` workers for a cold build.
    ///
    /// When the pool holds an index of an older version of the same
    /// instance on the same attributes, a miss is served without a full
    /// rebuild whenever the gap is covered: append-only growth
    /// ([`RelationInstance::append_only_since`]) takes
    /// [`InternedIndex::try_extended`] — re-keying only the appended rows —
    /// and journaled cell writes ([`RelationInstance::delta_covers`]) take
    /// [`InternedIndex::try_patched`] — moving only the edited rows between
    /// groups.  Removals, raw tuple access and journal overflow fall back
    /// to rebuilding.
    pub fn interned_for(
        &self,
        instance: &RelationInstance,
        attrs: &[usize],
        threads: usize,
    ) -> Arc<InternedIndex> {
        self.artifact_for(
            &self.interned,
            instance,
            attrs,
            |prev| {
                let store = instance.columnar();
                self.upgrade_artifact(
                    instance,
                    prev.store().version(),
                    || InternedIndex::try_extended(prev, instance, &store),
                    |changes| InternedIndex::try_patched(prev, instance, &store, changes),
                )
            },
            || InternedIndex::build(instance, &instance.columnar(), attrs, threads),
        )
    }

    /// The distinct-projection set of `instance` on `attrs`, built at most
    /// once per instance version over the instance's columnar snapshot,
    /// using up to `threads` workers for a cold build.
    ///
    /// Misses after append-only growth are served by
    /// [`DistinctSet::try_extended`] — only the appended rows are packed and
    /// inserted, with the same repack-aware radix handling as the interned
    /// indexes — and count into [`IndexPoolStats::appends`]; misses after
    /// journaled cell writes are served by [`DistinctSet::try_patched`] —
    /// inserting the edited rows' new keys and dropping vacated ones — and
    /// count into [`IndexPoolStats::patches`].
    pub fn distinct_for(
        &self,
        instance: &RelationInstance,
        attrs: &[usize],
        threads: usize,
    ) -> Arc<DistinctSet> {
        self.artifact_for(
            &self.distinct,
            instance,
            attrs,
            |prev| {
                let store = instance.columnar();
                self.upgrade_artifact(
                    instance,
                    prev.store().version(),
                    || DistinctSet::try_extended(prev, instance, &store),
                    |changes| DistinctSet::try_patched(prev, instance, &store, changes),
                )
            },
            || DistinctSet::build(instance, &instance.columnar(), attrs, threads),
        )
    }

    /// Drops every cached index of `instance` (any version).  Mutations make
    /// old entries unreachable already; this reclaims their memory eagerly.
    pub fn invalidate(&self, instance: &RelationInstance) {
        fn retain_others<V>(
            cache: &Mutex<HashMap<PoolKey, V>>,
            instance_id: u64,
            dropped: &mut i64,
        ) {
            let mut cache = cache.lock().expect("index pool poisoned");
            let before = cache.len();
            cache.retain(|(id, _, _), _| *id != instance_id);
            *dropped += (before - cache.len()) as i64;
        }
        let mut dropped = 0i64;
        retain_others(&self.cache, instance.instance_id(), &mut dropped);
        retain_others(&self.interned, instance.instance_id(), &mut dropped);
        retain_others(&self.distinct, instance.instance_id(), &mut dropped);
        self.obs.entries.add(-dropped);
    }

    /// Drops every cached index.
    pub fn clear(&self) {
        fn drain<V>(cache: &Mutex<HashMap<PoolKey, V>>, dropped: &mut i64) {
            let mut cache = cache.lock().expect("index pool poisoned");
            *dropped += cache.len() as i64;
            cache.clear();
        }
        let mut dropped = 0i64;
        drain(&self.cache, &mut dropped);
        drain(&self.interned, &mut dropped);
        drain(&self.distinct, &mut dropped);
        self.obs.entries.add(-dropped);
    }

    /// Current cache counters (hits and misses aggregate every index kind;
    /// entries counts all caches).
    pub fn stats(&self) -> IndexPoolStats {
        IndexPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            entries: self.cache.lock().expect("index pool poisoned").len()
                + self.interned.lock().expect("index pool poisoned").len()
                + self.distinct.lock().expect("index pool poisoned").len(),
        }
    }

    /// Number of entries across all three caches (for gauge bookkeeping).
    fn cached_entries(&mut self) -> usize {
        self.cache.get_mut().expect("index pool poisoned").len()
            + self.interned.get_mut().expect("index pool poisoned").len()
            + self.distinct.get_mut().expect("index pool poisoned").len()
    }

    /// Approximate heap bytes across every cached distinct-projection set.
    pub fn approx_distinct_bytes(&self) -> usize {
        self.distinct
            .lock()
            .expect("index pool poisoned")
            .values()
            .map(|set| set.approx_heap_bytes())
            .sum()
    }

    /// Approximate heap bytes across every cached interned index (the
    /// value-keyed cache is the legacy path and is not tracked).
    pub fn approx_interned_bytes(&self) -> usize {
        self.interned
            .lock()
            .expect("index pool poisoned")
            .values()
            .map(|idx| idx.approx_heap_bytes())
            .sum()
    }
}

impl Drop for IndexPool {
    /// Releases this pool's share of the process-wide `pool.entries`
    /// gauge, so the gauge tracks live caches even as pools come and go.
    fn drop(&mut self) {
        let entries = self.cached_entries();
        self.obs.entries.add(-(entries as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, RelationSchema};

    fn instance() -> RelationInstance {
        let schema = RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Text), ("C", Domain::Text)],
        );
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b, c) in [(1, "x", "p"), (1, "x", "q"), (2, "y", "p"), (1, "z", "p")] {
            inst.insert_values([Value::int(a), Value::str(b), Value::str(c)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn groups_by_projection() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[0, 1]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get(&[Value::int(1), Value::str("x")]).len(), 2);
        assert_eq!(idx.get(&[Value::int(2), Value::str("y")]).len(), 1);
        assert!(idx.get(&[Value::int(9), Value::str("x")]).is_empty());
    }

    #[test]
    fn multi_groups_only_returns_groups_with_collisions() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[0, 1]);
        let multi: Vec<_> = idx.multi_groups().collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].0, &vec![Value::int(1), Value::str("x")]);
    }

    #[test]
    fn empty_attribute_list_groups_everything_together() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(&[]).len(), 4);
    }

    #[test]
    fn contains_key_matches_get() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[2]);
        assert!(idx.contains_key(&[Value::str("p")]));
        assert!(!idx.contains_key(&[Value::str("missing")]));
    }

    #[test]
    fn pool_reuses_indexes_for_an_unchanged_instance() {
        let inst = instance();
        let pool = IndexPool::new();
        let a = pool.index_for(&inst, &[0, 1]);
        let b = pool.index_for(&inst, &[0, 1]);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn pool_distinguishes_attribute_lists() {
        let inst = instance();
        let pool = IndexPool::new();
        let a = pool.index_for(&inst, &[0]);
        let b = pool.index_for(&inst, &[1]);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(pool.stats().entries, 2);
    }

    #[test]
    fn pool_misses_after_mutation() {
        let mut inst = instance();
        let pool = IndexPool::new();
        let before = pool.index_for(&inst, &[0]);
        inst.insert_values([Value::int(9), Value::str("w"), Value::str("p")])
            .unwrap();
        let after = pool.index_for(&inst, &[0]);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(before.get(&[Value::int(9)]).len(), 0);
        assert_eq!(after.get(&[Value::int(9)]).len(), 1);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn pool_does_not_confuse_clones() {
        let inst = instance();
        let clone = inst.clone();
        let pool = IndexPool::new();
        let a = pool.index_for(&inst, &[0]);
        let b = pool.index_for(&clone, &[0]);
        assert!(!Arc::ptr_eq(&a, &b), "clones must have distinct cache keys");
    }

    #[test]
    fn pool_eviction_prefers_stale_versions() {
        let mut inst = instance();
        let pool = IndexPool::with_capacity(2);
        pool.index_for(&inst, &[0]);
        pool.index_for(&inst, &[1]);
        inst.insert_values([Value::int(5), Value::str("v"), Value::str("q")])
            .unwrap();
        // Capacity reached: inserting an index of the new version evicts the
        // two stale ones rather than growing.
        pool.index_for(&inst, &[0]);
        let stats = pool.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn pool_capacity_is_soft_for_the_live_version() {
        // A batch needing more distinct indexes than capacity keeps them
        // all: re-requesting any of them must not rebuild.
        let inst = instance();
        let pool = IndexPool::with_capacity(2);
        for attrs in [&[0usize][..], &[1], &[2], &[0, 1]] {
            pool.index_for(&inst, attrs);
        }
        assert_eq!(pool.stats().misses, 4);
        for attrs in [&[0usize][..], &[1], &[2], &[0, 1]] {
            pool.index_for(&inst, attrs);
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 4, "live-version entries are never evicted");
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn pool_pressure_evicts_other_instances() {
        let a = instance();
        let b = instance();
        let pool = IndexPool::with_capacity(2);
        pool.index_for(&a, &[0]);
        pool.index_for(&a, &[1]);
        // Inserting for `b` under pressure drops `a`'s (possibly dead)
        // entries instead of growing without bound.
        pool.index_for(&b, &[0]);
        let stats = pool.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn mutation_loops_do_not_grow_the_pool_without_bound() {
        // Regression test: entries for orphaned `(instance, version)` pairs
        // used to survive until capacity pressure, so a mutate-and-detect
        // loop accumulated one dead index per iteration.  Stale versions of
        // the same instance are now dropped on insert.
        let mut inst = instance();
        let pool = IndexPool::new(); // default capacity far above 1
        for i in 0..10 {
            inst.insert_values([Value::int(i), Value::str("w"), Value::str("p")])
                .unwrap();
            pool.index_for(&inst, &[0]);
            assert_eq!(
                pool.stats().entries,
                1,
                "only the live version may stay cached (iteration {i})"
            );
        }
        assert_eq!(pool.stats().misses, 10);
    }

    #[test]
    fn mutation_loops_do_not_grow_the_interned_pool_either() {
        let mut inst = instance();
        let pool = IndexPool::new();
        for i in 0..10 {
            inst.insert_values([Value::int(i), Value::str("w"), Value::str("p")])
                .unwrap();
            pool.interned_for(&inst, &[0], 1);
            pool.interned_for(&inst, &[0, 1], 1);
            assert_eq!(pool.stats().entries, 2);
        }
        assert_eq!(pool.stats().misses, 20);
    }

    #[test]
    fn stale_eviction_keeps_other_instances() {
        // Dropping stale versions of the mutated instance must not touch
        // other instances' live entries while under capacity.
        let mut a = instance();
        let b = instance();
        let pool = IndexPool::new();
        pool.index_for(&b, &[0]);
        pool.index_for(&a, &[0]);
        a.insert_values([Value::int(9), Value::str("w"), Value::str("p")])
            .unwrap();
        pool.index_for(&a, &[0]);
        let stats = pool.stats();
        assert_eq!(stats.entries, 2, "b's entry and a's live entry remain");
        assert_eq!(pool.stats().misses, 3);
    }

    #[test]
    fn interned_pool_reuses_indexes_and_groups_like_hash_index() {
        let inst = instance();
        let pool = IndexPool::new();
        let a = pool.interned_for(&inst, &[0, 1], 1);
        let b = pool.interned_for(&inst, &[0, 1], 1);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // Same groups as the value-keyed index.
        let baseline = HashIndex::build(&inst, &[0, 1]);
        assert_eq!(a.group_count(), baseline.len());
        let rows = a.rows_for_values(&[Value::int(1), Value::str("x")]);
        let ids: Vec<TupleId> = rows.iter().map(|&r| a.tuple_id(r)).collect();
        assert_eq!(ids, baseline.get(&[Value::int(1), Value::str("x")]));
        assert!(pool.approx_interned_bytes() > 0);
    }

    #[test]
    fn append_only_growth_extends_pooled_interned_indexes() {
        let mut inst = instance();
        let pool = IndexPool::new();
        pool.interned_for(&inst, &[0, 1], 1);
        assert_eq!(pool.stats().appends, 0);
        // Appending rows whose key-column values are already interned lets
        // the pool extend the cached index instead of rebuilding it.
        for _ in 0..3 {
            inst.insert_values([Value::int(1), Value::str("x"), Value::str("r")])
                .unwrap();
            let idx = pool.interned_for(&inst, &[0, 1], 1);
            let baseline = HashIndex::build(&inst, &[0, 1]);
            assert_eq!(idx.group_count(), baseline.len());
            for (key, group) in baseline.groups() {
                let ids: Vec<TupleId> = idx
                    .rows_for_values(key)
                    .iter()
                    .map(|&r| idx.tuple_id(r))
                    .collect();
                assert_eq!(&ids, group);
            }
        }
        assert_eq!(pool.stats().appends, 3, "every growth round extends");
        // A journaled cell update takes the patch path instead of a rebuild
        // — even on an attribute outside the key, where no row moves.
        inst.update_cell(
            crate::instance::CellRef::new(TupleId(0), 2),
            Value::str("zz"),
        )
        .unwrap();
        let patched = pool.interned_for(&inst, &[0, 1], 1);
        assert_eq!(pool.stats().appends, 3, "an update is not an append");
        assert_eq!(pool.stats().patches, 1, "the update patches the index");
        let baseline = HashIndex::build(&inst, &[0, 1]);
        assert_eq!(patched.group_count(), baseline.len());
        // A key-attribute update moves the edited row between groups.
        inst.update_cell(
            crate::instance::CellRef::new(TupleId(0), 1),
            Value::str("z"),
        )
        .unwrap();
        let moved = pool.interned_for(&inst, &[0, 1], 1);
        assert_eq!(pool.stats().patches, 2);
        let baseline = HashIndex::build(&inst, &[0, 1]);
        assert_eq!(moved.group_count(), baseline.len());
        for (key, group) in baseline.groups() {
            let ids: Vec<TupleId> = moved
                .rows_for_values(key)
                .iter()
                .map(|&r| moved.tuple_id(r))
                .collect();
            assert_eq!(&ids, group);
        }
    }

    #[test]
    fn removals_disable_the_patch_path() {
        let mut inst = instance();
        let pool = IndexPool::new();
        pool.interned_for(&inst, &[0, 1], 1);
        inst.remove(TupleId(2));
        let rebuilt = pool.interned_for(&inst, &[0, 1], 1);
        let stats = pool.stats();
        assert_eq!(
            (stats.appends, stats.patches),
            (0, 0),
            "a removal poisons the journal, forcing a full rebuild"
        );
        let baseline = HashIndex::build(&inst, &[0, 1]);
        assert_eq!(rebuilt.group_count(), baseline.len());
    }

    #[test]
    fn every_cached_attr_set_extends_after_one_append() {
        // Regression test: inserting the first re-requested index after an
        // append used to purge the other attribute lists' stale entries, so
        // only one index per growth round could take the extension path.
        let mut inst = instance();
        let pool = IndexPool::new();
        let attr_sets: [&[usize]; 3] = [&[0], &[1], &[0, 1]];
        for attrs in attr_sets {
            pool.interned_for(&inst, attrs, 1);
        }
        inst.insert_values([Value::int(2), Value::str("y"), Value::str("q")])
            .unwrap();
        for attrs in attr_sets {
            pool.interned_for(&inst, attrs, 1);
        }
        let stats = pool.stats();
        assert_eq!(stats.appends, 3, "all three indexes extend");
        assert_eq!(stats.entries, 3, "stale donors are gone after reuse");
    }

    #[test]
    fn distinct_pool_reuses_and_extends_sets() {
        let mut inst = instance();
        let pool = IndexPool::new();
        let a = pool.distinct_for(&inst, &[0, 1], 1);
        let b = pool.distinct_for(&inst, &[0, 1], 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), inst.project_distinct(&[0, 1]).len());
        assert!(pool.approx_distinct_bytes() > 0);
        // Append-only growth extends the cached set — even when the new row
        // carries a brand-new value (the repack-aware path).
        inst.insert_values([Value::int(77), Value::str("new"), Value::str("p")])
            .unwrap();
        let grown = pool.distinct_for(&inst, &[0, 1], 1);
        assert_eq!(pool.stats().appends, 1, "growth extends, never rebuilds");
        assert_eq!(grown.len(), inst.project_distinct(&[0, 1]).len());
        assert!(grown.contains_values(&[Value::int(77), Value::str("new")]));
        // A journaled cell update on a key attribute patches the cached set:
        // the edited row's new projection appears, vacated keys vanish.
        inst.update_cell(crate::instance::CellRef::new(TupleId(0), 0), Value::int(-1))
            .unwrap();
        let patched = pool.distinct_for(&inst, &[0, 1], 1);
        let stats = pool.stats();
        assert_eq!((stats.appends, stats.patches), (1, 1));
        assert_eq!(patched.len(), inst.project_distinct(&[0, 1]).len());
        assert!(patched.contains_values(&[Value::int(-1), Value::str("x")]));
    }

    #[test]
    fn invalidate_and_clear_empty_the_pool() {
        let inst = instance();
        let other = instance();
        let pool = IndexPool::new();
        pool.index_for(&inst, &[0]);
        pool.index_for(&other, &[0]);
        pool.invalidate(&inst);
        assert_eq!(pool.stats().entries, 1);
        pool.clear();
        assert_eq!(pool.stats().entries, 0);
    }

    #[test]
    fn sequential_use_never_counts_races() {
        let inst = instance();
        let pool = IndexPool::new();
        pool.index_for(&inst, &[0]);
        pool.index_for(&inst, &[0]);
        pool.interned_for(&inst, &[0, 1], 1);
        pool.interned_for(&inst, &[0, 1], 1);
        pool.distinct_for(&inst, &[1], 1);
        assert_eq!(pool.stats().races, 0);
    }

    #[test]
    fn duplicate_concurrent_builds_keep_one_winner() {
        // Many threads rush the same cold key through a barrier.  Whether a
        // duplicate build actually happens depends on scheduling, but the
        // ledger must reconcile either way: every miss either inserted the
        // entry or lost the race to a concurrent insert, and every caller
        // ends up sharing the one cached winner.
        let inst = instance();
        let pool = IndexPool::new();
        let barrier = std::sync::Barrier::new(8);
        let indexes: Vec<Arc<crate::store::InternedIndex>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        pool.interned_for(&inst, &[0, 1], 1)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker survives"))
                .collect()
        });
        for idx in &indexes {
            assert!(
                Arc::ptr_eq(idx, &indexes[0]),
                "all callers share the winner"
            );
        }
        let stats = pool.stats();
        assert_eq!(stats.entries, 1, "one index survives");
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(
            stats.misses,
            stats.races + 1,
            "every miss but the winning insert is a counted duplicate race"
        );
    }

    #[test]
    fn pool_is_usable_across_threads() {
        let inst = instance();
        let pool = IndexPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for attrs in [&[0usize][..], &[1], &[0, 1], &[2]] {
                        let idx = pool.index_for(&inst, attrs);
                        assert_eq!(idx.attrs(), attrs);
                    }
                });
            }
        });
        assert_eq!(pool.stats().entries, 4);
    }
}
