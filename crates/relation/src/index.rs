//! Hash partitioning of an instance on an attribute list.
//!
//! CFD violation detection (Section 2.1) boils down to grouping tuples on the
//! LHS attributes of the embedded FD and inspecting each group; CIND
//! detection (Section 2.2) boils down to probing the right-hand relation on
//! the correspondence attributes.  Both are served by [`HashIndex`].

use crate::instance::{RelationInstance, TupleId};
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// A hash index mapping the projection of each tuple onto a fixed attribute
/// list to the set of tuple ids sharing that projection.
#[derive(Clone, Debug)]
pub struct HashIndex {
    attrs: Vec<usize>,
    groups: HashMap<Vec<Value>, Vec<TupleId>>,
}

impl HashIndex {
    /// Builds an index of `instance` on the attribute positions `attrs`.
    pub fn build(instance: &RelationInstance, attrs: &[usize]) -> Self {
        let mut groups: HashMap<Vec<Value>, Vec<TupleId>> =
            HashMap::with_capacity(instance.len());
        for (id, tuple) in instance.iter() {
            let key = tuple.project(attrs);
            match groups.entry(key) {
                Entry::Occupied(mut e) => e.get_mut().push(id),
                Entry::Vacant(e) => {
                    e.insert(vec![id]);
                }
            }
        }
        HashIndex {
            attrs: attrs.to_vec(),
            groups,
        }
    }

    /// The attribute positions this index is keyed on.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Tuple ids whose projection equals `key`.
    pub fn get(&self, key: &[Value]) -> &[TupleId] {
        self.groups.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Does any tuple project to `key`?
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.groups.contains_key(key)
    }

    /// Iterates over `(key, group)` pairs.
    pub fn groups(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<TupleId>)> {
        self.groups.iter()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups containing at least two tuples — the only candidates for
    /// variable (FD-style) violations.
    pub fn multi_groups(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<TupleId>)> {
        self.groups.iter().filter(|(_, g)| g.len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, RelationSchema};

    fn instance() -> RelationInstance {
        let schema = RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Text), ("C", Domain::Text)],
        );
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b, c) in [
            (1, "x", "p"),
            (1, "x", "q"),
            (2, "y", "p"),
            (1, "z", "p"),
        ] {
            inst.insert_values([Value::int(a), Value::str(b), Value::str(c)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn groups_by_projection() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[0, 1]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get(&[Value::int(1), Value::str("x")]).len(), 2);
        assert_eq!(idx.get(&[Value::int(2), Value::str("y")]).len(), 1);
        assert!(idx.get(&[Value::int(9), Value::str("x")]).is_empty());
    }

    #[test]
    fn multi_groups_only_returns_groups_with_collisions() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[0, 1]);
        let multi: Vec<_> = idx.multi_groups().collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].0, &vec![Value::int(1), Value::str("x")]);
    }

    #[test]
    fn empty_attribute_list_groups_everything_together() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(&[]).len(), 4);
    }

    #[test]
    fn contains_key_matches_get() {
        let inst = instance();
        let idx = HashIndex::build(&inst, &[2]);
        assert!(idx.contains_key(&[Value::str("p")]));
        assert!(!idx.contains_key(&[Value::str("missing")]));
    }
}
