//! SPCU views: selection, projection, Cartesian product and union.
//!
//! Dependency propagation (Section 4.1, Theorem 4.7) asks whether source
//! dependencies guarantee a view dependency for views expressed as SPC or
//! SPCU queries.  This module provides
//!
//! * a compositional [`View`] algebra that can be *evaluated* over a
//!   [`Database`] to materialize the view, and
//! * a normalization into [`SpcView`] branches (one per union arm) that
//!   exposes column provenance — which source attribute each view column
//!   comes from and which constant selections were applied — which is the
//!   information the propagation algorithm of `dq-core` consumes.

use crate::error::{DqError, DqResult};
use crate::instance::{Database, RelationInstance};
use crate::schema::{DatabaseSchema, Domain, RelationSchema};
use crate::store::{Column, IdTranslation, ValueId};
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// A selection predicate over the columns of a view.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// `column = constant`
    EqConst(usize, Value),
    /// `column <> constant`
    NeConst(usize, Value),
    /// `left column = right column`
    EqCols(usize, usize),
    /// Conjunction of predicates.
    And(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Evaluates the predicate over a materialized tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::EqConst(c, v) => tuple.get(*c) == v,
            Predicate::NeConst(c, v) => tuple.get(*c) != v,
            Predicate::EqCols(a, b) => tuple.get(*a) == tuple.get(*b),
            Predicate::And(l, r) => l.eval(tuple) && r.eval(tuple),
        }
    }

    fn collect(&self, out: &mut Vec<Predicate>) {
        match self {
            Predicate::And(l, r) => {
                l.collect(out);
                r.collect(out);
            }
            p => out.push(p.clone()),
        }
    }

    /// Flattens nested conjunctions into a list of atomic predicates.
    pub fn conjuncts(&self) -> Vec<Predicate> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }
}

/// A view expression in the SPCU fragment (selection, projection, Cartesian
/// product, union) over base relations.
#[derive(Clone, Debug, PartialEq)]
pub enum View {
    /// A base relation, all columns in schema order.
    Base(String),
    /// Selection.
    Select(Box<View>, Predicate),
    /// Projection onto column positions of the input view.
    Project(Box<View>, Vec<usize>),
    /// Cartesian product; output columns are left columns followed by right
    /// columns.
    Product(Box<View>, Box<View>),
    /// Union of two views with identical arity.
    Union(Box<View>, Box<View>),
}

impl View {
    /// Convenience constructor for a base relation.
    pub fn base(name: impl Into<String>) -> View {
        View::Base(name.into())
    }

    /// Wraps this view in a selection.
    pub fn select(self, predicate: Predicate) -> View {
        View::Select(Box::new(self), predicate)
    }

    /// Wraps this view in a projection.
    pub fn project(self, columns: Vec<usize>) -> View {
        View::Project(Box::new(self), columns)
    }

    /// Cartesian product with another view.
    pub fn product(self, other: View) -> View {
        View::Product(Box::new(self), Box::new(other))
    }

    /// Union with another view.
    pub fn union(self, other: View) -> View {
        View::Union(Box::new(self), Box::new(other))
    }

    /// The output arity of the view over the given database schema.
    pub fn arity(&self, schema: &DatabaseSchema) -> DqResult<usize> {
        match self {
            View::Base(name) => Ok(schema.require_relation(name)?.arity()),
            View::Select(input, _) => input.arity(schema),
            View::Project(_, cols) => Ok(cols.len()),
            View::Product(l, r) => Ok(l.arity(schema)? + r.arity(schema)?),
            View::Union(l, r) => {
                let la = l.arity(schema)?;
                let ra = r.arity(schema)?;
                if la != ra {
                    return Err(DqError::MalformedQuery {
                        reason: format!("union of views with arities {la} and {ra}"),
                    });
                }
                Ok(la)
            }
        }
    }

    /// Column names (and domains) of the view output, synthesized from the
    /// sources.  Union takes names from the left branch.
    pub fn output_schema(
        &self,
        schema: &DatabaseSchema,
        view_name: &str,
    ) -> DqResult<RelationSchema> {
        let cols = self.output_columns(schema)?;
        Ok(RelationSchema::new(view_name, cols))
    }

    fn output_columns(&self, schema: &DatabaseSchema) -> DqResult<Vec<(String, Domain)>> {
        match self {
            View::Base(name) => {
                let r = schema.require_relation(name)?;
                Ok(r.attributes()
                    .iter()
                    .map(|a| (a.name.clone(), a.domain.clone()))
                    .collect())
            }
            View::Select(input, _) => input.output_columns(schema),
            View::Project(input, cols) => {
                let inner = input.output_columns(schema)?;
                cols.iter()
                    .map(|&c| {
                        inner
                            .get(c)
                            .cloned()
                            .ok_or_else(|| DqError::MalformedQuery {
                                reason: format!("projection on column {c} out of range"),
                            })
                    })
                    .collect()
            }
            View::Product(l, r) => {
                let mut left = l.output_columns(schema)?;
                let right = r.output_columns(schema)?;
                // Disambiguate duplicated names coming from self-products.
                for (n, d) in right {
                    let mut name = n;
                    while left.iter().any(|(ln, _)| ln == &name) {
                        name.push('\'');
                    }
                    left.push((name, d));
                }
                Ok(left)
            }
            View::Union(l, _) => l.output_columns(schema),
        }
    }

    /// Materializes the view over `db`.
    pub fn evaluate(&self, db: &Database, view_name: &str) -> DqResult<RelationInstance> {
        let schema = db_schema(db);
        let out_schema = Arc::new(self.output_schema(&schema, view_name)?);
        let rows = self.rows(db)?;
        let mut inst = RelationInstance::new(out_schema);
        for row in rows {
            inst.insert(row)?;
        }
        Ok(inst)
    }

    fn rows(&self, db: &Database) -> DqResult<Vec<Tuple>> {
        // Select/Project chains over a base relation evaluate over the
        // columnar dictionary ids — every predicate test is a `u32`
        // comparison and only surviving rows materialize values.  Any other
        // shape (and chains whose predicates cannot be id-compiled) takes
        // the legacy tuple walk; the two produce identical rows.
        if let Some(plan) = IdChainPlan::compile(self, db)? {
            return Ok(plan.execute());
        }
        self.rows_legacy(db)
    }

    /// The tuple-at-a-time evaluator, kept as the reference semantics (and
    /// the fallback for products, unions and non-chain shapes).  Recursive
    /// calls re-enter [`rows`](Self::rows), so chain-shaped *operands* of a
    /// product or union still use the id path.
    fn rows_legacy(&self, db: &Database) -> DqResult<Vec<Tuple>> {
        match self {
            View::Base(name) => Ok(db.require_relation(name)?.tuples()),
            View::Select(input, pred) => Ok(input
                .rows(db)?
                .into_iter()
                .filter(|t| pred.eval(t))
                .collect()),
            View::Project(input, cols) => Ok(input
                .rows(db)?
                .into_iter()
                .map(|t| Tuple::new(t.project(cols)))
                .collect()),
            View::Product(l, r) => {
                let left = l.rows(db)?;
                let right = r.rows(db)?;
                let mut out = Vec::with_capacity(left.len() * right.len());
                for lt in &left {
                    for rt in &right {
                        out.push(lt.concat(rt));
                    }
                }
                Ok(out)
            }
            View::Union(l, r) => {
                let mut out = l.rows(db)?;
                out.extend(r.rows(db)?);
                Ok(out)
            }
        }
    }

    /// Splits an SPCU view into its union branches (each an SPC view).
    pub fn union_branches(&self) -> Vec<View> {
        match self {
            View::Union(l, r) => {
                let mut out = l.union_branches();
                out.extend(r.union_branches());
                out
            }
            other => vec![other.clone()],
        }
    }

    /// Normalizes an SPC view (no unions) into [`SpcView`] form, exposing
    /// source relations, constant selections, column equalities and the
    /// provenance of every output column.
    pub fn spc_normal_form(&self, schema: &DatabaseSchema) -> DqResult<SpcView> {
        match self {
            View::Union(_, _) => Err(DqError::MalformedQuery {
                reason: "spc_normal_form called on a view containing a union".into(),
            }),
            View::Base(name) => {
                let r = schema.require_relation(name)?;
                Ok(SpcView {
                    sources: vec![name.clone()],
                    const_eq: Vec::new(),
                    ne_const: Vec::new(),
                    col_eq: Vec::new(),
                    projection: (0..r.arity()).map(|a| (0, a)).collect(),
                    output_names: r.attributes().iter().map(|a| a.name.clone()).collect(),
                })
            }
            View::Select(input, pred) => {
                let mut inner = input.spc_normal_form(schema)?;
                for p in pred.conjuncts() {
                    match p {
                        Predicate::EqConst(c, v) => {
                            let (s, a) = inner.projection[c];
                            inner.const_eq.push((s, a, v));
                        }
                        Predicate::NeConst(c, v) => {
                            let (s, a) = inner.projection[c];
                            inner.ne_const.push((s, a, v));
                        }
                        Predicate::EqCols(x, y) => {
                            let sx = inner.projection[x];
                            let sy = inner.projection[y];
                            inner.col_eq.push((sx, sy));
                        }
                        Predicate::And(_, _) => unreachable!("conjuncts are atomic"),
                    }
                }
                Ok(inner)
            }
            View::Project(input, cols) => {
                let mut inner = input.spc_normal_form(schema)?;
                let projection = cols.iter().map(|&c| inner.projection[c]).collect();
                let output_names = cols
                    .iter()
                    .map(|&c| inner.output_names[c].clone())
                    .collect();
                inner.projection = projection;
                inner.output_names = output_names;
                Ok(inner)
            }
            View::Product(l, r) => {
                let left = l.spc_normal_form(schema)?;
                let right = r.spc_normal_form(schema)?;
                let offset = left.sources.len();
                let mut sources = left.sources;
                sources.extend(right.sources);
                let mut const_eq = left.const_eq;
                const_eq.extend(
                    right
                        .const_eq
                        .into_iter()
                        .map(|(s, a, v)| (s + offset, a, v)),
                );
                let mut ne_const = left.ne_const;
                ne_const.extend(
                    right
                        .ne_const
                        .into_iter()
                        .map(|(s, a, v)| (s + offset, a, v)),
                );
                let mut col_eq = left.col_eq;
                col_eq.extend(
                    right
                        .col_eq
                        .into_iter()
                        .map(|((s1, a1), (s2, a2))| ((s1 + offset, a1), (s2 + offset, a2))),
                );
                let mut projection = left.projection;
                projection.extend(right.projection.into_iter().map(|(s, a)| (s + offset, a)));
                let mut output_names = left.output_names;
                output_names.extend(right.output_names);
                Ok(SpcView {
                    sources,
                    const_eq,
                    ne_const,
                    col_eq,
                    projection,
                    output_names,
                })
            }
        }
    }
}

/// One selection predicate compiled into a base relation's dictionaries:
/// constants become ids (or a constant verdict when absent from the
/// column), column equalities become an id translation table between the
/// two columns' dictionaries.
enum IdPred {
    /// `attr = id` — the constant exists in the column's dictionary.
    EqId(usize, ValueId),
    /// `attr <> id`.
    NeId(usize, ValueId),
    /// `attr_a = attr_b` across two different columns, via a per-id
    /// translation from `a`'s dictionary into `b`'s.
    EqCols(usize, usize, IdTranslation),
}

/// A Select/Project chain over one base relation, compiled to run over the
/// columnar snapshot: predicates test `u32` ids row by row and only
/// surviving rows materialize values.
struct IdChainPlan<'a> {
    instance: &'a RelationInstance,
    /// Output column → base attribute (projections composed).
    cols: Vec<usize>,
    preds: Vec<IdPred>,
    /// Some predicate can never hold (e.g. `= constant` with the constant
    /// absent from the column): the result is empty without a scan.
    never: bool,
}

impl<'a> IdChainPlan<'a> {
    /// Compiles `view` when it is a Select/Project chain over a base
    /// relation; `Ok(None)` means the shape (or a predicate) is not
    /// id-compilable and the caller should take the legacy walk.  Errors
    /// are exactly the legacy path's (an unknown base relation).
    fn compile(view: &View, db: &'a Database) -> DqResult<Option<IdChainPlan<'a>>> {
        match view {
            View::Base(name) => {
                let instance = db.require_relation(name)?;
                Ok(Some(IdChainPlan {
                    instance,
                    cols: (0..instance.schema().arity()).collect(),
                    preds: Vec::new(),
                    never: false,
                }))
            }
            View::Select(input, pred) => {
                let Some(mut plan) = IdChainPlan::compile(input, db)? else {
                    return Ok(None);
                };
                for p in pred.conjuncts() {
                    if !plan.push_pred(&p) {
                        return Ok(None);
                    }
                }
                Ok(Some(plan))
            }
            View::Project(input, cols) => {
                let Some(mut plan) = IdChainPlan::compile(input, db)? else {
                    return Ok(None);
                };
                let mut composed = Vec::with_capacity(cols.len());
                for &c in cols {
                    match plan.cols.get(c) {
                        Some(&attr) => composed.push(attr),
                        // Out of range: let the legacy path surface it the
                        // way it always has.
                        None => return Ok(None),
                    }
                }
                plan.cols = composed;
                Ok(Some(plan))
            }
            View::Product(_, _) | View::Union(_, _) => Ok(None),
        }
    }

    /// The dictionary-encoded column of a base attribute.
    fn column(&self, attr: usize) -> Arc<Column> {
        self.instance.columnar().column(self.instance, attr)
    }

    /// Compiles one atomic predicate against the current column mapping;
    /// `false` means it cannot be id-compiled.
    fn push_pred(&mut self, p: &Predicate) -> bool {
        match p {
            Predicate::EqConst(c, v) => {
                let Some(&attr) = self.cols.get(*c) else {
                    return false;
                };
                match self.column(attr).interner().lookup(v) {
                    Some(id) => self.preds.push(IdPred::EqId(attr, id)),
                    // The constant appears nowhere: nothing can match.
                    None => self.never = true,
                }
                true
            }
            Predicate::NeConst(c, v) => {
                let Some(&attr) = self.cols.get(*c) else {
                    return false;
                };
                // An absent constant differs from every cell: always true.
                if let Some(id) = self.column(attr).interner().lookup(v) {
                    self.preds.push(IdPred::NeId(attr, id));
                }
                true
            }
            Predicate::EqCols(a, b) => {
                let (Some(&attr_a), Some(&attr_b)) = (self.cols.get(*a), self.cols.get(*b)) else {
                    return false;
                };
                // Same source column: trivially true.
                if attr_a != attr_b {
                    let map = IdTranslation::new(&[self.column(attr_a)], &[self.column(attr_b)]);
                    self.preds.push(IdPred::EqCols(attr_a, attr_b, map));
                }
                true
            }
            Predicate::And(_, _) => unreachable!("conjuncts are atomic"),
        }
    }

    /// Runs the compiled chain: a single row scan over the columnar ids.
    fn execute(&self) -> Vec<Tuple> {
        if self.never {
            return Vec::new();
        }
        let store = self.instance.columnar();
        let arity = self.instance.schema().arity();
        let columns: Vec<Arc<Column>> =
            (0..arity).map(|a| store.column(self.instance, a)).collect();
        let mut out = Vec::new();
        let mut scratch: Vec<ValueId> = Vec::with_capacity(1);
        'rows: for row in 0..store.len() {
            for pred in &self.preds {
                let holds = match pred {
                    IdPred::EqId(attr, id) => columns[*attr].id_at(row) == *id,
                    IdPred::NeId(attr, id) => columns[*attr].id_at(row) != *id,
                    IdPred::EqCols(a, b, map) => {
                        map.translate(&[columns[*a].id_at(row)], &mut scratch)
                            && scratch[0] == columns[*b].id_at(row)
                    }
                };
                if !holds {
                    continue 'rows;
                }
            }
            out.push(Tuple::new(
                self.cols
                    .iter()
                    .map(|&a| columns[a].interner().resolve(columns[a].id_at(row)).clone())
                    .collect(),
            ));
        }
        out
    }
}

/// Normal form of an SPC view: the information needed by dependency
/// propagation.
#[derive(Clone, Debug)]
pub struct SpcView {
    /// Source relations, one entry per occurrence (self-products repeat).
    pub sources: Vec<String>,
    /// Constant selections `source.attr = value`.
    pub const_eq: Vec<(usize, usize, Value)>,
    /// Constant disequalities `source.attr <> value`.
    pub ne_const: Vec<(usize, usize, Value)>,
    /// Column equalities between source attributes (join conditions).
    pub col_eq: Vec<((usize, usize), (usize, usize))>,
    /// Provenance of each output column: `(source index, attribute index)`.
    pub projection: Vec<(usize, usize)>,
    /// Output column names (aligned with `projection`).
    pub output_names: Vec<String>,
}

impl SpcView {
    /// Output columns whose provenance is `source.attr` (there may be several
    /// when the same source column is projected twice).
    pub fn columns_from(&self, source: usize, attr: usize) -> Vec<usize> {
        self.projection
            .iter()
            .enumerate()
            .filter(|(_, &(s, a))| s == source && a == attr)
            .map(|(i, _)| i)
            .collect()
    }

    /// The constant selection applied to `source.attr`, if any.
    pub fn constant_on(&self, source: usize, attr: usize) -> Option<&Value> {
        self.const_eq
            .iter()
            .find(|(s, a, _)| *s == source && *a == attr)
            .map(|(_, _, v)| v)
    }
}

/// Derives the [`DatabaseSchema`] implied by the instances of a [`Database`].
pub fn db_schema(db: &Database) -> DatabaseSchema {
    let mut schema = DatabaseSchema::new();
    for (_, inst) in db.iter() {
        schema.add((**inst.schema()).clone());
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::RelationInstance;

    fn db() -> Database {
        let r = RelationSchema::new("r", [("A", Domain::Int), ("B", Domain::Text)]);
        let s = RelationSchema::new("s", [("C", Domain::Int), ("D", Domain::Text)]);
        let mut ri = RelationInstance::from_schema(r);
        ri.insert_values([Value::int(1), Value::str("x")]).unwrap();
        ri.insert_values([Value::int(2), Value::str("y")]).unwrap();
        let mut si = RelationInstance::from_schema(s);
        si.insert_values([Value::int(1), Value::str("p")]).unwrap();
        si.insert_values([Value::int(3), Value::str("q")]).unwrap();
        let mut db = Database::new();
        db.add_relation(ri);
        db.add_relation(si);
        db
    }

    #[test]
    fn base_and_select_evaluation() {
        let db = db();
        let v = View::base("r").select(Predicate::EqConst(0, Value::int(1)));
        let out = v.evaluate(&db, "v").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().1.get(1), &Value::str("x"));
    }

    #[test]
    fn projection_and_schema_names() {
        let db = db();
        let v = View::base("r").project(vec![1]);
        let out = v.evaluate(&db, "v").unwrap();
        assert_eq!(out.schema().arity(), 1);
        assert_eq!(out.schema().attr_name(0), "B");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn product_join_via_selection() {
        let db = db();
        // r x s with join condition r.A = s.C.
        let v = View::base("r")
            .product(View::base("s"))
            .select(Predicate::EqCols(0, 2));
        let out = v.evaluate(&db, "j").unwrap();
        assert_eq!(out.len(), 1);
        let t = out.iter().next().unwrap().1;
        assert_eq!(t.get(1), &Value::str("x"));
        assert_eq!(t.get(3), &Value::str("p"));
    }

    #[test]
    fn product_disambiguates_duplicate_names() {
        let db = db();
        let v = View::base("r").product(View::base("r"));
        let schema = db_schema(&db);
        let out = v.output_schema(&schema, "rr").unwrap();
        assert_eq!(out.arity(), 4);
        assert_eq!(out.attr_name(0), "A");
        assert_eq!(out.attr_name(2), "A'");
    }

    #[test]
    fn union_concatenates_and_checks_arity() {
        let db = db();
        let v = View::base("r").union(View::base("s"));
        let out = v.evaluate(&db, "u").unwrap();
        assert_eq!(out.len(), 4);

        let bad = View::base("r").union(View::base("r").project(vec![0]));
        let schema = db_schema(&db);
        assert!(bad.arity(&schema).is_err());
    }

    #[test]
    fn union_branches_are_enumerated() {
        let v = View::base("a")
            .union(View::base("b"))
            .union(View::base("c"));
        assert_eq!(v.union_branches().len(), 3);
    }

    #[test]
    fn spc_normal_form_tracks_provenance_and_constants() {
        let db = db();
        let schema = db_schema(&db);
        // pi_{B, D} sigma_{r.A = 1 and r.A = s.C} (r x s)
        let v = View::base("r")
            .product(View::base("s"))
            .select(Predicate::EqConst(0, Value::int(1)).and(Predicate::EqCols(0, 2)))
            .project(vec![1, 3]);
        let spc = v.spc_normal_form(&schema).unwrap();
        assert_eq!(spc.sources, vec!["r".to_string(), "s".to_string()]);
        assert_eq!(spc.projection, vec![(0, 1), (1, 1)]);
        assert_eq!(spc.constant_on(0, 0), Some(&Value::int(1)));
        assert_eq!(spc.col_eq, vec![((0, 0), (1, 0))]);
        assert_eq!(spc.columns_from(1, 1), vec![1]);
        assert_eq!(spc.output_names, vec!["B".to_string(), "D".to_string()]);
    }

    #[test]
    fn spc_normal_form_rejects_unions() {
        let db = db();
        let schema = db_schema(&db);
        let v = View::base("r").union(View::base("s"));
        assert!(v.spc_normal_form(&schema).is_err());
    }

    #[test]
    fn id_chain_matches_legacy_rows() {
        // Two Text columns sharing values so EqCols crosses dictionaries,
        // plus duplicates so bag semantics are visible.
        let schema = RelationSchema::new(
            "t",
            [("A", Domain::Text), ("B", Domain::Text), ("C", Domain::Int)],
        );
        let mut ti = RelationInstance::from_schema(schema);
        for (a, b, c) in [
            ("x", "x", 1),
            ("x", "y", 2),
            ("y", "x", 1),
            ("y", "y", 2),
            ("x", "x", 1),
            ("z", "w", 3),
        ] {
            ti.insert_values([Value::str(a), Value::str(b), Value::int(c)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_relation(ti);
        let views = [
            View::base("t"),
            View::base("t").select(Predicate::EqConst(0, Value::str("x"))),
            View::base("t").select(Predicate::EqConst(0, Value::str("absent"))),
            View::base("t").select(Predicate::NeConst(1, Value::str("y"))),
            View::base("t").select(Predicate::NeConst(1, Value::str("absent"))),
            View::base("t").select(Predicate::EqCols(0, 1)),
            View::base("t").select(Predicate::EqCols(2, 2)),
            View::base("t")
                .select(Predicate::EqCols(0, 1).and(Predicate::NeConst(2, Value::int(2))))
                .project(vec![2, 0]),
            View::base("t").project(vec![1, 1, 0]),
            View::base("t")
                .project(vec![1, 0])
                .select(Predicate::EqConst(0, Value::str("x")))
                .project(vec![1]),
        ];
        for view in &views {
            let fast = view.rows(&db).unwrap();
            let legacy = view.rows_legacy(&db).unwrap();
            assert_eq!(fast, legacy, "view {view:?}");
        }
        // Sanity: the cross-dictionary equality actually selects rows.
        let eq = View::base("t").select(Predicate::EqCols(0, 1));
        assert_eq!(eq.rows(&db).unwrap().len(), 3);
    }

    #[test]
    fn product_operands_still_use_id_chains() {
        let db = db();
        let v = View::base("r")
            .select(Predicate::NeConst(0, Value::int(2)))
            .product(View::base("s").select(Predicate::EqConst(0, Value::int(1))))
            .select(Predicate::EqCols(0, 2));
        let out = v.evaluate(&db, "j").unwrap();
        assert_eq!(out.len(), 1);
        let t = out.iter().next().unwrap().1;
        assert_eq!(t.get(1), &Value::str("x"));
        assert_eq!(t.get(3), &Value::str("p"));
    }

    #[test]
    fn predicate_conjunct_flattening() {
        let p = Predicate::EqConst(0, Value::int(1))
            .and(Predicate::EqCols(1, 2).and(Predicate::NeConst(3, Value::str("x"))));
        assert_eq!(p.conjuncts().len(), 3);
    }
}
