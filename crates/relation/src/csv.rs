//! Minimal delimited-text import/export.
//!
//! Real deployments would load data from a warehouse; for the reproduction we
//! only need a way to move small instances in and out of text form (examples,
//! golden files, debugging dumps).  The format is deliberately simple: one
//! header row with attribute names, `|`-separated cells, `NULL` for nulls.
//! No quoting or escaping is attempted; instead, [`to_text`] *refuses* to
//! serialize an instance whose round-trip would be lossy — a text cell that
//! renders as the literal `NULL` (it would be re-parsed as [`Value::Null`]),
//! or any cell or attribute name containing the separator or a line break
//! (every following column would shift on re-parse).

use crate::error::{DqError, DqResult};
use crate::instance::RelationInstance;
use crate::schema::{Domain, RelationSchema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// The cell separator used by [`to_text`] and [`from_text`].
pub const SEPARATOR: char = '|';

/// Rejects a rendered cell (or attribute name) whose text would not survive
/// the round trip through [`from_text`].
fn check_cell(rendered: &str, is_text_value: bool, context: &str) -> DqResult<()> {
    if is_text_value && rendered == "NULL" {
        return Err(DqError::Parse {
            reason: format!(
                "{context} is the literal `NULL` and would be re-parsed as a null; \
                 refusing a lossy round trip"
            ),
        });
    }
    if rendered.contains(SEPARATOR) || rendered.contains('\n') || rendered.contains('\r') {
        return Err(DqError::Parse {
            reason: format!(
                "{context} `{rendered}` contains the separator `{SEPARATOR}` or a line \
                 break; every following column would shift on re-parse"
            ),
        });
    }
    Ok(())
}

/// Serializes an instance to delimited text (header row + one row per tuple).
///
/// Errors instead of corrupting the round trip: a `Text` cell whose content
/// is literally `NULL` would come back as [`Value::Null`], and a cell (or
/// attribute name) containing the separator or a line break would shift
/// every following column.
pub fn to_text(instance: &RelationInstance) -> DqResult<String> {
    let schema = instance.schema();
    let mut out = String::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        check_cell(&attr.name, false, "attribute name")?;
        if i > 0 {
            out.push(SEPARATOR);
        }
        out.push_str(&attr.name);
    }
    out.push('\n');
    for (id, tuple) in instance.iter() {
        for (i, v) in tuple.values().iter().enumerate() {
            let rendered = v.to_string();
            check_cell(
                &rendered,
                matches!(v, Value::Str(_)),
                &format!("cell ({id}, {})", schema.attr_name(i)),
            )?;
            if i > 0 {
                out.push(SEPARATOR);
            }
            out.push_str(&rendered);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parses a single cell according to the attribute domain.
pub fn parse_cell(text: &str, domain: &Domain) -> DqResult<Value> {
    let text = text.trim();
    if text == "NULL" {
        return Ok(Value::Null);
    }
    let parsed = match domain {
        Domain::Int => text.parse::<i64>().map(Value::Int).ok(),
        Domain::Real => text.parse::<f64>().map(Value::Real).ok(),
        Domain::Bool => match text {
            "true" | "TRUE" | "1" => Some(Value::Bool(true)),
            "false" | "FALSE" | "0" => Some(Value::Bool(false)),
            _ => None,
        },
        Domain::Text => Some(Value::str(text)),
        Domain::Finite(values) => {
            // Accept any display form matching a domain element.
            values.iter().find(|v| v.to_string() == text).cloned()
        }
    };
    parsed.ok_or_else(|| DqError::Parse {
        reason: format!("cannot parse `{text}` as {domain}"),
    })
}

/// Parses delimited text (as produced by [`to_text`]) into an instance of
/// `schema`.  The header row must list exactly the schema's attributes in
/// order.
pub fn from_text(schema: Arc<RelationSchema>, text: &str) -> DqResult<RelationInstance> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| DqError::Parse {
        reason: "empty input".into(),
    })?;
    let names: Vec<&str> = header.split(SEPARATOR).map(|s| s.trim()).collect();
    let expected: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    if names != expected {
        return Err(DqError::Parse {
            reason: format!("header {names:?} does not match schema attributes {expected:?}"),
        });
    }
    let mut instance = RelationInstance::new(Arc::clone(&schema));
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(SEPARATOR).collect();
        if cells.len() != schema.arity() {
            return Err(DqError::Parse {
                reason: format!(
                    "row {} has {} cells, expected {}",
                    lineno + 2,
                    cells.len(),
                    schema.arity()
                ),
            });
        }
        let values: DqResult<Vec<Value>> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| parse_cell(c, schema.domain(i)))
            .collect();
        instance.insert(Tuple::new(values?))?;
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("name", Domain::Text),
                ("price", Domain::Real),
                ("active", Domain::Bool),
            ],
        ))
    }

    #[test]
    fn round_trip_preserves_tuples() {
        let schema = schema();
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        inst.insert_values([
            Value::int(44),
            Value::str("Mike"),
            Value::real(7.99),
            Value::bool(true),
        ])
        .unwrap();
        inst.insert_values([
            Value::int(1),
            Value::Null,
            Value::real(0.5),
            Value::bool(false),
        ])
        .unwrap();
        let text = to_text(&inst).unwrap();
        let parsed = from_text(Arc::clone(&schema), &text).unwrap();
        assert!(inst.same_tuples_as(&parsed));
    }

    #[test]
    fn literal_null_text_is_rejected_instead_of_corrupted() {
        // Regression test: a `Text` cell whose content is literally "NULL"
        // used to serialize fine and come back as `Value::Null`.
        let schema = schema();
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        inst.insert_values([
            Value::int(1),
            Value::str("NULL"),
            Value::real(1.0),
            Value::bool(true),
        ])
        .unwrap();
        let err = to_text(&inst).unwrap_err();
        assert!(matches!(err, DqError::Parse { .. }), "got {err:?}");
        // An actual null still round-trips as before.
        let mut with_null = RelationInstance::new(Arc::clone(&schema));
        with_null
            .insert_values([
                Value::int(1),
                Value::Null,
                Value::real(1.0),
                Value::bool(true),
            ])
            .unwrap();
        let parsed = from_text(Arc::clone(&schema), &to_text(&with_null).unwrap()).unwrap();
        assert!(with_null.same_tuples_as(&parsed));
    }

    #[test]
    fn separator_in_cell_is_rejected_instead_of_shifting_columns() {
        // Regression test: a cell containing `|` used to shift every
        // following column on re-parse (or fail with a confusing arity
        // error); now serialization refuses up front.
        let schema = schema();
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        inst.insert_values([
            Value::int(1),
            Value::str("Mike|Smith"),
            Value::real(1.0),
            Value::bool(true),
        ])
        .unwrap();
        assert!(to_text(&inst).is_err());
        // Embedded line breaks are the same failure class.
        let mut with_newline = RelationInstance::new(Arc::clone(&schema));
        with_newline
            .insert_values([
                Value::int(1),
                Value::str("two\nlines"),
                Value::real(1.0),
                Value::bool(true),
            ])
            .unwrap();
        assert!(to_text(&with_newline).is_err());
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let schema = schema();
        let err = from_text(schema, "A|B|C|D\n1|x|2.0|true\n").unwrap_err();
        assert!(matches!(err, DqError::Parse { .. }));
    }

    #[test]
    fn bad_cell_counts_and_values_are_rejected() {
        let schema = schema();
        let short = from_text(Arc::clone(&schema), "CC|name|price|active\n1|x|2.0\n");
        assert!(short.is_err());
        let bad_int = from_text(Arc::clone(&schema), "CC|name|price|active\nxx|x|2.0|true\n");
        assert!(bad_int.is_err());
    }

    #[test]
    fn finite_domains_accept_only_listed_values() {
        let dom = Domain::finite_str(["book", "CD"]);
        assert_eq!(parse_cell("book", &dom).unwrap(), Value::str("book"));
        assert!(parse_cell("DVD", &dom).is_err());
        assert_eq!(parse_cell("NULL", &dom).unwrap(), Value::Null);
    }
}
