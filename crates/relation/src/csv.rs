//! Delimited-text import/export and streaming columnar ingest.
//!
//! The format is deliberately small: one header row with attribute names,
//! `|`-separated cells, `NULL` for nulls, and minimal RFC-4180-style quoting
//! for the cells that need it.  A cell is written quoted — wrapped in `"`,
//! with embedded quotes doubled — when its raw text would not survive the
//! round trip otherwise: it contains the separator, a line break or a quote,
//! it is a text value reading literally `NULL` (it would be re-parsed as a
//! null), or it carries leading/trailing whitespace (unquoted cells are
//! trimmed on parse).  Everything else is written bare, so the common case
//! stays exactly as readable as before.
//!
//! Two read paths share one record scanner: [`from_text`] materializes a
//! [`RelationInstance`], while [`stream_into_store`] loads delimited text
//! straight into a persisted columnar relation (see
//! [`crate::store::persist`]) — cells are parsed and interned one at a time
//! and shards are flushed as they fill, so no intermediate tuple vector of
//! the input is ever built and peak memory stays at O(dictionaries + one
//! shard).

use crate::error::{DqError, DqResult};
use crate::instance::RelationInstance;
use crate::schema::{Domain, RelationSchema};
use crate::store::persist::{RelationWriter, SaveStats};
use crate::tuple::Tuple;
use crate::value::Value;
use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

/// The cell separator used by [`to_text`] and [`from_text`].
pub const SEPARATOR: char = '|';

/// The quote character used to escape cells that contain the separator, line
/// breaks, quotes, outer whitespace, or text reading literally `NULL`.
pub const QUOTE: char = '"';

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Must this rendered cell be quoted to survive the round trip?
fn needs_quoting(rendered: &str, is_text_value: bool) -> bool {
    (is_text_value && rendered == "NULL")
        || rendered.contains(SEPARATOR)
        || rendered.contains('\n')
        || rendered.contains('\r')
        || rendered.contains(QUOTE)
        || rendered.starts_with(char::is_whitespace)
        || rendered.ends_with(char::is_whitespace)
}

/// Appends one cell, quoting and escaping when needed.
fn render_cell(rendered: &str, is_text_value: bool, out: &mut String) {
    if !needs_quoting(rendered, is_text_value) {
        out.push_str(rendered);
        return;
    }
    out.push(QUOTE);
    for c in rendered.chars() {
        if c == QUOTE {
            out.push(QUOTE);
        }
        out.push(c);
    }
    out.push(QUOTE);
}

/// Serializes an instance to delimited text (header row + one row per
/// tuple).  Cells that would be ambiguous bare — separators, line breaks,
/// quotes, literal `NULL` text, outer whitespace — are quoted, so every
/// instance round-trips losslessly through [`from_text`].
pub fn to_text(instance: &RelationInstance) -> DqResult<String> {
    let schema = instance.schema();
    let mut out = String::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        if i > 0 {
            out.push(SEPARATOR);
        }
        render_cell(&attr.name, false, &mut out);
    }
    out.push('\n');
    for (_, tuple) in instance.iter() {
        for (i, v) in tuple.values().iter().enumerate() {
            if i > 0 {
                out.push(SEPARATOR);
            }
            match v {
                Value::Str(s) => render_cell(s, true, &mut out),
                other => render_cell(&other.to_string(), false, &mut out),
            }
        }
        out.push('\n');
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Record scanning
// ---------------------------------------------------------------------------

/// One scanned cell: its content (quotes resolved) and whether it was
/// quoted.  Quoted cells skip trimming and the `NULL` mapping on parse.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RawCell {
    text: String,
    quoted: bool,
}

/// Outcome of scanning one accumulated physical-line run.
enum Scan {
    /// The record is complete.
    Complete(Vec<RawCell>),
    /// The record ends inside an open quote — the quoted cell continues on
    /// the next physical line.
    NeedsMore,
}

/// Splits one logical record into cells, honoring quoting.  Returns
/// [`Scan::NeedsMore`] when the record ends inside an open quote.
fn split_record(record: &str) -> DqResult<Scan> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut at_start = true;
    let mut chars = record.chars().peekable();
    while let Some(c) = chars.next() {
        if at_start {
            at_start = false;
            if c == QUOTE {
                quoted = true;
                in_quotes = true;
                continue;
            }
        }
        if in_quotes {
            if c == QUOTE {
                if chars.peek() == Some(&QUOTE) {
                    chars.next();
                    cur.push(QUOTE);
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == SEPARATOR {
            cells.push(RawCell {
                text: std::mem::take(&mut cur),
                quoted,
            });
            quoted = false;
            at_start = true;
        } else if quoted {
            // Past the closing quote only (insignificant) whitespace — such
            // as a trailing `\r` — may follow before the next separator.
            if !c.is_whitespace() {
                return Err(DqError::Parse {
                    reason: format!("unexpected `{c}` after closing quote"),
                });
            }
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Ok(Scan::NeedsMore);
    }
    cells.push(RawCell { text: cur, quoted });
    Ok(Scan::Complete(cells))
}

/// Reads logical records — accumulating physical lines while a quoted cell
/// spans line breaks — from any buffered reader.
struct RecordReader<R> {
    inner: R,
    line: String,
}

impl<R: BufRead> RecordReader<R> {
    fn new(inner: R) -> Self {
        RecordReader {
            inner,
            line: String::new(),
        }
    }

    /// The next logical record, or `None` at end of input.  Blank lines
    /// between records are skipped (a blank line *inside* a quoted cell is
    /// content).
    fn next_record(&mut self) -> DqResult<Option<Vec<RawCell>>> {
        let mut pending = String::new();
        loop {
            self.line.clear();
            let read = self
                .inner
                .read_line(&mut self.line)
                .map_err(|e| DqError::Parse {
                    reason: format!("read error: {e}"),
                })?;
            if read == 0 {
                if pending.is_empty() {
                    return Ok(None);
                }
                return Err(DqError::Parse {
                    reason: "unterminated quoted cell at end of input".into(),
                });
            }
            let line = self.line.strip_suffix('\n').unwrap_or(&self.line);
            if pending.is_empty() && line.trim().is_empty() {
                continue;
            }
            if !pending.is_empty() {
                pending.push('\n');
            }
            pending.push_str(line);
            match split_record(&pending)? {
                Scan::NeedsMore => continue,
                Scan::Complete(cells) => return Ok(Some(cells)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses trimmed bare text according to a domain (no `NULL` mapping).
fn parse_typed(text: &str, domain: &Domain) -> Option<Value> {
    match domain {
        Domain::Int => text.parse::<i64>().map(Value::Int).ok(),
        Domain::Real => text.parse::<f64>().map(Value::Real).ok(),
        Domain::Bool => match text {
            "true" | "TRUE" | "1" => Some(Value::Bool(true)),
            "false" | "FALSE" | "0" => Some(Value::Bool(false)),
            _ => None,
        },
        Domain::Text => Some(Value::str(text)),
        Domain::Finite(values) => {
            // Accept any display form matching a domain element.
            values.iter().find(|v| v.to_string() == text).cloned()
        }
    }
}

/// Parses a single bare (unquoted) cell according to the attribute domain:
/// whitespace-trimmed, with `NULL` mapping to [`Value::Null`].
pub fn parse_cell(text: &str, domain: &Domain) -> DqResult<Value> {
    let text = text.trim();
    if text == "NULL" {
        return Ok(Value::Null);
    }
    parse_typed(text, domain).ok_or_else(|| DqError::Parse {
        reason: format!("cannot parse `{text}` as {domain}"),
    })
}

/// Parses one scanned cell.  Quoted cells keep their exact content: no
/// trimming, and a quoted `"NULL"` is the three-letter string, not a null.
fn parse_raw_cell(cell: &RawCell, domain: &Domain) -> DqResult<Value> {
    if !cell.quoted {
        return parse_cell(&cell.text, domain);
    }
    let parsed = match domain {
        Domain::Text => Some(Value::str(cell.text.as_str())),
        other => parse_typed(cell.text.trim(), other),
    };
    parsed.ok_or_else(|| DqError::Parse {
        reason: format!("cannot parse quoted `{}` as {domain}", cell.text),
    })
}

/// Validates a scanned header against the schema's attribute list.
fn check_header(cells: &[RawCell], schema: &RelationSchema) -> DqResult<()> {
    let names: Vec<&str> = cells
        .iter()
        .map(|c| {
            if c.quoted {
                c.text.as_str()
            } else {
                c.text.trim()
            }
        })
        .collect();
    let expected: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    if names != expected {
        return Err(DqError::Parse {
            reason: format!("header {names:?} does not match schema attributes {expected:?}"),
        });
    }
    Ok(())
}

/// Parses delimited text (as produced by [`to_text`]) into an instance of
/// `schema`.  The header row must list exactly the schema's attributes in
/// order.
pub fn from_text(schema: Arc<RelationSchema>, text: &str) -> DqResult<RelationInstance> {
    let mut reader = RecordReader::new(text.as_bytes());
    let header = reader.next_record()?.ok_or_else(|| DqError::Parse {
        reason: "empty input".into(),
    })?;
    check_header(&header, &schema)?;
    let mut instance = RelationInstance::new(Arc::clone(&schema));
    let mut rowno = 1usize;
    while let Some(cells) = reader.next_record()? {
        rowno += 1;
        if cells.len() != schema.arity() {
            return Err(DqError::Parse {
                reason: format!(
                    "record {} has {} cells, expected {}",
                    rowno,
                    cells.len(),
                    schema.arity()
                ),
            });
        }
        let values: DqResult<Vec<Value>> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| parse_raw_cell(c, schema.domain(i)))
            .collect();
        instance.insert(Tuple::new(values?))?;
    }
    Ok(instance)
}

// ---------------------------------------------------------------------------
// Streaming ingest
// ---------------------------------------------------------------------------

/// Streams delimited text straight into a persisted columnar relation at
/// `dir` (see [`crate::store::persist`]): each cell is parsed against its
/// domain and interned into the column dictionary as it is read, full
/// shards are flushed to disk immediately, and dictionaries spill once at
/// the end.  No tuple vector of the input is ever materialized — peak
/// memory is O(dictionaries + one shard) however large the input.
///
/// The relation can then be re-opened with
/// [`crate::store::persist::open_mmap`] and fed to the shard-cursor
/// detection and discovery paths.
pub fn stream_into_store<R: BufRead>(
    schema: Arc<RelationSchema>,
    input: R,
    dir: &Path,
    shard_rows: usize,
) -> DqResult<SaveStats> {
    let _span = dq_obs::span!("store.io.stream_ingest");
    let mut reader = RecordReader::new(input);
    let header = reader.next_record()?.ok_or_else(|| DqError::Parse {
        reason: "empty input".into(),
    })?;
    check_header(&header, &schema)?;
    let mut writer = RelationWriter::create(dir, Arc::clone(&schema), shard_rows)?;
    let mut row: Vec<Value> = Vec::with_capacity(schema.arity());
    let mut rowno = 1usize;
    while let Some(cells) = reader.next_record()? {
        rowno += 1;
        if cells.len() != schema.arity() {
            return Err(DqError::Parse {
                reason: format!(
                    "record {} has {} cells, expected {}",
                    rowno,
                    cells.len(),
                    schema.arity()
                ),
            });
        }
        row.clear();
        for (i, c) in cells.iter().enumerate() {
            row.push(parse_raw_cell(c, schema.domain(i))?);
        }
        writer.push_row(row.drain(..))?;
        dq_obs::inc("store.io.ingested_rows");
    }
    writer.finish()
}

/// [`stream_into_store`] reading from a file.
pub fn stream_file_into_store(
    schema: Arc<RelationSchema>,
    input: &Path,
    dir: &Path,
    shard_rows: usize,
) -> DqResult<SaveStats> {
    let file = std::fs::File::open(input).map_err(|e| DqError::Io {
        path: input.display().to_string(),
        reason: e.to_string(),
    })?;
    stream_into_store(schema, std::io::BufReader::new(file), dir, shard_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::persist::open_mmap_verified;
    use crate::store::shard::ShardSource;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("name", Domain::Text),
                ("price", Domain::Real),
                ("active", Domain::Bool),
            ],
        ))
    }

    fn round_trips(inst: &RelationInstance, schema: &Arc<RelationSchema>) {
        let text = to_text(inst).unwrap();
        let parsed = from_text(Arc::clone(schema), &text).unwrap();
        assert!(inst.same_tuples_as(&parsed), "lossy round trip:\n{text}");
    }

    #[test]
    fn round_trip_preserves_tuples() {
        let schema = schema();
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        inst.insert_values([
            Value::int(44),
            Value::str("Mike"),
            Value::real(7.99),
            Value::bool(true),
        ])
        .unwrap();
        inst.insert_values([
            Value::int(1),
            Value::Null,
            Value::real(0.5),
            Value::bool(false),
        ])
        .unwrap();
        round_trips(&inst, &schema);
    }

    #[test]
    fn literal_null_text_round_trips_quoted() {
        // Regression test: a `Text` cell whose content is literally "NULL"
        // used to be *refused* (and before that, silently re-parsed as a
        // null).  It now serializes quoted and survives the round trip,
        // while an actual null still renders bare.
        let schema = schema();
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        inst.insert_values([
            Value::int(1),
            Value::str("NULL"),
            Value::real(1.0),
            Value::bool(true),
        ])
        .unwrap();
        inst.insert_values([
            Value::int(2),
            Value::Null,
            Value::real(1.0),
            Value::bool(true),
        ])
        .unwrap();
        let text = to_text(&inst).unwrap();
        assert!(text.contains("\"NULL\""), "{text}");
        round_trips(&inst, &schema);
    }

    #[test]
    fn separators_newlines_and_quotes_round_trip_quoted() {
        // Regression test: cells containing `|`, line breaks or quotes used
        // to be refused outright; they now round-trip via quoting.
        let schema = schema();
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        for name in [
            "Mike|Smith",
            "two\nlines",
            "carriage\rreturn",
            "a \"quoted\" word",
            "\"",
            "||",
            " leading and trailing ",
            "",
            "plain",
        ] {
            inst.insert_values([
                Value::int(1),
                Value::str(name),
                Value::real(1.0),
                Value::bool(true),
            ])
            .unwrap();
        }
        round_trips(&inst, &schema);
    }

    #[test]
    fn adversarial_text_cells_round_trip() {
        // Property-style sweep: pseudo-random strings over a hostile
        // alphabet (separators, quotes, line breaks, whitespace, `NULL`
        // fragments) must all survive the round trip.
        let schema = schema();
        let alphabet: Vec<char> = "|\"\n\r NUL\tx√".chars().collect();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |bound: usize| {
            // xorshift64*; deterministic, no external RNG dependency.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as usize % bound
        };
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        for _ in 0..300 {
            let len = next(12);
            let s: String = (0..len).map(|_| alphabet[next(alphabet.len())]).collect();
            inst.insert_values([
                Value::int(next(100) as i64 - 50),
                Value::str(s),
                Value::real(next(1000) as f64 / 8.0),
                Value::bool(next(2) == 1),
            ])
            .unwrap();
        }
        round_trips(&inst, &schema);
    }

    #[test]
    fn quoted_header_names_round_trip() {
        let schema = Arc::new(RelationSchema::new(
            "odd",
            [("a|b", Domain::Int), ("c\nd", Domain::Text)],
        ));
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        inst.insert_values([Value::int(3), Value::str("x")])
            .unwrap();
        round_trips(&inst, &schema);
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let schema = schema();
        let err = from_text(schema, "A|B|C|D\n1|x|2.0|true\n").unwrap_err();
        assert!(matches!(err, DqError::Parse { .. }));
    }

    #[test]
    fn bad_cell_counts_and_values_are_rejected() {
        let schema = schema();
        let short = from_text(Arc::clone(&schema), "CC|name|price|active\n1|x|2.0\n");
        assert!(short.is_err());
        let bad_int = from_text(Arc::clone(&schema), "CC|name|price|active\nxx|x|2.0|true\n");
        assert!(bad_int.is_err());
        let unterminated = from_text(
            Arc::clone(&schema),
            "CC|name|price|active\n1|\"x|2.0|true\n",
        );
        assert!(unterminated.is_err());
        let trailing = from_text(
            Arc::clone(&schema),
            "CC|name|price|active\n1|\"x\"y|2.0|true\n",
        );
        assert!(trailing.is_err());
    }

    #[test]
    fn finite_domains_accept_only_listed_values() {
        let dom = Domain::finite_str(["book", "CD"]);
        assert_eq!(parse_cell("book", &dom).unwrap(), Value::str("book"));
        assert!(parse_cell("DVD", &dom).is_err());
        assert_eq!(parse_cell("NULL", &dom).unwrap(), Value::Null);
    }

    #[test]
    fn stream_ingest_matches_in_memory_parse() {
        let schema = schema();
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        for i in 0..200 {
            inst.insert_values([
                Value::int(i % 17),
                Value::str(if i % 7 == 0 {
                    format!("odd|name {i}")
                } else {
                    format!("name-{}", i % 23)
                }),
                Value::real(i as f64 / 4.0),
                Value::bool(i % 2 == 0),
            ])
            .unwrap();
        }
        let text = to_text(&inst).unwrap();
        let dir = std::env::temp_dir().join(format!("dq_csv_stream_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Small shards force a multi-shard layout on 200 rows.
        let stats = stream_into_store(Arc::clone(&schema), text.as_bytes(), &dir, 32).unwrap();
        assert_eq!(stats.rows, 200);
        let mapped = open_mmap_verified(&dir).unwrap();
        assert_eq!(mapped.len(), 200);
        assert_eq!(mapped.shard_count(), 200usize.div_ceil(32));
        let store = inst.columnar();
        for attr in 0..schema.arity() {
            let m = mapped.column(attr);
            let s = store.column(&inst, attr);
            for row in 0..200 {
                assert_eq!(
                    m.interner().resolve(m.id_at(row)),
                    s.interner().resolve(s.id_at(row)),
                    "attr {attr} row {row}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_ingest_rejects_bad_rows_cleanly() {
        let schema = schema();
        let bad = "CC|name|price|active\n1|x|2.0|true\nnot-an-int|y|1.0|false\n";
        let dir = std::env::temp_dir().join(format!("dq_csv_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = stream_into_store(Arc::clone(&schema), bad.as_bytes(), &dir, 8).unwrap_err();
        assert!(matches!(err, DqError::Parse { .. }), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
