//! Dynamically typed constants.
//!
//! All dependency classes of the paper compare attribute values for equality
//! (FDs, CFDs, CINDs), order them (denial constraints with `<`, `>`), group
//! them (violation detection) and measure distances between them (the repair
//! cost model of Section 5.1).  [`Value`] therefore implements `Eq`, `Ord`
//! and `Hash` with a deterministic total order across variants, treating
//! `Real` values through their IEEE-754 total order so they can participate
//! in hash joins and B-tree style grouping without surprises.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A constant stored in a relation cell.
///
/// `Null` models missing information; it is equal to itself (so grouping is
/// well defined) but the dependency semantics in `dq-core` treat it as an
/// ordinary constant, exactly as the paper does (the paper never introduces
/// SQL three-valued logic).
#[derive(Clone, Debug)]
pub enum Value {
    /// Missing / unknown value.
    Null,
    /// Boolean constant (the canonical finite domain of Example 4.1).
    Bool(bool),
    /// 64-bit integer constant.
    Int(i64),
    /// 64-bit floating point constant (prices in Fig. 3).
    Real(f64),
    /// String constant; reference counted so projections and repairs can
    /// duplicate values without reallocating the text.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Builds a real value.
    pub fn real(r: f64) -> Self {
        Value::Real(r)
    }

    /// Builds a boolean value.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the contained string, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained integer, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained real, if this is a real value.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained boolean, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A small integer identifying the variant, used to order values of
    /// different types deterministically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Real(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Name of the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b) == Ordering::Equal,
            // Canonicalized instances (see `crate::store::ValueInterner::canonical`)
            // share one `Arc` per distinct string, so the pointer check makes
            // their equality O(1) before falling back to content comparison.
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Mixed numeric comparisons order by numeric value first so that
            // denial constraints over mixed int/real columns behave sanely.
            (Value::Int(a), Value::Real(b)) => (*a as f64).total_cmp(b),
            (Value::Real(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Real(r) => r.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// A simple, symmetric distance between two values in `[0, 1]`, used by the
/// repair cost model of Section 5.1 (`cost(v, v') = w(t, A) * dis(v, v')`).
///
/// * identical values have distance `0`;
/// * numeric values use a normalized absolute difference;
/// * strings use normalized Levenshtein distance;
/// * values of incomparable types (or involving `Null`) have distance `1`.
pub fn value_distance(a: &Value, b: &Value) -> f64 {
    if a == b {
        return 0.0;
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let (x, y) = (*x as f64, *y as f64);
            normalized_numeric_distance(x, y)
        }
        (Value::Real(x), Value::Real(y)) => normalized_numeric_distance(*x, *y),
        (Value::Int(x), Value::Real(y)) | (Value::Real(y), Value::Int(x)) => {
            normalized_numeric_distance(*x as f64, *y)
        }
        (Value::Str(x), Value::Str(y)) => normalized_levenshtein(x, y),
        (Value::Bool(_), Value::Bool(_)) => 1.0,
        _ => 1.0,
    }
}

fn normalized_numeric_distance(x: f64, y: f64) -> f64 {
    let diff = (x - y).abs();
    let scale = x.abs().max(y.abs()).max(1.0);
    (diff / scale).min(1.0)
}

/// Levenshtein edit distance between two strings (in characters).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Threshold-bounded Levenshtein: `Some(distance)` when the edit distance
/// is at most `k`, `None` otherwise.
///
/// Equivalent to `levenshtein(a, b) <= k` but exits early: a length
/// pre-check rejects pairs whose length difference already exceeds `k`,
/// and the DP only computes the `2k + 1`-wide band around the diagonal
/// (`D(i, j) >= |i - j|`, so cells outside the band can never come back
/// under the bound), aborting as soon as a whole band row exceeds `k`.
pub fn levenshtein_within(a: &str, b: &str, k: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_within_scratch(&a, &b, k, &mut Vec::new(), &mut Vec::new())
}

/// [`levenshtein_within`] over pre-split characters with caller-owned DP
/// rows, so hot loops (the similarity kernels in `dq-match`) can reuse
/// their scratch across calls.
pub fn levenshtein_within_scratch(
    a: &[char],
    b: &[char],
    k: usize,
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > k {
        return None;
    }
    if n == 0 || m == 0 {
        // The length pre-check above already bounds the distance by `k`.
        return Some(n.max(m));
    }
    // The distance never exceeds max(n, m); clamping `k` keeps the `k + 1`
    // sentinel away from overflow without changing the answer.
    let k = k.min(n.max(m));
    let cap = k + 1;
    prev.clear();
    prev.extend((0..=m).map(|j| if j <= k { j } else { cap }));
    cur.clear();
    cur.resize(m + 1, cap);
    for i in 1..=n {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(m);
        cur[lo - 1] = if lo == 1 { i.min(cap) } else { cap };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = prev[j] + 1;
            let ins = cur[j - 1] + 1;
            let d = sub.min(del).min(ins).min(cap);
            cur[j] = d;
            row_min = row_min.min(d);
        }
        if row_min >= cap {
            return None;
        }
        std::mem::swap(prev, cur);
    }
    let d = prev[m];
    (d <= k).then_some(d)
}

/// Levenshtein distance normalized by the longer string length, in `[0, 1]`.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_variant_and_value_sensitive() {
        assert_eq!(Value::int(3), Value::int(3));
        assert_ne!(Value::int(3), Value::real(3.0));
        assert_eq!(Value::str("EDI"), Value::str("EDI"));
        assert_ne!(Value::str("EDI"), Value::str("NYC"));
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::int(0));
    }

    #[test]
    fn real_values_hash_and_compare_consistently() {
        let mut set = HashSet::new();
        set.insert(Value::real(7.99));
        assert!(set.contains(&Value::real(7.99)));
        assert!(!set.contains(&Value::real(7.94)));
        assert!(Value::real(1.0) < Value::real(2.0));
    }

    #[test]
    fn mixed_numeric_ordering_uses_numeric_value() {
        assert!(Value::int(2) < Value::real(2.5));
        assert!(Value::real(1.5) < Value::int(2));
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let mut vs = [
            Value::str("a"),
            Value::int(1),
            Value::Null,
            Value::bool(true),
            Value::real(0.5),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs.last().unwrap(), &Value::str("a"));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::str("Mayfield").to_string(), "Mayfield");
        assert_eq!(Value::int(44).to_string(), "44");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn levenshtein_known_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("Mike", "Michael"), 4);
    }

    #[test]
    fn value_distance_bounds() {
        assert_eq!(value_distance(&Value::str("x"), &Value::str("x")), 0.0);
        assert_eq!(value_distance(&Value::Null, &Value::int(1)), 1.0);
        let d = value_distance(&Value::str("Mayfield"), &Value::str("Crichton"));
        assert!(d > 0.0 && d <= 1.0);
        let near = value_distance(&Value::int(100), &Value::int(101));
        let far = value_distance(&Value::int(100), &Value::int(200));
        assert!(near < far);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Value::str("Snow White");
        let b = Value::str("Snow Whyte");
        assert_eq!(value_distance(&a, &b), value_distance(&b, &a));
    }

    #[test]
    fn bounded_levenshtein_known_cases() {
        assert_eq!(levenshtein_within("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_within("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_within("", "abc", 2), None);
        assert_eq!(levenshtein_within("", "abc", 3), Some(3));
        assert_eq!(levenshtein_within("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_within("abc", "abd", 0), None);
        assert_eq!(levenshtein_within("", "", 0), Some(0));
        assert_eq!(levenshtein_within("a", "b", usize::MAX), Some(1));
    }

    /// The bounded metric agrees with the unbounded one at every threshold —
    /// in particular *at* the threshold, where the band is tightest.
    #[test]
    fn bounded_levenshtein_equals_unbounded_at_every_threshold() {
        // Deterministic pseudo-random word list, no external RNG.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let alphabet = ['a', 'b', 'c', 'd', 'é', '界'];
        let mut words: Vec<String> = vec![String::new(), "a".into(), "ab".into()];
        for _ in 0..40 {
            let len = (next() % 12) as usize;
            words.push(
                (0..len)
                    .map(|_| alphabet[(next() % alphabet.len() as u64) as usize])
                    .collect(),
            );
        }
        for a in &words {
            for b in &words {
                let exact = levenshtein(a, b);
                for k in 0..=(exact + 2) {
                    let bounded = levenshtein_within(a, b, k);
                    if exact <= k {
                        assert_eq!(bounded, Some(exact), "{a:?} vs {b:?} at k={k}");
                    } else {
                        assert_eq!(bounded, None, "{a:?} vs {b:?} at k={k}");
                    }
                }
            }
        }
    }

    /// The scratch variant leaves no state behind that changes later calls.
    #[test]
    fn bounded_levenshtein_scratch_is_reusable() {
        let mut prev = Vec::new();
        let mut cur = Vec::new();
        let pairs = [
            ("kitten", "sitting"),
            ("", "ab"),
            ("abc", "abc"),
            ("xy", "yx"),
        ];
        for (a, b) in pairs {
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            for k in 0..6 {
                assert_eq!(
                    levenshtein_within_scratch(&ac, &bc, k, &mut prev, &mut cur),
                    levenshtein_within(a, b, k),
                    "{a:?} vs {b:?} at k={k}"
                );
            }
        }
    }
}
