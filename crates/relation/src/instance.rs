//! Relation instances and databases.
//!
//! Instances keep tuples in insertion order and address them by a stable
//! [`TupleId`], so that violations (`dq-core`), repairs (`dq-repair`) and
//! provenance-carrying views can refer to *cells* `(tuple, attribute)` of the
//! original data — exactly the granularity the U-repair model of Section 5.1
//! needs.

use crate::error::{DqError, DqResult};
use crate::schema::RelationSchema;
use crate::store::{ColumnarStore, FxHashMap};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Source of process-unique instance identities (see
/// [`RelationInstance::instance_id`]).
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_instance_id() -> u64 {
    NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Upper bound on delta-journal entries kept on an instance.  When the
/// journal would exceed this, the oldest half is dropped and the journal
/// floor raised: snapshots older than the floor fall back to a full rebuild,
/// recent ones keep the patch path.
const DELTA_JOURNAL_CAP: usize = 4096;

/// A coalesced cell-level change between two versions of an instance, as
/// reported by [`RelationInstance::changed_cells_since`]: `cell` held `old`
/// at the earlier version and holds `new` now.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellChange {
    /// The changed cell.
    pub cell: CellRef,
    /// The value at the earlier version.
    pub old: Value,
    /// The value now.
    pub new: Value,
}

/// One journaled cell write: reaching `version` replaced `old` with `new`
/// in `cell`.
#[derive(Clone, Debug)]
struct DeltaEntry {
    version: u64,
    cell: CellRef,
    old: Value,
    new: Value,
}

/// Stable identifier of a tuple within a [`RelationInstance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub usize);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A cell address: tuple plus attribute position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellRef {
    /// The tuple the cell belongs to.
    pub tuple: TupleId,
    /// The attribute position within the tuple.
    pub attr: usize,
}

impl CellRef {
    /// Creates a cell reference.
    pub fn new(tuple: TupleId, attr: usize) -> Self {
        CellRef { tuple, attr }
    }
}

/// An instance of a relation schema: a multiset of tuples with stable ids.
///
/// Every instance carries a process-unique [`instance_id`](Self::instance_id)
/// and a [`version`](Self::version) counter bumped by every mutation, so that
/// derived structures (most importantly [`crate::index::IndexPool`] entries)
/// can be memoized per `(instance, version)` and never served stale.
#[derive(Debug)]
pub struct RelationInstance {
    schema: Arc<RelationSchema>,
    tuples: Vec<Option<Tuple>>,
    live: usize,
    instance_id: u64,
    version: u64,
    /// The version as of the last mutation that was *not* an insertion
    /// (removal, cell update, mutable tuple access).  Snapshots and indexes
    /// taken at or after this version can be extended in place when the
    /// instance has only grown since — see
    /// [`append_only_since`](Self::append_only_since).
    last_non_append_version: u64,
    /// Cell-delta journal: every cell write since `delta_floor`, in version
    /// order.  Kept small (see [`DELTA_JOURNAL_CAP`]); removals and raw
    /// [`tuple_mut`](Self::tuple_mut) access clear it and raise the floor,
    /// because the journal can no longer describe the instance as
    /// "the old snapshot plus these cell edits".
    delta: Vec<DeltaEntry>,
    /// Versions `v` with `delta_floor <= v <= version` are *delta-covered*:
    /// the journal records every mutation after `v` that was not an
    /// insertion, so snapshots and indexes taken at `v` can be patched in
    /// place — see [`delta_covers`](Self::delta_covers).
    delta_floor: u64,
    /// Version-tagged columnar snapshot, built lazily by
    /// [`columnar`](Self::columnar) and dropped (logically) by the version
    /// check after any mutation.  Never cloned: the cache is an
    /// acceleration structure, not data.
    columnar: Mutex<Option<Arc<ColumnarStore>>>,
}

impl Clone for RelationInstance {
    /// Clones the data but assigns a fresh identity: a clone can diverge from
    /// the original, so cached indexes of one must never answer for the
    /// other.
    fn clone(&self) -> Self {
        RelationInstance {
            schema: Arc::clone(&self.schema),
            tuples: self.tuples.clone(),
            live: self.live,
            instance_id: fresh_instance_id(),
            version: 0,
            last_non_append_version: 0,
            delta: Vec::new(),
            delta_floor: 0,
            columnar: Mutex::new(None),
        }
    }
}

impl RelationInstance {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        RelationInstance {
            schema,
            tuples: Vec::new(),
            live: 0,
            instance_id: fresh_instance_id(),
            version: 0,
            last_non_append_version: 0,
            delta: Vec::new(),
            delta_floor: 0,
            columnar: Mutex::new(None),
        }
    }

    /// Creates an empty instance, taking ownership of a plain schema.
    pub fn from_schema(schema: RelationSchema) -> Self {
        Self::new(Arc::new(schema))
    }

    /// The schema of this instance.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Process-unique identity of this instance.  Clones get fresh
    /// identities; the pair `(instance_id, version)` therefore uniquely
    /// determines the tuple contents for cache keys.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Mutation counter: bumped by every insert, removal and cell update
    /// (including mutable tuple access, conservatively).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True when every mutation after `version` (up to the current version)
    /// was an insertion: the tuples live at `version` are still live and
    /// unchanged, in the same order, so a snapshot or index taken at
    /// `version` is a *prefix* of the current state and can be extended in
    /// place instead of rebuilt.  Removals, cell updates and mutable tuple
    /// access all break the property until the next snapshot.
    pub fn append_only_since(&self, version: u64) -> bool {
        version <= self.version && version >= self.last_non_append_version
    }

    /// True when the delta journal fully describes how the instance evolved
    /// from `version` to now: every mutation after `version` was either an
    /// insertion (visible as new live slots) or a journaled cell write.  A
    /// snapshot or index taken at `version` can then be *patched* — the
    /// changed cells are listed by
    /// [`changed_cells_since`](Self::changed_cells_since) — instead of
    /// rebuilt.  Removals, raw [`tuple_mut`](Self::tuple_mut) access and
    /// journal overflow break the property for older versions.
    ///
    /// `append_only_since(v)` implies `delta_covers(v)` (with an empty
    /// change list).
    pub fn delta_covers(&self, version: u64) -> bool {
        version <= self.version && version >= self.delta_floor
    }

    /// The cells that changed between `version` and now, coalesced per cell
    /// (first recorded `old`, last recorded `new`) with net no-ops dropped,
    /// in first-touched order.  Returns `None` when `version` is not
    /// [delta-covered](Self::delta_covers).
    pub fn changed_cells_since(&self, version: u64) -> Option<Vec<CellChange>> {
        if !self.delta_covers(version) {
            return None;
        }
        let mut out: Vec<CellChange> = Vec::new();
        let mut slot: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for e in self.delta.iter().filter(|e| e.version > version) {
            match slot.entry((e.cell.tuple.0, e.cell.attr)) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    out[*o.get()].new = e.new.clone();
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(out.len());
                    out.push(CellChange {
                        cell: e.cell,
                        old: e.old.clone(),
                        new: e.new.clone(),
                    });
                }
            }
        }
        out.retain(|c| c.old != c.new);
        Some(out)
    }

    /// Forgets the journal: mutations up to the current version can no
    /// longer be described as cell deltas.
    fn poison_delta(&mut self) {
        self.delta.clear();
        self.delta_floor = self.version;
    }

    /// Journals one cell write (already applied, version already bumped),
    /// evicting the oldest half of the journal when full so recent versions
    /// stay patchable.
    fn journal_push(&mut self, cell: CellRef, old: Value, new: Value) {
        if self.delta.len() >= DELTA_JOURNAL_CAP {
            let half = DELTA_JOURNAL_CAP / 2;
            self.delta_floor = self.delta[half - 1].version;
            self.delta.drain(..half);
        }
        self.delta.push(DeltaEntry {
            version: self.version,
            cell,
            old,
            new,
        });
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a tuple after validating arity and domains.
    pub fn insert(&mut self, tuple: Tuple) -> DqResult<TupleId> {
        if tuple.arity() != self.schema.arity() {
            return Err(DqError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, v) in tuple.values().iter().enumerate() {
            if !self.schema.domain(i).contains(v) {
                return Err(DqError::DomainViolation {
                    relation: self.schema.name().to_string(),
                    attribute: self.schema.attr_name(i).to_string(),
                    value: v.to_string(),
                });
            }
        }
        let id = TupleId(self.tuples.len());
        self.tuples.push(Some(tuple));
        self.live += 1;
        self.version += 1;
        Ok(id)
    }

    /// Inserts a tuple built from raw convertible values.
    pub fn insert_values<I, V>(&mut self, values: I) -> DqResult<TupleId>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.insert(Tuple::from_values(values))
    }

    /// Removes a tuple (keeping ids of the remaining tuples stable).
    /// Returns the removed tuple if it was present.
    pub fn remove(&mut self, id: TupleId) -> Option<Tuple> {
        let slot = self.tuples.get_mut(id.0)?;
        let removed = slot.take();
        if removed.is_some() {
            self.live -= 1;
            self.version += 1;
            self.last_non_append_version = self.version;
            self.poison_delta();
        }
        removed
    }

    /// The tuple with identifier `id`, if it is live.
    pub fn tuple(&self, id: TupleId) -> Option<&Tuple> {
        self.tuples.get(id.0).and_then(|t| t.as_ref())
    }

    /// Mutable access to a tuple.  Conservatively counts as an *unknown*
    /// mutation: the version is bumped, the append-only fast path and the
    /// delta journal are both invalidated, even if the caller never writes
    /// through the reference — the instance cannot see what (if anything)
    /// was written.  In-repo code writes cells through
    /// [`update_cell`](Self::update_cell) instead, which validates the
    /// value, skips no-op writes and keeps snapshots patchable; this method
    /// remains for external callers that need raw access.
    pub fn tuple_mut(&mut self, id: TupleId) -> Option<&mut Tuple> {
        if self.tuples.get(id.0).is_some_and(|t| t.is_some()) {
            self.version += 1;
            self.last_non_append_version = self.version;
            self.poison_delta();
        }
        self.tuples.get_mut(id.0).and_then(|t| t.as_mut())
    }

    /// Updates a single cell after validating the new value against the
    /// attribute's domain (exactly like [`insert`](Self::insert) does for
    /// whole tuples), returning the previous value — `Ok(None)` when the
    /// tuple is not live.  A no-op write (`value` equal to the current
    /// value) returns early without bumping the version, so it neither
    /// invalidates cached snapshots nor poisons the append-only fast path.
    /// Real writes are recorded in the delta journal, keeping derived
    /// snapshots and indexes patchable (see
    /// [`delta_covers`](Self::delta_covers)).
    pub fn update_cell(&mut self, cell: CellRef, value: Value) -> DqResult<Option<Value>> {
        if cell.attr >= self.schema.arity() {
            return Err(DqError::UnknownAttribute {
                relation: self.schema.name().to_string(),
                attribute: format!("#{}", cell.attr),
            });
        }
        if !self.schema.domain(cell.attr).contains(&value) {
            return Err(DqError::DomainViolation {
                relation: self.schema.name().to_string(),
                attribute: self.schema.attr_name(cell.attr).to_string(),
                value: value.to_string(),
            });
        }
        Ok(self.update_cell_unchecked(cell, value))
    }

    /// [`update_cell`](Self::update_cell) without domain validation — the
    /// explicit escape hatch for callers that intentionally write values
    /// outside the schema's domains (panics if `cell.attr` is out of
    /// bounds).  Still skips no-op writes and journals real ones.
    pub fn update_cell_unchecked(&mut self, cell: CellRef, value: Value) -> Option<Value> {
        let tuple = self.tuples.get_mut(cell.tuple.0).and_then(|t| t.as_mut())?;
        if tuple.get(cell.attr) == &value {
            return Some(value);
        }
        let old = tuple.set(cell.attr, value.clone());
        self.version += 1;
        self.last_non_append_version = self.version;
        self.journal_push(cell, old.clone(), value);
        Some(old)
    }

    /// The value stored in a cell.
    pub fn cell(&self, cell: CellRef) -> Option<&Value> {
        self.tuple(cell.tuple).map(|t| t.get(cell.attr))
    }

    /// Iterates over `(id, tuple)` pairs of live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (TupleId(i), t)))
    }

    /// All live tuple ids.
    pub fn ids(&self) -> Vec<TupleId> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// All live tuples, cloned into a plain vector (used by algorithms that
    /// build derived instances).
    pub fn tuples(&self) -> Vec<Tuple> {
        self.iter().map(|(_, t)| t.clone()).collect()
    }

    /// The active domain of attribute `attr`: the set of distinct values the
    /// attribute takes in this instance.  Repairing (Section 5.1) draws
    /// candidate replacement values from the active domain.
    pub fn active_domain(&self, attr: usize) -> BTreeSet<Value> {
        self.iter().map(|(_, t)| t.get(attr).clone()).collect()
    }

    /// Projection of the whole instance onto an attribute list, as a set.
    pub fn project_distinct(&self, attrs: &[usize]) -> BTreeSet<Vec<Value>> {
        self.iter().map(|(_, t)| t.project(attrs)).collect()
    }

    /// The interned columnar snapshot of this instance at its current
    /// version, built on first access and memoized until the next mutation.
    ///
    /// The snapshot is the entry point of the storage subsystem
    /// ([`crate::store`]): detectors and the
    /// [`crate::index::IndexPool`] derive interned indexes from it while the
    /// row-oriented API above stays the source of truth.  Mutating the
    /// instance does not touch existing snapshots (they are immutable
    /// `Arc`s); the next call builds a fresh one — except after append-only
    /// mutations, where the stale snapshot is *extended*: existing rows and
    /// dictionaries are reused and only the appended tuples are encoded
    /// (the incremental-detection fast path) — and after journaled cell
    /// writes, where it is *patched*: only the changed cells are
    /// re-interned, every other column and dictionary is reused.
    pub fn columnar(&self) -> Arc<ColumnarStore> {
        let mut cache = self.columnar.lock().expect("columnar cache poisoned");
        if let Some(store) = cache.as_ref() {
            if store.version() == self.version {
                return Arc::clone(store);
            }
            if self.append_only_since(store.version()) {
                let extended = Arc::new(ColumnarStore::extended(store, self));
                *cache = Some(Arc::clone(&extended));
                return extended;
            }
            if let Some(changes) = self.changed_cells_since(store.version()) {
                let patched = Arc::new(ColumnarStore::patched(store, self, &changes));
                *cache = Some(Arc::clone(&patched));
                return patched;
            }
        }
        let store = Arc::new(ColumnarStore::new(self));
        *cache = Some(Arc::clone(&store));
        store
    }

    /// True when `other` contains exactly the same multiset of tuples
    /// (ignoring tuple ids).  Used to compare repairs.
    pub fn same_tuples_as(&self, other: &RelationInstance) -> bool {
        let mut a: Vec<&Tuple> = self.iter().map(|(_, t)| t).collect();
        let mut b: Vec<&Tuple> = other.iter().map(|(_, t)| t).collect();
        a.sort();
        b.sort();
        a == b
    }
}

/// A database: a collection of relation instances indexed by relation name.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, RelationInstance>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a relation instance, keyed by its schema name.
    pub fn add_relation(&mut self, instance: RelationInstance) {
        self.relations
            .insert(instance.schema().name().to_string(), instance);
    }

    /// Looks up a relation instance by name.
    pub fn relation(&self, name: &str) -> Option<&RelationInstance> {
        self.relations.get(name)
    }

    /// Looks up a relation instance by name, failing loudly.
    pub fn require_relation(&self, name: &str) -> DqResult<&RelationInstance> {
        self.relation(name).ok_or_else(|| DqError::UnknownRelation {
            relation: name.to_string(),
        })
    }

    /// Mutable access to a relation instance.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut RelationInstance> {
        self.relations.get_mut(name)
    }

    /// Iterates over all relation instances in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RelationInstance)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Domain;

    fn schema() -> RelationSchema {
        RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Text), ("C", Domain::Bool)],
        )
    }

    fn sample() -> RelationInstance {
        let mut inst = RelationInstance::from_schema(schema());
        inst.insert_values([Value::int(1), Value::str("x"), Value::bool(true)])
            .unwrap();
        inst.insert_values([Value::int(2), Value::str("y"), Value::bool(false)])
            .unwrap();
        inst.insert_values([Value::int(1), Value::str("x"), Value::bool(false)])
            .unwrap();
        inst
    }

    #[test]
    fn insert_validates_arity() {
        let mut inst = RelationInstance::from_schema(schema());
        let err = inst
            .insert(Tuple::from_values([Value::int(1)]))
            .unwrap_err();
        assert!(matches!(
            err,
            DqError::ArityMismatch {
                expected: 3,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn insert_validates_domains() {
        let mut inst = RelationInstance::from_schema(schema());
        let err = inst
            .insert_values([Value::str("not an int"), Value::str("x"), Value::bool(true)])
            .unwrap_err();
        assert!(matches!(err, DqError::DomainViolation { .. }));
    }

    #[test]
    fn removal_keeps_ids_stable() {
        let mut inst = sample();
        assert_eq!(inst.len(), 3);
        let removed = inst.remove(TupleId(1)).unwrap();
        assert_eq!(removed.get(1), &Value::str("y"));
        assert_eq!(inst.len(), 2);
        assert!(inst.tuple(TupleId(1)).is_none());
        // The other tuples keep their ids.
        assert_eq!(inst.tuple(TupleId(2)).unwrap().get(0), &Value::int(1));
        // Removing twice is a no-op.
        assert!(inst.remove(TupleId(1)).is_none());
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn cell_update_round_trip() {
        let mut inst = sample();
        let cell = CellRef::new(TupleId(0), 1);
        let old = inst.update_cell(cell, Value::str("z")).unwrap().unwrap();
        assert_eq!(old, Value::str("x"));
        assert_eq!(inst.cell(cell).unwrap(), &Value::str("z"));
        // A dead tuple yields no previous value (and no error).
        inst.remove(TupleId(2));
        assert_eq!(
            inst.update_cell(CellRef::new(TupleId(2), 1), Value::str("q")),
            Ok(None)
        );
    }

    #[test]
    fn cell_update_validates_the_domain() {
        let mut inst = sample();
        let v = inst.version();
        let err = inst
            .update_cell(CellRef::new(TupleId(0), 0), Value::str("not an int"))
            .unwrap_err();
        assert!(matches!(err, DqError::DomainViolation { .. }));
        let err = inst
            .update_cell(CellRef::new(TupleId(0), 9), Value::int(1))
            .unwrap_err();
        assert!(matches!(err, DqError::UnknownAttribute { .. }));
        assert_eq!(inst.version(), v, "rejected writes leave no trace");
        assert_eq!(inst.cell(CellRef::new(TupleId(0), 0)), Some(&Value::int(1)));
        // The unchecked escape hatch writes anything.
        let old = inst
            .update_cell_unchecked(CellRef::new(TupleId(0), 0), Value::str("wild"))
            .unwrap();
        assert_eq!(old, Value::int(1));
    }

    #[test]
    fn noop_cell_update_leaves_version_and_caches_untouched() {
        let mut inst = sample();
        let snapshot = inst.columnar();
        let v = inst.version();
        let old = inst
            .update_cell(CellRef::new(TupleId(0), 1), Value::str("x"))
            .unwrap()
            .unwrap();
        assert_eq!(old, Value::str("x"));
        assert_eq!(inst.version(), v, "no-op writes do not bump the version");
        assert!(inst.append_only_since(v));
        assert!(
            Arc::ptr_eq(&snapshot, &inst.columnar()),
            "no-op writes keep the snapshot memoized"
        );
    }

    #[test]
    fn delta_journal_coalesces_and_survives_appends() {
        let mut inst = sample();
        let v0 = inst.version();
        inst.update_cell(CellRef::new(TupleId(0), 1), Value::str("a"))
            .unwrap();
        inst.insert_values([Value::int(7), Value::str("w"), Value::bool(true)])
            .unwrap();
        inst.update_cell(CellRef::new(TupleId(0), 1), Value::str("b"))
            .unwrap();
        assert!(inst.delta_covers(v0));
        assert!(!inst.append_only_since(v0));
        let changes = inst.changed_cells_since(v0).unwrap();
        assert_eq!(
            changes,
            vec![CellChange {
                cell: CellRef::new(TupleId(0), 1),
                old: Value::str("x"),
                new: Value::str("b"),
            }],
            "writes to one cell coalesce into a single change"
        );
        // A write that restores the original value nets out to no change.
        inst.update_cell(CellRef::new(TupleId(0), 1), Value::str("x"))
            .unwrap();
        assert_eq!(inst.changed_cells_since(v0).unwrap(), vec![]);
    }

    #[test]
    fn removals_and_raw_tuple_access_poison_the_delta_journal() {
        let mut inst = sample();
        let v0 = inst.version();
        inst.update_cell(CellRef::new(TupleId(0), 1), Value::str("z"))
            .unwrap();
        assert!(inst.delta_covers(v0));
        inst.remove(TupleId(1));
        assert!(!inst.delta_covers(v0));
        assert!(inst.changed_cells_since(v0).is_none());
        let v1 = inst.version();
        assert!(inst.delta_covers(v1));
        inst.tuple_mut(TupleId(0)).unwrap();
        assert!(
            !inst.delta_covers(v1),
            "raw access may have written anything"
        );
    }

    #[test]
    fn active_domain_is_distinct() {
        let inst = sample();
        let adom = inst.active_domain(0);
        assert_eq!(adom.len(), 2);
        assert!(adom.contains(&Value::int(1)));
    }

    #[test]
    fn project_distinct_deduplicates() {
        let inst = sample();
        assert_eq!(inst.project_distinct(&[0, 1]).len(), 2);
        assert_eq!(inst.project_distinct(&[0, 1, 2]).len(), 3);
    }

    #[test]
    fn same_tuples_ignores_order_and_ids() {
        let a = sample();
        let mut b = RelationInstance::from_schema(schema());
        b.insert_values([Value::int(1), Value::str("x"), Value::bool(false)])
            .unwrap();
        b.insert_values([Value::int(1), Value::str("x"), Value::bool(true)])
            .unwrap();
        b.insert_values([Value::int(2), Value::str("y"), Value::bool(false)])
            .unwrap();
        assert!(a.same_tuples_as(&b));
        b.remove(TupleId(0));
        assert!(!a.same_tuples_as(&b));
    }

    #[test]
    fn versions_bump_on_every_mutation() {
        let mut inst = RelationInstance::from_schema(schema());
        let v0 = inst.version();
        inst.insert_values([Value::int(1), Value::str("x"), Value::bool(true)])
            .unwrap();
        let v1 = inst.version();
        assert!(v1 > v0);
        inst.update_cell(CellRef::new(TupleId(0), 1), Value::str("y"))
            .unwrap();
        let v2 = inst.version();
        assert!(v2 > v1);
        inst.remove(TupleId(0));
        let v3 = inst.version();
        assert!(v3 > v2);
        // Removing a dead tuple is a no-op and must not invalidate caches.
        inst.remove(TupleId(0));
        assert_eq!(inst.version(), v3);
    }

    #[test]
    fn clones_get_fresh_identities() {
        let inst = sample();
        let clone = inst.clone();
        assert_ne!(inst.instance_id(), clone.instance_id());
        assert!(inst.same_tuples_as(&clone));
    }

    #[test]
    fn distinct_instances_have_distinct_identities() {
        assert_ne!(sample().instance_id(), sample().instance_id());
    }

    #[test]
    fn columnar_snapshot_is_memoized_per_version() {
        let mut inst = sample();
        let a = inst.columnar();
        let b = inst.columnar();
        assert!(
            Arc::ptr_eq(&a, &b),
            "unchanged instance reuses the snapshot"
        );
        assert_eq!(a.len(), inst.len());
        inst.insert_values([Value::int(9), Value::str("w"), Value::bool(true)])
            .unwrap();
        let c = inst.columnar();
        assert!(!Arc::ptr_eq(&a, &c), "mutations invalidate the snapshot");
        assert_eq!(c.len(), inst.len());
        // The old snapshot still reflects the state it was taken at.
        assert_eq!(a.len(), inst.len() - 1);
    }

    #[test]
    fn database_lookup_and_totals() {
        let mut db = Database::new();
        db.add_relation(sample());
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_tuples(), 3);
        assert!(db.relation("r").is_some());
        assert!(db.require_relation("s").is_err());
    }
}
