//! Nuclei: a single tableau representing all U-repairs (Section 5.3, after
//! [68]).
//!
//! For equality-generating dependencies — here the FD/key case, where a
//! repair must make all tuples agreeing on the LHS also agree on the RHS —
//! the nucleus replaces every conflicting group by a single pattern tuple:
//! attributes on which the group agrees keep their constant, attributes on
//! which it disagrees receive a fresh variable.  Conjunctive queries
//! evaluated *naively* on the nucleus (variables behave as distinct labelled
//! nulls) return, once variable-carrying answers are discarded, answers that
//! hold in every U-repair.  The nucleus is homomorphic to each repair, and
//! its size can blow up exponentially for general full dependencies — the
//! limitation Section 5.3 points out; the benchmark measures nucleus size
//! against the number of repairs.

use crate::vtable::{VTable, VTuple, VValue};
use dq_core::Fd;
use dq_relation::{Atom, ConjunctiveQuery, HashIndex, RelationInstance, Term, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Builds the nucleus of `instance` under a single FD `X → Y` (typically a
/// key): one v-tuple per `X`-group, with variables where the group disagrees.
pub fn nucleus_for_fd(instance: &RelationInstance, fd: &Fd) -> VTable {
    let mut table = VTable::new(instance.schema().clone());
    let index = HashIndex::build(instance, fd.lhs());
    let arity = instance.schema().arity();
    let mut var_counter = 0usize;
    // Deterministic order: sort groups by key value.
    let mut groups: Vec<(&Vec<Value>, &Vec<dq_relation::TupleId>)> = index.groups().collect();
    groups.sort_by(|a, b| a.0.cmp(b.0));
    for (_, group) in groups {
        let tuples: Vec<&dq_relation::Tuple> = group
            .iter()
            .map(|&id| instance.tuple(id).expect("live tuple"))
            .collect();
        let mut cells = Vec::with_capacity(arity);
        for attr in 0..arity {
            let first = tuples[0].get(attr);
            let all_agree = tuples.iter().all(|t| t.get(attr) == first);
            if all_agree {
                cells.push(VValue::Const(first.clone()));
            } else {
                cells.push(VValue::Var(format!("v{var_counter}")));
                var_counter += 1;
            }
        }
        table.push(VTuple::new(cells));
    }
    table
}

/// Evaluates a conjunctive query naively over a nucleus: variables are
/// treated as distinct labelled nulls (they only join with themselves), and
/// only variable-free answers are returned.  For the FD/key nuclei built by
/// [`nucleus_for_fd`], these answers hold in every U-repair.
pub fn evaluate_on_nucleus(
    table: &VTable,
    relation_name: &str,
    query: &ConjunctiveQuery,
) -> BTreeSet<Vec<Value>> {
    // Bind query variables to VValues by nested-loop matching of atoms over
    // the nucleus tuples.
    fn extend(
        table: &VTable,
        relation_name: &str,
        atoms: &[Atom],
        binding: BTreeMap<String, VValue>,
    ) -> Vec<BTreeMap<String, VValue>> {
        let Some((atom, rest)) = atoms.split_first() else {
            return vec![binding];
        };
        if atom.relation != relation_name {
            return Vec::new();
        }
        let mut out = Vec::new();
        for tuple in table.tuples() {
            let mut extended = binding.clone();
            let mut ok = true;
            for (term, cell) in atom.terms.iter().zip(&tuple.cells) {
                match term {
                    Term::Const(c) => {
                        if cell != &VValue::Const(c.clone()) {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match extended.get(v) {
                        Some(bound) if bound != cell => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            extended.insert(v.clone(), cell.clone());
                        }
                    },
                }
            }
            if ok {
                out.extend(extend(table, relation_name, rest, extended));
            }
        }
        out
    }

    let bindings = extend(table, relation_name, &query.atoms, BTreeMap::new());
    let mut answers = BTreeSet::new();
    'bindings: for b in bindings {
        // Comparisons: only evaluable between constants; a comparison that
        // touches a variable is not certainly satisfied, so the binding is
        // discarded (sound, possibly incomplete).
        for c in &query.comparisons {
            let left = match &c.left {
                Term::Const(v) => Some(v.clone()),
                Term::Var(x) => match b.get(x) {
                    Some(VValue::Const(v)) => Some(v.clone()),
                    _ => None,
                },
            };
            let right = match &c.right {
                Term::Const(v) => Some(v.clone()),
                Term::Var(x) => match b.get(x) {
                    Some(VValue::Const(v)) => Some(v.clone()),
                    _ => None,
                },
            };
            match (left, right) {
                (Some(l), Some(r)) if c.op.eval(&l, &r) => {}
                _ => continue 'bindings,
            }
        }
        let mut row = Vec::with_capacity(query.head.len());
        let mut ground = true;
        for h in &query.head {
            match b.get(h) {
                Some(VValue::Const(v)) => row.push(v.clone()),
                _ => {
                    ground = false;
                    break;
                }
            }
        }
        if ground {
            answers.insert(row);
        }
    }
    answers
}

/// Statistics contrasting the nucleus with explicit repair enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NucleusStats {
    /// Tuples in the nucleus.
    pub nucleus_tuples: usize,
    /// Variables introduced.
    pub variables: usize,
    /// Number of U-repair choices the same instance admits when every
    /// variable ranges over its group's active values (the size of the
    /// represented world set).
    pub represented_worlds: usize,
}

/// Computes nucleus statistics for an instance under a key FD.
pub fn nucleus_stats(instance: &RelationInstance, fd: &Fd) -> NucleusStats {
    let nucleus = nucleus_for_fd(instance, fd);
    let index = HashIndex::build(instance, fd.lhs());
    let mut worlds = 1usize;
    for (_, group) in index.groups() {
        let distinct: BTreeSet<Vec<Value>> = group
            .iter()
            .map(|&id| instance.tuple(id).expect("live tuple").project(fd.rhs()))
            .collect();
        worlds = worlds.saturating_mul(distinct.len().max(1));
    }
    NucleusStats {
        nucleus_tuples: nucleus.len(),
        variables: nucleus.variables().len(),
        represented_worlds: worlds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::DenialConstraint;
    use dq_cqa::{certain_answers_oracle, single_relation_db};
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "emp",
            [("name", Domain::Text), ("dept", Domain::Text)],
        ))
    }

    fn dirty() -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (n, d) in [("ann", "cs"), ("ann", "ee"), ("bob", "cs")] {
            inst.insert_values([Value::str(n), Value::str(d)]).unwrap();
        }
        inst
    }

    #[test]
    fn nucleus_merges_conflicting_groups_into_variables() {
        let fd = Fd::new(&schema(), &["name"], &["dept"]);
        let nucleus = nucleus_for_fd(&dirty(), &fd);
        assert_eq!(nucleus.len(), 2);
        assert_eq!(nucleus.variables().len(), 1);
        // The conflicted group became (ann, ?v), the clean one stayed ground.
        assert!(nucleus
            .tuples()
            .iter()
            .any(|t| t.cells[0] == VValue::val("ann") && t.cells[1].is_var()));
        assert!(nucleus
            .tuples()
            .iter()
            .any(|t| t.cells[0] == VValue::val("bob") && t.cells[1] == VValue::val("cs")));
    }

    #[test]
    fn nucleus_is_homomorphic_to_every_repair() {
        let fd = Fd::new(&schema(), &["name"], &["dept"]);
        let nucleus = nucleus_for_fd(&dirty(), &fd);
        let constraints = DenialConstraint::from_fd(&fd);
        for repair in dq_repair::enumerate_repairs(&dirty(), &constraints) {
            assert!(nucleus.homomorphic_to(&repair));
        }
    }

    #[test]
    fn nucleus_evaluation_agrees_with_the_certain_answer_oracle() {
        let fd = Fd::new(&schema(), &["name"], &["dept"]);
        let nucleus = nucleus_for_fd(&dirty(), &fd);
        let constraints = DenialConstraint::from_fd(&fd);
        let db = single_relation_db(dirty());
        let queries = vec![
            // q(n) :- emp(n, d)
            ConjunctiveQuery::new(
                vec!["n"],
                vec![Atom::new("emp", vec![Term::var("n"), Term::var("d")])],
                vec![],
            ),
            // q(d) :- emp('ann', d)
            ConjunctiveQuery::new(
                vec!["d"],
                vec![Atom::new("emp", vec![Term::val("ann"), Term::var("d")])],
                vec![],
            ),
            // q(d) :- emp('bob', d)
            ConjunctiveQuery::new(
                vec!["d"],
                vec![Atom::new("emp", vec![Term::val("bob"), Term::var("d")])],
                vec![],
            ),
        ];
        for q in &queries {
            let via_nucleus = evaluate_on_nucleus(&nucleus, "emp", q);
            let via_oracle = certain_answers_oracle(&db, "emp", &constraints, q).unwrap();
            assert_eq!(via_nucleus, via_oracle, "query {:?}", q.head);
        }
    }

    #[test]
    fn stats_expose_the_exponential_world_count() {
        let fd = Fd::new(&schema(), &["name"], &["dept"]);
        let (inst, _) = dq_repair::example_5_1_instance(10);
        let key = Fd::new(inst.schema(), &["A"], &["B"]);
        let stats = nucleus_stats(&inst, &key);
        // The nucleus stays linear (one tuple per key) while the number of
        // represented worlds is 2^10.
        assert_eq!(stats.nucleus_tuples, 10);
        assert_eq!(stats.variables, 10);
        assert_eq!(stats.represented_worlds, 1024);
        // And on the small dirty instance: 2 worlds, 2 tuples, 1 variable.
        let small = nucleus_stats(&dirty(), &fd);
        assert_eq!(small.represented_worlds, 2);
        assert_eq!(small.nucleus_tuples, 2);
    }
}
