//! World-set decompositions (WSDs) for key repairs (Section 5.3, after
//! [4, 5]).
//!
//! A WSD represents a finite set of possible worlds as the product of
//! independent *components*.  For repairs of a relation under a key
//! constraint, the components are exactly the key groups: each component
//! lists the candidate tuples for one key value, a world picks one candidate
//! per component, and the number of worlds is the product of the component
//! sizes — exponentially more succinct than enumerating the repairs (the
//! expressiveness result of [5] that Section 5.3 cites).  The caveat the
//! paper raises — components must be independent, which INDs break — is
//! surfaced by [`WorldSetDecomposition::is_product_faithful`].

use dq_core::Fd;
use dq_relation::{HashIndex, RelationInstance, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One component: the candidate tuples for one key value.
#[derive(Clone, Debug)]
pub struct Component {
    /// The key value shared by the candidates.
    pub key: Vec<Value>,
    /// The candidate tuples (each world keeps exactly one).
    pub candidates: Vec<Tuple>,
}

/// A world-set decomposition of the repairs of one relation under a key.
#[derive(Clone, Debug)]
pub struct WorldSetDecomposition {
    schema: Arc<dq_relation::RelationSchema>,
    components: Vec<Component>,
}

impl WorldSetDecomposition {
    /// Builds the WSD of `instance` under the key FD `X → Y` (candidates are
    /// deduplicated per component).
    pub fn for_key(instance: &RelationInstance, key: &Fd) -> Self {
        let index = HashIndex::build(instance, key.lhs());
        let mut components = Vec::new();
        let mut groups: Vec<(&Vec<Value>, &Vec<dq_relation::TupleId>)> = index.groups().collect();
        groups.sort_by(|a, b| a.0.cmp(b.0));
        for (key_value, group) in groups {
            let mut seen = BTreeSet::new();
            let mut candidates = Vec::new();
            for &id in group {
                let t = instance.tuple(id).expect("live tuple").clone();
                if seen.insert(t.clone()) {
                    candidates.push(t);
                }
            }
            components.push(Component {
                key: key_value.clone(),
                candidates,
            });
        }
        WorldSetDecomposition {
            schema: Arc::clone(instance.schema()),
            components,
        }
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of represented worlds (product of component sizes).
    pub fn world_count(&self) -> u128 {
        self.components
            .iter()
            .map(|c| c.candidates.len() as u128)
            .product()
    }

    /// Size of the representation itself (total number of stored candidate
    /// tuples) — the quantity that stays polynomial while the world count
    /// explodes.
    pub fn size(&self) -> usize {
        self.components.iter().map(|c| c.candidates.len()).sum()
    }

    /// Materializes every world (use only when the world count is small).
    pub fn enumerate_worlds(&self) -> Vec<RelationInstance> {
        let mut worlds = vec![Vec::<Tuple>::new()];
        for component in &self.components {
            let mut next = Vec::with_capacity(worlds.len() * component.candidates.len());
            for prefix in &worlds {
                for candidate in &component.candidates {
                    let mut w = prefix.clone();
                    w.push(candidate.clone());
                    next.push(w);
                }
            }
            worlds = next;
        }
        worlds
            .into_iter()
            .map(|tuples| {
                let mut inst = RelationInstance::new(Arc::clone(&self.schema));
                for t in tuples {
                    inst.insert(t).expect("candidate tuples are well-typed");
                }
                inst
            })
            .collect()
    }

    /// The product construction is faithful (represents exactly the repairs)
    /// only when the components are truly independent; a cross-component
    /// constraint (e.g. an IND from one group's non-key attribute into
    /// another's) breaks that.  This check verifies the structural
    /// prerequisite used in this module: components have disjoint key values.
    pub fn is_product_faithful(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.components.iter().all(|c| seen.insert(c.key.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::DenialConstraint;
    use dq_relation::{Domain, RelationSchema};

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ))
    }

    fn instance(rows: &[(&str, &str)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b) in rows {
            inst.insert_values([Value::str(*a), Value::str(*b)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn wsd_components_follow_key_groups() {
        let inst = instance(&[("k", "1"), ("k", "2"), ("z", "3")]);
        let key = Fd::new(&schema(), &["A"], &["B"]);
        let wsd = WorldSetDecomposition::for_key(&inst, &key);
        assert_eq!(wsd.components().len(), 2);
        assert_eq!(wsd.world_count(), 2);
        assert_eq!(wsd.size(), 3);
        assert!(wsd.is_product_faithful());
    }

    #[test]
    fn enumerated_worlds_are_exactly_the_repairs() {
        let inst = instance(&[("k", "1"), ("k", "2"), ("z", "3")]);
        let key = Fd::new(&schema(), &["A"], &["B"]);
        let wsd = WorldSetDecomposition::for_key(&inst, &key);
        let worlds = wsd.enumerate_worlds();
        let repairs = dq_repair::enumerate_repairs(&inst, &DenialConstraint::from_fd(&key));
        assert_eq!(worlds.len(), repairs.len());
        for w in &worlds {
            assert!(repairs.iter().any(|r| r.same_tuples_as(w)));
        }
    }

    #[test]
    fn succinctness_grows_with_example_5_1() {
        let (inst, _) = dq_repair::example_5_1_instance(20);
        let key = Fd::new(inst.schema(), &["A"], &["B"]);
        let wsd = WorldSetDecomposition::for_key(&inst, &key);
        // Linear representation, exponential world count.
        assert_eq!(wsd.size(), 40);
        assert_eq!(wsd.world_count(), 1u128 << 20);
    }

    #[test]
    fn duplicate_tuples_collapse_within_a_component() {
        let inst = instance(&[("k", "1"), ("k", "1"), ("z", "3")]);
        let key = Fd::new(&schema(), &["A"], &["B"]);
        let wsd = WorldSetDecomposition::for_key(&inst, &key);
        assert_eq!(wsd.world_count(), 1);
        assert_eq!(wsd.size(), 2);
    }
}
