//! Tables with variables (v-tables), Section 5.3.
//!
//! Condensed representations of repairs are built from tableaux whose cells
//! may hold *variables* (labelled nulls) instead of constants — the classic
//! device of the incomplete-information literature ([46, 50]) that the
//! nucleus of [68] reuses.  A v-table represents the set of instances
//! obtained by substituting constants for variables (its *possible worlds*);
//! homomorphisms between v-tables are the comparison tool ("the nucleus is
//! homomorphic to every repair").

use dq_relation::{RelationInstance, RelationSchema, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A cell of a v-table: a constant or a named variable.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VValue {
    /// A constant.
    Const(Value),
    /// A variable (labelled null).
    Var(String),
}

impl VValue {
    /// Constant helper.
    pub fn val(v: impl Into<Value>) -> Self {
        VValue::Const(v.into())
    }

    /// Variable helper.
    pub fn var(name: impl Into<String>) -> Self {
        VValue::Var(name.into())
    }

    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, VValue::Var(_))
    }
}

impl fmt::Display for VValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VValue::Const(v) => write!(f, "{v}"),
            VValue::Var(x) => write!(f, "?{x}"),
        }
    }
}

/// A tuple over constants and variables.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct VTuple {
    /// Cells of the tuple.
    pub cells: Vec<VValue>,
}

impl VTuple {
    /// Creates a v-tuple.
    pub fn new(cells: Vec<VValue>) -> Self {
        VTuple { cells }
    }

    /// Lifts a plain tuple into a v-tuple of constants.
    pub fn from_tuple(t: &Tuple) -> Self {
        VTuple {
            cells: t.values().iter().cloned().map(VValue::Const).collect(),
        }
    }

    /// The variables occurring in the tuple.
    pub fn variables(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter_map(|c| match c {
                VValue::Var(x) => Some(x.as_str()),
                VValue::Const(_) => None,
            })
            .collect()
    }

    /// Is the tuple variable-free?
    pub fn is_ground(&self) -> bool {
        self.cells.iter().all(|c| !c.is_var())
    }

    /// Applies a valuation, producing a plain tuple; `None` if some variable
    /// is missing from the valuation.
    pub fn apply(&self, valuation: &BTreeMap<String, Value>) -> Option<Tuple> {
        let values: Option<Vec<Value>> = self
            .cells
            .iter()
            .map(|c| match c {
                VValue::Const(v) => Some(v.clone()),
                VValue::Var(x) => valuation.get(x).cloned(),
            })
            .collect();
        values.map(Tuple::new)
    }
}

/// A v-table: a relation schema plus v-tuples.
#[derive(Clone, Debug)]
pub struct VTable {
    schema: Arc<RelationSchema>,
    tuples: Vec<VTuple>,
}

impl VTable {
    /// Creates an empty v-table.
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        VTable {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Lifts a plain instance into a (variable-free) v-table.
    pub fn from_instance(instance: &RelationInstance) -> Self {
        VTable {
            schema: Arc::clone(instance.schema()),
            tuples: instance
                .iter()
                .map(|(_, t)| VTuple::from_tuple(t))
                .collect(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[VTuple] {
        &self.tuples
    }

    /// Adds a tuple.
    pub fn push(&mut self, tuple: VTuple) {
        self.tuples.push(tuple);
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All variables of the table.
    pub fn variables(&self) -> Vec<String> {
        let mut vars: Vec<String> = self
            .tuples
            .iter()
            .flat_map(|t| t.variables().into_iter().map(str::to_string))
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Applies a valuation to every tuple, producing a plain instance.
    pub fn instantiate(&self, valuation: &BTreeMap<String, Value>) -> Option<RelationInstance> {
        let mut instance = RelationInstance::new(Arc::clone(&self.schema));
        for t in &self.tuples {
            let tuple = t.apply(valuation)?;
            instance.insert(tuple).ok()?;
        }
        Some(instance)
    }

    /// Is there a homomorphism from `self` to `target` — a mapping of
    /// `self`'s variables to constants (or to themselves) under which every
    /// tuple of `self` becomes a tuple of `target`?  Constants must map to
    /// themselves.  (Exponential backtracking; the tableaux involved are
    /// small.)
    pub fn homomorphic_to(&self, target: &RelationInstance) -> bool {
        fn search(
            tuples: &[VTuple],
            idx: usize,
            target: &RelationInstance,
            assignment: &mut BTreeMap<String, Value>,
        ) -> bool {
            if idx == tuples.len() {
                return true;
            }
            let vt = &tuples[idx];
            for (_, candidate) in target.iter() {
                let mut local = assignment.clone();
                let mut ok = true;
                for (cell, value) in vt.cells.iter().zip(candidate.values()) {
                    match cell {
                        VValue::Const(c) => {
                            if c != value {
                                ok = false;
                                break;
                            }
                        }
                        VValue::Var(x) => match local.get(x) {
                            Some(bound) if bound != value => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                local.insert(x.clone(), value.clone());
                            }
                        },
                    }
                }
                if ok && search(tuples, idx + 1, target, &mut local) {
                    *assignment = local;
                    return true;
                }
            }
            false
        }
        let mut assignment = BTreeMap::new();
        search(&self.tuples, 0, target, &mut assignment)
    }

    /// Subsumption of tableaux (used to capture U-repair minimality in [68]):
    /// `self` subsumes `other` when there is a homomorphism from `self` into
    /// every instance `other` can denote — approximated here by a
    /// variable-respecting embedding of `self`'s tuples into `other`'s.
    pub fn subsumes(&self, other: &VTable) -> bool {
        self.tuples.iter().all(|t| {
            other.tuples.iter().any(|o| {
                t.cells.iter().zip(&o.cells).all(|(a, b)| match (a, b) {
                    (VValue::Const(x), VValue::Const(y)) => x == y,
                    (VValue::Var(_), _) => true,
                    (VValue::Const(_), VValue::Var(_)) => false,
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::Domain;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ))
    }

    fn instance(rows: &[(&str, &str)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b) in rows {
            inst.insert_values([Value::str(*a), Value::str(*b)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn instantiation_substitutes_variables() {
        let mut vt = VTable::new(schema());
        vt.push(VTuple::new(vec![VValue::val("k"), VValue::var("x")]));
        let mut valuation = BTreeMap::new();
        valuation.insert("x".to_string(), Value::str("1"));
        let inst = vt.instantiate(&valuation).unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.iter().next().unwrap().1.get(1), &Value::str("1"));
        // Missing variable: no instantiation.
        assert!(vt.instantiate(&BTreeMap::new()).is_none());
    }

    #[test]
    fn homomorphism_into_an_instance() {
        let mut vt = VTable::new(schema());
        vt.push(VTuple::new(vec![VValue::val("k"), VValue::var("x")]));
        vt.push(VTuple::new(vec![VValue::val("z"), VValue::var("y")]));
        let target = instance(&[("k", "1"), ("z", "3")]);
        assert!(vt.homomorphic_to(&target));
        // Constants must be preserved.
        let target2 = instance(&[("w", "1"), ("z", "3")]);
        assert!(!vt.homomorphic_to(&target2));
        // A shared variable must map consistently.
        let mut vt2 = VTable::new(schema());
        vt2.push(VTuple::new(vec![VValue::val("k"), VValue::var("x")]));
        vt2.push(VTuple::new(vec![VValue::val("z"), VValue::var("x")]));
        let same = instance(&[("k", "1"), ("z", "1")]);
        let different = instance(&[("k", "1"), ("z", "3")]);
        assert!(vt2.homomorphic_to(&same));
        assert!(!vt2.homomorphic_to(&different));
    }

    #[test]
    fn ground_tables_round_trip_from_instances() {
        let inst = instance(&[("k", "1"), ("z", "3")]);
        let vt = VTable::from_instance(&inst);
        assert_eq!(vt.len(), 2);
        assert!(vt.tuples().iter().all(VTuple::is_ground));
        assert!(vt.variables().is_empty());
        assert!(vt.homomorphic_to(&inst));
    }

    #[test]
    fn subsumption_between_tableaux() {
        let mut general = VTable::new(schema());
        general.push(VTuple::new(vec![VValue::val("k"), VValue::var("x")]));
        let mut specific = VTable::new(schema());
        specific.push(VTuple::new(vec![VValue::val("k"), VValue::val("1")]));
        assert!(general.subsumes(&specific));
        assert!(!specific.subsumes(&general));
    }

    #[test]
    fn display_of_vvalues() {
        assert_eq!(VValue::val("a").to_string(), "a");
        assert_eq!(VValue::var("x").to_string(), "?x");
    }
}
