//! Conditional tables (c-tables): v-tables whose tuples carry local
//! conditions.
//!
//! Section 5.3 relates condensed representations of repairs to the
//! representation systems of incomplete information [46, 50]: v-tables,
//! c-tables and world-set decompositions.  A c-table attaches to every tuple
//! a *local condition* — a conjunction of (dis)equalities over variables —
//! and represents the set of worlds obtained by ranging the variables over
//! their domains and keeping the tuples whose condition is satisfied.  This
//! is strictly more expressive than v-tables (it can drop tuples, not just
//! rename values), and it is exactly what is needed to represent the
//! *subset* repairs of a key: one selector variable per key group, one
//! conditioned tuple per candidate.

use crate::vtable::{VTuple, VValue};
use dq_core::fd::Fd;
use dq_relation::{HashIndex, RelationInstance, RelationSchema, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A comparison inside a local condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondOp {
    /// The two sides must be equal.
    Eq,
    /// The two sides must differ.
    Neq,
}

/// One conjunct of a local condition: `variable op term`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CondAtom {
    /// The constrained variable.
    pub var: String,
    /// Equality or disequality.
    pub op: CondOp,
    /// The other side: a constant or another variable.
    pub term: VValue,
}

impl CondAtom {
    /// `var = constant` helper.
    pub fn eq(var: impl Into<String>, value: impl Into<Value>) -> Self {
        CondAtom {
            var: var.into(),
            op: CondOp::Eq,
            term: VValue::Const(value.into()),
        }
    }

    /// `var ≠ constant` helper.
    pub fn neq(var: impl Into<String>, value: impl Into<Value>) -> Self {
        CondAtom {
            var: var.into(),
            op: CondOp::Neq,
            term: VValue::Const(value.into()),
        }
    }

    /// Evaluates the atom under a valuation; `None` when a variable the atom
    /// mentions is unbound.
    pub fn holds(&self, valuation: &BTreeMap<String, Value>) -> Option<bool> {
        let left = valuation.get(&self.var)?;
        let right = match &self.term {
            VValue::Const(v) => v,
            VValue::Var(x) => valuation.get(x)?,
        };
        Some(match self.op {
            CondOp::Eq => left == right,
            CondOp::Neq => left != right,
        })
    }
}

/// A conditioned tuple: the tuple appears in a world exactly when its local
/// condition holds under the world's valuation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CTuple {
    /// The (possibly variable-carrying) tuple.
    pub tuple: VTuple,
    /// The local condition, a conjunction of atoms (empty = always present).
    pub condition: Vec<CondAtom>,
}

impl CTuple {
    /// An unconditional, ground tuple.
    pub fn ground(values: Vec<Value>) -> Self {
        CTuple {
            tuple: VTuple::new(values.into_iter().map(VValue::Const).collect()),
            condition: Vec::new(),
        }
    }

    /// Whether the tuple is selected by the valuation.
    pub fn selected(&self, valuation: &BTreeMap<String, Value>) -> bool {
        self.condition
            .iter()
            .all(|atom| atom.holds(valuation).unwrap_or(false))
    }
}

/// A conditional table: schema, conditioned tuples and the (finite) domains
/// of the variables occurring in conditions and cells.
#[derive(Clone, Debug)]
pub struct CTable {
    schema: Arc<RelationSchema>,
    tuples: Vec<CTuple>,
    domains: BTreeMap<String, Vec<Value>>,
}

impl CTable {
    /// Creates an empty c-table.
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        CTable {
            schema,
            tuples: Vec::new(),
            domains: BTreeMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The conditioned tuples.
    pub fn tuples(&self) -> &[CTuple] {
        &self.tuples
    }

    /// Adds a conditioned tuple.
    pub fn push(&mut self, tuple: CTuple) {
        self.tuples.push(tuple);
    }

    /// Declares the finite domain of a variable.
    pub fn set_domain(&mut self, var: impl Into<String>, values: Vec<Value>) {
        self.domains.insert(var.into(), values);
    }

    /// The declared variable domains.
    pub fn domains(&self) -> &BTreeMap<String, Vec<Value>> {
        &self.domains
    }

    /// Number of represented worlds (product of domain sizes; 1 when there
    /// are no variables).
    pub fn world_count(&self) -> u128 {
        self.domains
            .values()
            .map(|d| d.len().max(1) as u128)
            .product()
    }

    /// Size of the representation itself (tuples plus condition atoms) — the
    /// quantity that stays polynomial while [`CTable::world_count`] explodes.
    pub fn size(&self) -> usize {
        self.tuples.len() + self.tuples.iter().map(|t| t.condition.len()).sum::<usize>()
    }

    /// Builds the c-table representing all **subset repairs of a key**: for
    /// every key group with `k` distinct candidate tuples a selector variable
    /// with domain `{0, …, k−1}` is introduced, and candidate `i` carries the
    /// condition `selector = i`.  Groups with a single candidate stay
    /// unconditional.
    pub fn from_key_repairs(instance: &RelationInstance, key: &Fd) -> Self {
        let mut table = CTable::new(Arc::clone(instance.schema()));
        let index = HashIndex::build(instance, key.lhs());
        let mut groups: Vec<_> = index.groups().collect();
        groups.sort_by(|a, b| a.0.cmp(b.0));
        for (gi, (_, ids)) in groups.into_iter().enumerate() {
            // Distinct candidates only: duplicates denote the same repair.
            let mut candidates = Vec::new();
            let mut seen = BTreeSet::new();
            for &id in ids {
                let t = instance.tuple(id).expect("live tuple").clone();
                if seen.insert(t.clone()) {
                    candidates.push(t);
                }
            }
            if candidates.len() == 1 {
                table.push(CTuple::ground(candidates[0].values().to_vec()));
                continue;
            }
            let var = format!("g{gi}");
            table.set_domain(&var, (0..candidates.len() as i64).map(Value::int).collect());
            for (ci, candidate) in candidates.into_iter().enumerate() {
                table.push(CTuple {
                    tuple: VTuple::new(
                        candidate
                            .values()
                            .iter()
                            .cloned()
                            .map(VValue::Const)
                            .collect(),
                    ),
                    condition: vec![CondAtom::eq(var.clone(), ci as i64)],
                });
            }
        }
        table
    }

    /// All valuations of the declared variables (Cartesian product of the
    /// domains).  Exponential; intended for oracle-sized inputs.
    pub fn valuations(&self) -> Vec<BTreeMap<String, Value>> {
        let vars: Vec<(&String, &Vec<Value>)> = self.domains.iter().collect();
        let mut out = vec![BTreeMap::new()];
        for (var, domain) in vars {
            let mut next = Vec::with_capacity(out.len() * domain.len().max(1));
            for valuation in &out {
                for value in domain {
                    let mut v = valuation.clone();
                    v.insert(var.clone(), value.clone());
                    next.push(v);
                }
            }
            if !next.is_empty() {
                out = next;
            }
        }
        out
    }

    /// Materialises the world selected by a valuation.
    pub fn world(&self, valuation: &BTreeMap<String, Value>) -> RelationInstance {
        let mut instance = RelationInstance::new(Arc::clone(&self.schema));
        for ctuple in &self.tuples {
            if !ctuple.selected(valuation) {
                continue;
            }
            if let Some(tuple) = ctuple.tuple.apply(valuation) {
                instance
                    .insert(tuple)
                    .expect("c-table tuples conform to the schema");
            }
        }
        instance
    }

    /// Enumerates every represented world.
    pub fn worlds(&self) -> Vec<RelationInstance> {
        self.valuations().iter().map(|v| self.world(v)).collect()
    }

    /// Certain tuples: those present in every world.  (The certain answers
    /// to the identity query; projections can be applied afterwards.)
    pub fn certain_tuples(&self) -> BTreeSet<Vec<Value>> {
        let mut worlds = self.worlds().into_iter();
        let Some(first) = worlds.next() else {
            return BTreeSet::new();
        };
        let mut certain: BTreeSet<Vec<Value>> =
            first.iter().map(|(_, t)| t.values().to_vec()).collect();
        for world in worlds {
            let present: BTreeSet<Vec<Value>> =
                world.iter().map(|(_, t)| t.values().to_vec()).collect();
            certain = certain.intersection(&present).cloned().collect();
        }
        certain
    }

    /// Possible tuples: those present in at least one world.
    pub fn possible_tuples(&self) -> BTreeSet<Vec<Value>> {
        self.worlds()
            .iter()
            .flat_map(|w| {
                w.iter()
                    .map(|(_, t)| t.values().to_vec())
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsd::WorldSetDecomposition;
    use dq_relation::Domain;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            [("a", Domain::Text), ("b", Domain::Int)],
        ))
    }

    fn key() -> Fd {
        Fd::new(&schema(), &["a"], &["b"])
    }

    /// Example 5.1-style instance: n key groups with two candidates each.
    fn conflicted(n: usize) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for i in 0..n {
            inst.insert_values([Value::str(format!("k{i}")), Value::int(1)])
                .unwrap();
            inst.insert_values([Value::str(format!("k{i}")), Value::int(2)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn ground_ctable_has_one_world() {
        let mut inst = RelationInstance::new(schema());
        inst.insert_values([Value::str("x"), Value::int(1)])
            .unwrap();
        let table = CTable::from_key_repairs(&inst, &key());
        assert_eq!(table.world_count(), 1);
        let worlds = table.worlds();
        assert_eq!(worlds.len(), 1);
        assert!(worlds[0].same_tuples_as(&inst));
    }

    #[test]
    fn key_repairs_world_count_matches_wsd() {
        let inst = conflicted(4);
        let table = CTable::from_key_repairs(&inst, &key());
        let wsd = WorldSetDecomposition::for_key(&inst, &key());
        assert_eq!(table.world_count(), wsd.world_count());
        assert_eq!(table.world_count(), 16);
    }

    #[test]
    fn representation_is_polynomial_while_worlds_are_exponential() {
        let inst = conflicted(10);
        let table = CTable::from_key_repairs(&inst, &key());
        assert_eq!(table.world_count(), 1024);
        assert!(
            table.size() <= 2 * inst.len(),
            "c-table must stay linear in the instance"
        );
    }

    #[test]
    fn every_world_satisfies_the_key() {
        let inst = conflicted(3);
        let table = CTable::from_key_repairs(&inst, &key());
        for world in table.worlds() {
            assert!(
                key().holds_on(&world),
                "every represented world is a repair"
            );
            assert_eq!(world.len(), 3, "one tuple per key group");
        }
    }

    #[test]
    fn certain_and_possible_tuples() {
        let mut inst = conflicted(2);
        inst.insert_values([Value::str("stable"), Value::int(9)])
            .unwrap();
        let table = CTable::from_key_repairs(&inst, &key());
        let certain = table.certain_tuples();
        assert_eq!(certain.len(), 1, "only the conflict-free tuple is certain");
        assert!(certain.contains(&vec![Value::str("stable"), Value::int(9)]));
        let possible = table.possible_tuples();
        assert_eq!(possible.len(), 5, "every candidate appears in some world");
    }

    #[test]
    fn condition_atoms_evaluate_against_valuations() {
        let mut valuation = BTreeMap::new();
        valuation.insert("x".to_string(), Value::int(1));
        assert_eq!(CondAtom::eq("x", 1i64).holds(&valuation), Some(true));
        assert_eq!(CondAtom::neq("x", 1i64).holds(&valuation), Some(false));
        assert_eq!(CondAtom::eq("y", 1i64).holds(&valuation), None);
        let var_atom = CondAtom {
            var: "x".into(),
            op: CondOp::Eq,
            term: VValue::var("y"),
        };
        assert_eq!(var_atom.holds(&valuation), None);
        valuation.insert("y".to_string(), Value::int(1));
        assert_eq!(var_atom.holds(&valuation), Some(true));
    }

    #[test]
    fn duplicate_candidates_collapse() {
        let mut inst = RelationInstance::new(schema());
        inst.insert_values([Value::str("k"), Value::int(1)])
            .unwrap();
        inst.insert_values([Value::str("k"), Value::int(1)])
            .unwrap();
        let table = CTable::from_key_repairs(&inst, &key());
        assert_eq!(table.world_count(), 1);
        assert_eq!(table.tuples().len(), 1);
    }
}
