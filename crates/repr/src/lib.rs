//! # dq-repr
//!
//! Condensed representations of all repairs (Section 5.3 of Fan, PODS 2008).
//!
//! * [`vtable`] — tableaux with variables (v-tables), valuations,
//!   homomorphisms and subsumption;
//! * [`nucleus`] — the nucleus of an instance under an FD/key: a single
//!   v-table homomorphic to every U-repair, with naive conjunctive-query
//!   evaluation returning consistent answers;
//! * [`wsd`] — world-set decompositions of key repairs: a product
//!   representation that is exponentially more succinct than enumerating the
//!   repairs;
//! * [`ctable`] — conditional tables: v-tables with local conditions, the
//!   strong representation system of [46, 50] instantiated here to represent
//!   all subset repairs of a key.

pub mod ctable;
pub mod nucleus;
pub mod vtable;
pub mod wsd;

/// Frequently used items.
pub mod prelude {
    pub use crate::ctable::{CTable, CTuple, CondAtom, CondOp};
    pub use crate::nucleus::{evaluate_on_nucleus, nucleus_for_fd, nucleus_stats, NucleusStats};
    pub use crate::vtable::{VTable, VTuple, VValue};
    pub use crate::wsd::{Component, WorldSetDecomposition};
}

pub use prelude::*;
