//! # dq-bench
//!
//! Shared workload construction and measurement routines used by the
//! Criterion benches (one per table/figure of the paper) and by the
//! `harness` binary that prints the paper-style result tables recorded in
//! `EXPERIMENTS.md`.

use dq_core::prelude::*;
use dq_gen::prelude::*;
use dq_match::prelude::*;
use dq_relation::{
    Atom, ConjunctiveQuery, Database, Domain, RelationInstance, RelationSchema, Term, Value,
};
use std::sync::Arc;

/// Sizes used for the scaling sweeps (kept modest so `cargo bench` finishes
/// in minutes; the harness accepts larger sizes).
pub const DETECTION_SIZES: [usize; 3] = [1_000, 5_000, 20_000];

/// Builds the customer workload of the Fig. 1/2 experiments.
pub fn customer_workload(tuples: usize, error_rate: f64) -> CustomerWorkload {
    generate_customers(&CustomerConfig {
        tuples,
        error_rate,
        seed: 42,
        ..Default::default()
    })
}

/// Builds a customer workload whose `(AC, city)` pool scales with the
/// instance, bounding the `[CC, AC]` group sizes: one synthetic city pair
/// per ~2000 tuples (never fewer than the paper's three).  Used by the
/// large-instance detection sweeps, where the paper's fixed city lists would
/// make the ϕ3 pair-violation count quadratic in the instance size.
pub fn customer_workload_scaled(tuples: usize, error_rate: f64) -> CustomerWorkload {
    generate_customers(&CustomerConfig {
        tuples,
        error_rate,
        seed: 42,
        cities_per_country: (tuples / 2_000).max(3),
    })
}

/// Builds the order/book/CD workload of the Fig. 3/4 experiments.
pub fn order_workload(orders: usize, violation_rate: f64) -> OrderWorkload {
    generate_orders(&OrderConfig {
        orders,
        violation_rate,
        seed: 42,
    })
}

/// Builds the card/billing workload of the Section 3 experiments.
pub fn card_workload(holders: usize) -> CardWorkload {
    generate_cards(&CardConfig {
        holders,
        billing_rate: 0.8,
        abbreviate_rate: 0.4,
        phone_change_rate: 0.4,
        email_change_rate: 0.4,
        distractors: holders / 10,
        seed: 42,
    })
}

/// A CFD set of `n` normalized dependencies over a `width`-attribute schema,
/// with `finite_fraction` of the attributes drawn from a two-element domain —
/// the workload for the Table 1 consistency/implication sweeps.
pub fn synthetic_cfd_set(n: usize, width: usize, finite_fraction: f64) -> Vec<Cfd> {
    let finite_attrs = ((width as f64) * finite_fraction).round() as usize;
    let attrs: Vec<(String, Domain)> = (0..width)
        .map(|i| {
            let name = format!("A{i}");
            if i < finite_attrs {
                (name, Domain::Bool)
            } else {
                (name, Domain::Text)
            }
        })
        .collect();
    let schema = Arc::new(RelationSchema::new("synthetic", attrs));
    let mut cfds = Vec::with_capacity(n);
    for i in 0..n {
        let a = i % width;
        let b = (i + 1) % width;
        let lhs_name = schema.attr_name(a).to_string();
        let rhs_name = schema.attr_name(b).to_string();
        let lhs_pattern = if schema.domain(a).is_finite() {
            cst((i % 2) == 0)
        } else if i % 3 == 0 {
            cst(format!("c{}", i % 5))
        } else {
            wild()
        };
        let rhs_pattern = if schema.domain(b).is_finite() {
            cst((i % 2) == 1)
        } else if i % 4 == 0 {
            cst(format!("c{}", i % 5))
        } else {
            wild()
        };
        cfds.push(
            Cfd::new(
                &schema,
                &[lhs_name.as_str()],
                &[rhs_name.as_str()],
                vec![PatternTuple::new(vec![lhs_pattern], vec![rhs_pattern])],
            )
            .expect("synthetic CFD is well-formed"),
        );
    }
    cfds
}

/// A synthetic FD set of size `n` over a `width`-attribute schema (Table 1
/// baseline rows).
pub fn synthetic_fd_set(n: usize, width: usize) -> Vec<Fd> {
    let schema = Arc::new(RelationSchema::new(
        "synthetic",
        (0..width).map(|i| (format!("A{i}"), Domain::Text)),
    ));
    (0..n)
        .map(|i| Fd::from_indices(&schema, vec![i % width], vec![(i + 1) % width]))
        .collect()
}

/// A chain of `n` CINDs `R_0 ⊆ R_1 ⊆ ... ⊆ R_n` with pattern constants, used
/// to exercise the chase-based implication (Table 1 CIND row).
pub fn cind_chain(n: usize) -> (Vec<Cind>, Cind) {
    let schemas: Vec<Arc<RelationSchema>> = (0..=n)
        .map(|i| {
            Arc::new(RelationSchema::new(
                format!("R{i}"),
                [("k", Domain::Text), ("tag", Domain::Text)],
            ))
        })
        .collect();
    let mut chain = Vec::with_capacity(n);
    for i in 0..n {
        chain.push(
            Cind::new(
                &schemas[i],
                &["k"],
                &["tag"],
                &schemas[i + 1],
                &["k"],
                &["tag"],
                vec![CindPattern::new(
                    vec![Value::str("go")],
                    vec![Value::str("go")],
                )],
            )
            .expect("chain CIND is well-formed"),
        );
    }
    let target = Cind::new(
        &schemas[0],
        &["k"],
        &["tag"],
        &schemas[n],
        &["k"],
        &["tag"],
        vec![CindPattern::new(
            vec![Value::str("go")],
            vec![Value::str("go")],
        )],
    )
    .expect("target CIND is well-formed");
    (chain, target)
}

/// The Example 4.2 propagation setting: three regional sources, their CFDs,
/// and the integration view.
pub fn propagation_setting() -> (
    dq_relation::DatabaseSchema,
    std::collections::BTreeMap<String, Vec<Cfd>>,
    dq_relation::algebra::View,
    Arc<RelationSchema>,
) {
    use dq_relation::algebra::{Predicate, View};
    let mut schema = dq_relation::DatabaseSchema::new();
    let mut sigma = std::collections::BTreeMap::new();
    for name in ["R1", "R2", "R3"] {
        let s = Arc::new(RelationSchema::new(
            name,
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("zip", Domain::Text),
                ("street", Domain::Text),
                ("city", Domain::Text),
            ],
        ));
        schema.add((*s).clone());
        let mut cfds = vec![Cfd::from_fd(&Fd::new(&s, &["AC"], &["city"]))];
        if name == "R1" {
            cfds.push(Cfd::from_fd(&Fd::new(&s, &["zip"], &["street"])));
        }
        sigma.insert(name.to_string(), cfds);
    }
    let view = View::base("R1")
        .select(Predicate::EqConst(0, Value::int(44)))
        .union(View::base("R2").select(Predicate::EqConst(0, Value::int(1))))
        .union(View::base("R3").select(Predicate::EqConst(0, Value::int(31))));
    let view_schema = Arc::new(
        view.output_schema(&schema, "R")
            .expect("the integration view is well-formed"),
    );
    (schema, sigma, view, view_schema)
}

/// A synthetic MD set over the card/billing schemas: `n` rules recycling the
/// paper's φ1–φ4 shapes, used for the Theorem 4.8 implication sweep, plus the
/// rck1 target.
pub fn synthetic_md_set(n: usize) -> (Vec<MatchingDependency>, MatchingDependency) {
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let base = example_3_1_mds(&card, &billing);
    let mut sigma = Vec::with_capacity(n);
    for i in 0..n {
        sigma.push(base[i % base.len()].clone());
    }
    let target = MatchingDependency::new(
        &card,
        &billing,
        vec![
            ("email", "email", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
        ],
        &dq_match::paper::YC,
        &dq_match::paper::YB,
        MatchOp::Matching,
    )
    .expect("target MD is well-formed");
    (sigma, target)
}

/// The key-violating account instance used by the CQA experiments: `groups`
/// key groups, a fraction `conflict_rate` of which carry two conflicting
/// tuples.
pub fn cqa_instance(
    groups: usize,
    conflict_rate: f64,
) -> (Database, Vec<DenialConstraint>, ConjunctiveQuery) {
    let schema = Arc::new(RelationSchema::new(
        "account",
        [
            ("acct", Domain::Text),
            ("owner", Domain::Text),
            ("tier", Domain::Text),
        ],
    ));
    let mut instance = RelationInstance::new(Arc::clone(&schema));
    for i in 0..groups {
        instance
            .insert_values([
                Value::str(format!("A{i}")),
                Value::str(format!("owner{i}")),
                Value::str("gold"),
            ])
            .expect("tuple fits the schema");
        if (i as f64) < (groups as f64) * conflict_rate {
            instance
                .insert_values([
                    Value::str(format!("A{i}")),
                    Value::str(format!("owner{i}")),
                    Value::str("silver"),
                ])
                .expect("tuple fits the schema");
        }
    }
    let fd = Fd::new(&schema, &["acct"], &["owner", "tier"]);
    let constraints = DenialConstraint::from_fd(&fd);
    let mut db = Database::new();
    db.add_relation(instance);
    let query = ConjunctiveQuery::new(
        vec!["a", "o"],
        vec![Atom::new(
            "account",
            vec![Term::var("a"), Term::var("o"), Term::var("t")],
        )],
        vec![],
    );
    (db, constraints, query)
}

/// Builds the master-data workload of the Section 5.1 master-data remark
/// (clean reference relation + dirty source with name variants and corrupted
/// address cells).
pub fn master_workload(entities: usize, error_rate: f64) -> MasterWorkload {
    generate_master_workload(&MasterConfig {
        entities,
        error_rate,
        name_variation_rate: 0.4,
        seed: 42,
    })
}

/// The matching rule used to identify dirty customer records with master
/// records: same phone number and similar name.
pub fn master_rules() -> Vec<RelativeKey> {
    let schema = dq_gen::customer::customer_schema();
    vec![RelativeKey::new(
        &schema,
        &schema,
        vec![
            ("phn", "phn", SimilarityOp::Equality),
            ("name", "name", SimilarityOp::edit(12)),
        ],
        &["street", "city", "zip"],
        &["street", "city", "zip"],
    )
    .expect("well-formed relative key")]
}

/// The address attributes the master data is trusted for.
pub fn master_fusion_attrs() -> Vec<usize> {
    let s = dq_gen::customer::customer_schema();
    vec![s.attr("street"), s.attr("city"), s.attr("zip")]
}

/// Formats a duration in microseconds.
pub fn micros(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::implication::cind_implies_chase;
    use dq_core::propagation::propagates;

    #[test]
    fn synthetic_cfd_sets_have_requested_shape() {
        let cfds = synthetic_cfd_set(40, 8, 0.25);
        assert_eq!(cfds.len(), 40);
        assert!(cfds[0].schema().has_finite_domain_attribute());
        let no_finite = synthetic_cfd_set(40, 8, 0.0);
        assert!(!no_finite[0].schema().has_finite_domain_attribute());
    }

    #[test]
    fn cind_chain_is_implied_transitively() {
        let (chain, target) = cind_chain(4);
        assert!(cind_implies_chase(&chain, &target, 10_000));
        let (short_chain, target) = cind_chain(3);
        assert!(!cind_implies_chase(&short_chain[..2], &target, 10_000));
    }

    #[test]
    fn cqa_instance_shape() {
        let (db, constraints, query) = cqa_instance(20, 0.25);
        assert_eq!(db.relation("account").unwrap().len(), 25);
        assert!(!constraints.is_empty());
        assert_eq!(query.head.len(), 2);
    }

    #[test]
    fn propagation_setting_reproduces_example_4_2() {
        let (schema, sigma, view, view_schema) = propagation_setting();
        let f3 = Cfd::from_fd(&Fd::new(&view_schema, &["zip"], &["street"]));
        assert!(!propagates(&schema, &sigma, &view, &f3).unwrap().holds());
    }
}
