//! Experiment harness: regenerates, in textual form, every table and figure
//! of the paper (and the measurable claims around them), printing one block
//! per experiment.  `EXPERIMENTS.md` records a run of this binary.
//!
//! Run with `cargo run --release -p dq-bench --bin harness`.
//!
//! `--detection-bench` instead runs only the naive-vs-engine CFD detection
//! comparison and writes the measurements to `BENCH_detection.json` in the
//! working directory (the perf trajectory artifact tracked across PRs);
//! add `--smoke` for the CI-sized variant (small instance, artifact not
//! overwritten — the identity asserts between naive, cold and warm paths
//! still run).
//!
//! `--discovery-bench` runs the naive-vs-interned partition comparison for
//! FD and CFD discovery and writes `BENCH_discovery.json`; add `--smoke`
//! for the CI-sized variant (small instance, artifact not overwritten —
//! the point is to execute both code paths and assert identical output, so
//! a perf-path regression that compiles the fast path out fails loudly).
//!
//! `--ind-bench` runs the naive-vs-interned comparison for IND discovery
//! and CIND condition mining over the order/book/CD workload and writes
//! `BENCH_ind.json`; `--smoke` works the same way.
//!
//! `--delta-bench` replays a mixed append+edit stream against two identical
//! working copies — one re-detecting CFD violations from scratch every
//! round, one patching the pooled indexes and maintaining the previous
//! round's report — asserts the reports identical each round, and writes
//! `BENCH_delta.json`; `--smoke` works the same way.
//!
//! `--matching-bench` runs the naive-vs-interned entity matching comparison
//! on the card/billing workload — rule matching (given rules and derived
//! RCKs), fuzzy matching without an equality premise, MD violation
//! checking and rule learning — and writes `BENCH_matching.json`; `--smoke`
//! works the same way (every row still asserts the engine's matches,
//! per-rule hit counts, violation vectors and learned rules byte-identical
//! to the naive paths wherever those ran).
//!
//! `--analysis-bench` runs the static-analysis comparison: the seed's
//! blind-backtracking consistency/implication procedures vs. the
//! propagation-guided solver on finite-domain gadget families of growing
//! size, the rule-lint pass rendered on a deliberately messy rule set, and
//! the detection wall-clock saved by minimal-cover pruning of mined rules
//! at 1M tuples; writes `BENCH_analysis.json` (every row asserts the solver
//! verdict identical to the naive reference); `--smoke` works the same way.
//!
//! `--scale-bench` exercises the out-of-core columnar shard path: it
//! persists the customer workload with `ColumnarStore::save_to` (split so
//! the second save runs incrementally, spilling dictionary overlays),
//! re-opens it with `open_mmap`, and asserts CFD detection and FD
//! discovery over the mapped shards byte-identical to the in-RAM engine —
//! then streams 10M tuples to disk through `RelationWriter` in 1M-chunk
//! generations (no full instance is ever materialized) and runs detection
//! and discovery through the mmap path, recording the peak resident set
//! (`VmHWM`) per stage into `BENCH_scale.json`; `--smoke` runs the
//! identity asserts CI-sized (small shards forcing a multi-shard layout)
//! and writes no artifact.
//!
//! `--profile` turns the [`dq_obs`] recorder on.  Combined with a bench
//! flag it prints a span-tree flame summary per result row and embeds each
//! row's drained `MetricsSnapshot` into the artifact (`"profile"` field);
//! alone it runs a compact composite detection/discovery/repair workload
//! and prints the span tree plus the full snapshot JSON.  Instrumentation
//! only observes — every identity assert holds with profiling on.

use dq_bench::*;
use dq_core::prelude::*;
use dq_cqa::prelude::*;
use dq_gen::prelude::*;
use dq_match::prelude::*;
use dq_relation::{Atom, CellRef, ConjunctiveQuery, HashIndex, InternedIndex, Term};
use dq_repair::prelude::*;
use dq_repr::prelude::*;
use std::time::Instant;

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let profile = std::env::args().any(|a| a == "--profile");
    if profile {
        dq_obs::set_enabled(true);
    }
    if std::env::args().any(|a| a == "--detection-bench") {
        detection_bench(smoke, profile);
        return;
    }
    if std::env::args().any(|a| a == "--discovery-bench") {
        discovery_bench(smoke, profile);
        return;
    }
    if std::env::args().any(|a| a == "--ind-bench") {
        ind_bench(smoke, profile);
        return;
    }
    if std::env::args().any(|a| a == "--delta-bench") {
        delta_bench(smoke, profile);
        return;
    }
    if std::env::args().any(|a| a == "--matching-bench") {
        matching_bench(smoke, profile);
        return;
    }
    if std::env::args().any(|a| a == "--analysis-bench") {
        analysis_bench(smoke, profile);
        return;
    }
    if std::env::args().any(|a| a == "--scale-bench") {
        scale_bench(smoke, profile);
        return;
    }
    if profile {
        profile_mode();
        return;
    }
    figures_1_and_2();
    section_1_discovery();
    figures_3_and_4();
    section_2_3_ecfds();
    examples_3x_matching();
    section_3_1_rule_learning();
    example_4_1_and_table1_consistency();
    table1_implication();
    example_4_2_propagation();
    theorem_4_8_mds();
    section_5_1_repair();
    section_5_1_cind_insertions();
    section_5_1_master_data();
    example_5_1();
    section_5_2_cqa();
    section_5_2_aggregates();
    section_5_3_representations();
    section_5_3_ctables();
}

/// Times one invocation of `f`, returning (elapsed ms, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// Median elapsed ms over `reps` invocations of `f` (single-shot timings on
/// a shared box are too noisy for a tracked artifact), plus one result.
fn timed_median<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (first_ms, result) = timed(&mut f);
    let mut samples = vec![first_ms];
    for _ in 1..reps.max(1) {
        samples.push(timed(&mut f).0);
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], result)
}

/// Drains the recorder into a [`dq_obs::MetricsSnapshot`] (pouring any
/// extra [`dq_obs::MetricSource`]s in under their prefixes), prints the
/// span-tree flame summary under `label`, resets the recorder for the next
/// row, and returns a `, "profile": {…}` fragment for the row's JSON.
/// Returns the empty string when not profiling, keeping the artifact
/// byte-identical to pre-profile runs.
fn profile_field(
    profile: bool,
    label: &str,
    sources: &[(&str, &dyn dq_obs::MetricSource)],
) -> String {
    if !profile {
        return String::new();
    }
    let mut snap = dq_obs::recorder().snapshot();
    for (prefix, source) in sources {
        snap.ingest(prefix, *source);
    }
    dq_obs::recorder().reset();
    println!("\n  profile [{label}] — span tree (total ms · calls · ms/call · % of parent):");
    for line in snap.render_span_tree().lines() {
        println!("    {line}");
    }
    format!(", \"profile\": {}", snap.to_json())
}

/// Naive vs. engine CFD detection on the Fig. 1 customer workload, written
/// to `BENCH_detection.json`.
///
/// Two dependency sets per size — the three paper CFDs (three distinct
/// LHSs) and their normalized fragments (eleven CFDs, still three distinct
/// LHSs, the regime index sharing targets) — and three detection paths each:
/// * `naive` — `detect_cfd_violations`, one fresh index per CFD per call;
/// * `engine_cold` — `DetectionEngine` with an empty pool: one *interned*
///   index build per distinct LHS over the columnar snapshot, parallel
///   fan-out across dependencies;
/// * `engine_warm` — the same engine called again on the unchanged
///   instance: the pool serves every index, nothing is rebuilt.
///
/// Each row also records the storage-subsystem footprint: per-index resident
/// bytes of the `Vec<Value>`-keyed baseline vs. the interned index (summed
/// over the set's distinct LHSs, with their ratio) and the columnar store's
/// dictionary stats (distinct values, heap bytes, bytes saved vs.
/// materializing one `Value` per cell).
fn detection_bench(smoke: bool, profile: bool) {
    header("Detection bench — naive vs. shared-index parallel engine");
    let paper = dq_gen::customer::paper_cfds();
    let normalized: Vec<Cfd> = paper.iter().flat_map(|c| c.normalize()).collect();
    let sets: [(&str, &[Cfd]); 2] = [("paper_cfds", &paper), ("normalized_cfds", &normalized)];
    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let error_rate = 0.05;
    let mut rows = Vec::new();
    println!("  tuples   cfd set          naive        engine(cold)  engine(warm)  violations  speedup(cold)  speedup(warm)");
    for &size in sizes {
        let workload = customer_workload_scaled(size, error_rate);
        for (label, cfds) in sets {
            // Throwaway runs of both paths so neither pays the allocator's
            // first-touch page faults inside a measurement.
            let _ = detect_cfd_violations(&workload.dirty, cfds);
            let _ = DetectionEngine::new().detect_cfd_violations(&workload.dirty, cfds);
            let reps = 3;
            let (naive_ms, naive_total) = timed_median(reps, || {
                detect_cfd_violations(&workload.dirty, cfds).total()
            });
            // Genuinely cold engine passes: clones carry fresh instance
            // identities and empty columnar caches, so each rep pays the
            // snapshot, the dictionary encoding and every index build
            // inside the measurement — the throwaway run above cannot
            // pre-warm them.  (Clones are taken outside the timer.)
            let cold_instances: Vec<_> = (0..reps).map(|_| workload.dirty.clone()).collect();
            let mut cold_iter = cold_instances.iter();
            let (cold_ms, cold_total) = timed_median(reps, || {
                let instance = cold_iter.next().expect("one fresh instance per rep");
                DetectionEngine::new()
                    .detect_cfd_violations(instance, cfds)
                    .total()
            });
            drop(cold_instances);
            let engine = DetectionEngine::new();
            let _ = engine.detect_cfd_violations(&workload.dirty, cfds);
            let (warm_ms, warm_total) = timed_median(reps, || {
                engine.detect_cfd_violations(&workload.dirty, cfds).total()
            });
            assert_eq!(
                naive_total, cold_total,
                "engine must find the same violations"
            );
            assert_eq!(
                naive_total, warm_total,
                "warm engine must find the same violations"
            );
            // Storage footprint: build each distinct-LHS index once per
            // representation and compare resident bytes.  The columnar
            // snapshot is the one the engine runs populated (same version,
            // served from the instance's cache).
            let distinct_lhs: std::collections::BTreeSet<Vec<usize>> =
                cfds.iter().map(|c| c.lhs().to_vec()).collect();
            let store = workload.dirty.columnar();
            let mut naive_bytes = 0usize;
            let mut interned_bytes = 0usize;
            for lhs in &distinct_lhs {
                naive_bytes += HashIndex::build(&workload.dirty, lhs).approx_heap_bytes();
                interned_bytes +=
                    InternedIndex::build(&workload.dirty, &store, lhs, 1).approx_heap_bytes();
            }
            let reduction = naive_bytes as f64 / interned_bytes.max(1) as f64;
            let stats = store.stats();
            println!(
                "{size:>8}   {label:<15} {naive_ms:>9.1}ms  {cold_ms:>10.1}ms  {warm_ms:>10.1}ms  {naive_total:>10}  {:>13.2}x  {:>13.2}x  (index mem {:.1} MB -> {:.1} MB, {reduction:.1}x)",
                naive_ms / cold_ms,
                naive_ms / warm_ms,
                naive_bytes as f64 / 1e6,
                interned_bytes as f64 / 1e6,
            );
            let pool_stats = engine.pool_stats();
            let profile_json = profile_field(
                profile,
                &format!("detection {label} @ {size}"),
                &[("engine.pool", &pool_stats), ("columnar", &stats)],
            );
            rows.push(format!(
                "    {{\"tuples\": {size}, \"cfd_set\": \"{label}\", \"dependencies\": {}, \
                 \"error_rate\": {error_rate}, \"violations\": {naive_total}, \
                 \"naive_ms\": {naive_ms:.3}, \"engine_cold_ms\": {cold_ms:.3}, \
                 \"engine_warm_ms\": {warm_ms:.3}, \"speedup_cold\": {:.3}, \"speedup_warm\": {:.3}, \
                 \"index_bytes_naive\": {naive_bytes}, \"index_bytes_interned\": {interned_bytes}, \
                 \"index_memory_reduction\": {reduction:.3}, \
                 \"interner_distinct_values\": {}, \"interner_bytes\": {}, \
                 \"interner_bytes_saved\": {}{profile_json}}}",
                cfds.len(),
                naive_ms / cold_ms,
                naive_ms / warm_ms,
                stats.distinct_values,
                stats.heap_bytes,
                stats.bytes_saved_vs_values
            ));
        }
    }
    if smoke {
        println!(
            "\nsmoke mode: naive, cold and warm totals identical on every row, artifact not written"
        );
        return;
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"fig1_cfd_detection_naive_vs_engine\",\n  \
         \"workload\": \"dq_gen::customer (scaled city pool), error_rate {error_rate}, seed 42\",\n  \
         \"threads\": {threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_detection.json", &json).expect("write BENCH_detection.json");
    println!("\nwrote BENCH_detection.json");
}

/// Naive vs. interned dependency discovery on the scaled customer workload,
/// written to `BENCH_discovery.json` (skipped in `--smoke` mode, which runs
/// the same comparison CI-sized and only asserts output identity).
///
/// Two algorithms per size:
/// * `fd_discovery` — level-wise exact FD discovery; the naive path builds
///   one `Vec<Value>`-keyed stripped partition per candidate attribute set,
///   the interned path derives single-attribute partitions from pooled CSR
///   postings and refines by id-based partition products;
/// * `cfd_discovery` — full CFD mining (exact FDs, `g3` conditioning,
///   tableau and constant-pattern mining); the naive path re-groups tuples
///   per condition set, the interned path reads every grouping off pooled
///   interned indexes (10k/100k only: the naive miner's per-group
///   minimality rescans are quadratic-ish and intractable at 1M).
///
/// The interned sweep is measured **per thread count** — sequential and
/// fanned out across the machine — each run cold on fresh clones (snapshot,
/// dictionaries and every index build inside the timer), with every run's
/// output asserted identical to the sequential naive sweep.  FD and CFD
/// rows also record the per-lattice-level wall clock (`levels_ms`), where
/// the per-level candidate fan-out pays — for CFDs summed over the exact
/// sweep, the `g3` sweep and constant-pattern mining at the same LHS
/// size.  Each row carries the grouping-layer
/// resident bytes: the `Vec<Value>`-keyed maps the naive sweep materializes
/// for the single and pair attribute sets vs. the pooled interned indexes
/// plus column dictionaries serving the same requests.
///
/// `--smoke` always includes a threads > 1 run, so CI's output-identity
/// assertion exercises the concurrent sweep (striped partition cache,
/// pooled probers, canonical merge) and not just the sequential path.
fn discovery_bench(smoke: bool, profile: bool) {
    use dq_discovery::prelude::*;
    use dq_relation::IndexPool;
    use std::sync::Arc;

    header("Discovery bench — naive vs. interned stripped partitions");
    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let machine_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Sequential plus a machine-sized fan-out (at least 2 workers, so the
    // concurrent sweep — striped cache, pooled probers, canonical merge —
    // is always exercised and recorded, even on a single-core container
    // where it cannot win wall-clock).
    let thread_counts: Vec<usize> = vec![1, machine_threads.max(2)];
    let error_rate = 0.05;
    let mut rows = Vec::new();
    println!(
        "  tuples   algo            threads   naive         interned     speedup   found   grouping mem"
    );
    for &size in sizes {
        let workload = customer_workload_scaled(size, error_rate);
        let instance = &workload.dirty;
        let schema = instance.schema().clone();
        let exclude = vec![schema.attr("phn"), schema.attr("name")];
        let reps = if size > 100_000 { 1 } else { 3 };

        // Grouping-layer resident bytes over the single and pair attribute
        // sets the level-wise sweep materializes (measured once per size,
        // outside the timers).
        let included: Vec<usize> = (0..schema.arity())
            .filter(|a| !exclude.contains(a))
            .collect();
        let mut attr_sets: Vec<Vec<usize>> = included.iter().map(|&a| vec![a]).collect();
        for i in 0..included.len() {
            for j in (i + 1)..included.len() {
                attr_sets.push(vec![included[i], included[j]]);
            }
        }
        let naive_bytes: usize = attr_sets
            .iter()
            .map(|set| HashIndex::build(instance, set).approx_heap_bytes())
            .sum();
        let measure_pool = Arc::new(IndexPool::new());
        for set in &attr_sets {
            measure_pool.interned_for(instance, set, 1);
        }
        let interned_bytes =
            measure_pool.approx_interned_bytes() + instance.columnar().stats().heap_bytes;
        let memory_reduction = naive_bytes as f64 / interned_bytes.max(1) as f64;
        drop(measure_pool);

        let mut push_row = |algo: &str,
                            threads: usize,
                            naive_ms: f64,
                            interned_ms: f64,
                            found: usize,
                            naive_partitions: usize,
                            interned_partitions: usize,
                            levels_ms: Option<&[f64]>,
                            profile_json: String| {
            let speedup = naive_ms / interned_ms;
            println!(
                "{size:>8}   {algo:<14} {threads:>7}   {naive_ms:>9.1}ms  {interned_ms:>10.1}ms  {speedup:>7.2}x  {found:>6}   ({:.1} MB -> {:.1} MB, {memory_reduction:.1}x)",
                naive_bytes as f64 / 1e6,
                interned_bytes as f64 / 1e6,
            );
            let levels = levels_ms
                .map(|ms| {
                    format!(
                        ", \"levels_ms\": [{}]",
                        ms.iter()
                            .map(|m| format!("{m:.3}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
                .unwrap_or_default();
            rows.push(format!(
                "    {{\"tuples\": {size}, \"algo\": \"{algo}\", \"threads\": {threads}, \
                 \"error_rate\": {error_rate}, \
                 \"dependencies_found\": {found}, \"naive_ms\": {naive_ms:.3}, \
                 \"interned_ms\": {interned_ms:.3}, \"speedup\": {speedup:.3}, \
                 \"partitions_naive\": {naive_partitions}, \"partitions_interned\": {interned_partitions}, \
                 \"grouping_bytes_naive\": {naive_bytes}, \"grouping_bytes_interned\": {interned_bytes}, \
                 \"memory_reduction\": {memory_reduction:.3}{levels}{profile_json}}}"
            ));
        };

        // ---- FD discovery ----
        let fd_cfg = |use_interned, threads| FdDiscoveryConfig {
            max_lhs: 2,
            max_g3: 0.0,
            exclude: exclude.clone(),
            use_interned,
            threads,
        };
        let (naive_ms, naive_fds) =
            timed_median(reps, || discover_fds(instance, &fd_cfg(false, 1)));
        for &threads in &thread_counts {
            // Cold interned runs: clones carry fresh identities and empty
            // columnar caches, so every rep pays the snapshot, the
            // dictionary encoding and all index builds inside the
            // measurement.
            let cold: Vec<_> = (0..reps).map(|_| instance.clone()).collect();
            let mut cold_iter = cold.iter();
            let (interned_ms, interned_fds) = timed_median(reps, || {
                discover_fds(
                    cold_iter.next().expect("one fresh instance per rep"),
                    &fd_cfg(true, threads),
                )
            });
            drop(cold);
            assert_eq!(
                naive_fds.fds, interned_fds.fds,
                "interned FD discovery must report identical dependencies (threads {threads})"
            );
            assert_eq!(
                naive_fds.candidates_checked, interned_fds.candidates_checked,
                "candidate tallies must match (threads {threads})"
            );
            let profile_json = profile_field(
                profile,
                &format!("fd_discovery @ {size}, threads {threads}"),
                &[],
            );
            push_row(
                "fd_discovery",
                threads,
                naive_ms,
                interned_ms,
                naive_fds.fds.len(),
                naive_fds.partitions_built,
                interned_fds.partitions_built,
                Some(&interned_fds.level_ms),
                profile_json,
            );
        }

        // ---- CFD discovery (naive miner intractable at 1M) ----
        if size <= 100_000 {
            let cfd_cfg = |use_interned, threads| CfdDiscoveryConfig {
                min_support: 4,
                max_lhs: 2,
                exclude: exclude.clone(),
                use_interned,
                threads,
                ..CfdDiscoveryConfig::default()
            };
            let (naive_ms, naive_cfds) =
                timed_median(reps, || discover_cfds(instance, &cfd_cfg(false, 1)));
            for &threads in &thread_counts {
                let cold: Vec<_> = (0..reps).map(|_| instance.clone()).collect();
                let mut cold_iter = cold.iter();
                let (interned_ms, interned_cfds) = timed_median(reps, || {
                    discover_cfds(
                        cold_iter.next().expect("one fresh instance per rep"),
                        &cfd_cfg(true, threads),
                    )
                });
                drop(cold);
                assert_eq!(
                    naive_cfds.variable_cfds, interned_cfds.variable_cfds,
                    "interned CFD discovery must report identical variable CFDs (threads {threads})"
                );
                assert_eq!(
                    naive_cfds.constant_cfds, interned_cfds.constant_cfds,
                    "interned CFD discovery must report identical constant CFDs (threads {threads})"
                );
                let profile_json = profile_field(
                    profile,
                    &format!("cfd_discovery @ {size}, threads {threads}"),
                    &[],
                );
                push_row(
                    "cfd_discovery",
                    threads,
                    naive_ms,
                    interned_ms,
                    naive_cfds.len(),
                    naive_cfds.candidates_checked,
                    interned_cfds.candidates_checked,
                    Some(&interned_cfds.level_ms),
                    profile_json,
                );
            }
        }
    }
    if smoke {
        println!(
            "\nsmoke mode: outputs identical on both paths at threads {thread_counts:?}, artifact not written"
        );
        return;
    }
    let json = format!(
        "{{\n  \"experiment\": \"sec1_discovery_naive_vs_interned\",\n  \
         \"workload\": \"dq_gen::customer (scaled city pool), error_rate {error_rate}, seed 42, exclude phn+name\",\n  \
         \"threads\": {machine_threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_discovery.json", &json).expect("write BENCH_discovery.json");
    println!("\nwrote BENCH_discovery.json");
}

/// Naive vs. interned IND discovery and CIND condition mining on the
/// order/book/CD workload, written to `BENCH_ind.json` (skipped in
/// `--smoke` mode, which runs the same comparison CI-sized and only asserts
/// output identity).
///
/// Two algorithms per size:
/// * `ind_discovery` — unary + binary IND discovery across the three
///   relations; the naive path rebuilds a `BTreeSet<Value>` /
///   `HashSet<Vec<Value>>` projection per candidate, the interned path
///   probes pooled distinct-projection sets with dictionary-translated ids
///   and fans candidate relation pairs out across the thread pool;
/// * `cind_mining` — condition mining for the embedded
///   `order(title, price) ⊆ book(title, price)` IND; the naive path
///   re-scans the instance per condition value, the interned path computes
///   one per-row inclusion verdict and reads candidate-value groups off CSR
///   postings.
///
/// Interned runs are measured cold on fresh clones (snapshot, dictionaries,
/// every distinct set and index build inside the timer), and both paths'
/// outputs are asserted identical.
fn ind_bench(smoke: bool, profile: bool) {
    use dq_discovery::prelude::*;

    header("IND bench — naive vs. interned distinct-projection probing");
    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let violation_rate = 0.05;
    let mut rows = Vec::new();
    println!("  orders   algo            naive         interned     speedup   found");
    for &size in sizes {
        let workload = order_workload(size, violation_rate);
        let db = &workload.db;
        let reps = if size > 100_000 { 1 } else { 3 };
        let config = |use_interned| IndDiscoveryConfig {
            use_interned,
            ..IndDiscoveryConfig::default()
        };

        let mut push_row = |algo: &str, naive_ms: f64, interned_ms: f64, found: usize| {
            let speedup = naive_ms / interned_ms;
            println!(
                "{size:>8}   {algo:<14} {naive_ms:>9.1}ms  {interned_ms:>10.1}ms  {speedup:>7.2}x  {found:>6}"
            );
            let profile_json = profile_field(profile, &format!("{algo} @ {size}"), &[]);
            rows.push(format!(
                "    {{\"orders\": {size}, \"algo\": \"{algo}\", \
                 \"violation_rate\": {violation_rate}, \"found\": {found}, \
                 \"naive_ms\": {naive_ms:.3}, \"interned_ms\": {interned_ms:.3}, \
                 \"speedup\": {speedup:.3}{profile_json}}}"
            ));
        };

        // ---- IND discovery ----
        let (naive_ms, naive_inds) =
            timed_median(reps, || discover_inds(db, &config(false)).unwrap());
        // Cold interned runs: clones carry fresh instance identities and
        // empty columnar caches, so every rep pays the snapshots, the
        // dictionary encodings and all distinct-set builds inside the
        // measurement.
        let cold: Vec<_> = (0..reps).map(|_| db.clone()).collect();
        let mut cold_iter = cold.iter();
        let (interned_ms, interned_inds) = timed_median(reps, || {
            discover_inds(
                cold_iter.next().expect("one fresh database per rep"),
                &config(true),
            )
            .unwrap()
        });
        drop(cold);
        assert_eq!(
            naive_inds.inds, interned_inds.inds,
            "interned IND discovery must report identical dependencies"
        );
        assert_eq!(
            naive_inds.candidates_checked,
            interned_inds.candidates_checked
        );
        push_row(
            "ind_discovery",
            naive_ms,
            interned_ms,
            naive_inds.inds.len(),
        );

        // ---- CIND condition mining ----
        // Mining gets the paper's shape at scale: every book order has its
        // `book` counterpart, while a slice of dangling CD orders breaks the
        // unconditional IND — so the miner must recover the `type = 'book'`
        // condition of cind1 rather than return early or find nothing.
        let mut mining_db = order_workload(size, 0.0).db;
        {
            let order_inst = mining_db.relation_mut("order").expect("order relation");
            for i in 0..(size / 20).max(1) {
                order_inst
                    .insert_values([
                        dq_relation::Value::str(format!("x{i}")),
                        dq_relation::Value::str(format!("Dangling {i}")),
                        dq_relation::Value::str("CD"),
                        dq_relation::Value::real(1.0),
                    ])
                    .expect("order tuple fits the schema");
            }
        }
        let order = mining_db
            .relation("order")
            .expect("order relation")
            .schema()
            .clone();
        let book = mining_db
            .relation("book")
            .expect("book relation")
            .schema()
            .clone();
        let embedded = dq_core::ind::Ind::from_indices(
            "order",
            vec![order.attr("title"), order.attr("price")],
            "book",
            vec![book.attr("title"), book.attr("price")],
        );
        let (naive_ms, naive_cinds) = timed_median(reps, || {
            discover_cind_conditions(&mining_db, &embedded, &config(false)).unwrap()
        });
        let cold: Vec<_> = (0..reps).map(|_| mining_db.clone()).collect();
        let mut cold_iter = cold.iter();
        let (interned_ms, interned_cinds) = timed_median(reps, || {
            discover_cind_conditions(
                cold_iter.next().expect("one fresh database per rep"),
                &embedded,
                &config(true),
            )
            .unwrap()
        });
        drop(cold);
        assert!(
            naive_cinds.iter().any(|c| c
                .tableau()
                .iter()
                .any(|p| p.lhs == [dq_relation::Value::str("book")])),
            "mining must recover the type = 'book' condition"
        );
        assert_eq!(
            naive_cinds, interned_cinds,
            "interned CIND mining must report identical conditions"
        );
        push_row("cind_mining", naive_ms, interned_ms, naive_cinds.len());
    }
    if smoke {
        println!("\nsmoke mode: outputs identical on both paths, artifact not written");
        return;
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"sec22_ind_discovery_naive_vs_interned\",\n  \
         \"workload\": \"dq_gen::orders (order/book/CD), violation_rate {violation_rate}, seed 42\",\n  \
         \"threads\": {threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_ind.json", &json).expect("write BENCH_ind.json");
    println!("\nwrote BENCH_ind.json");
}

/// Incremental (patch-served) CFD violation maintenance vs. full
/// re-detection under a mixed append+edit stream, written to
/// `BENCH_delta.json` (skipped in `--smoke` mode, which replays the same
/// stream CI-sized and only asserts report identity).
///
/// Two identical working copies of the customer workload absorb the same
/// mutation stream — donor-copy cell edits (always in-domain, and usually
/// moving the tuple between LHS groups of some CFD) plus duplicate-tuple
/// appends, driven by a fixed LCG so every round is reproducible:
/// * `rebuild` — `detect_cfd_violations` from scratch after every round,
///   one fresh index per CFD per call: the cost any pooled consumer paid
///   before cell writes became patchable;
/// * `patch` — `DetectionEngine::maintain_cfd_violations` against the
///   previous round's report: the delta journal lists the changed cells,
///   the pooled indexes absorb them as CSR row moves (`patches` in the
///   pool stats, never a rebuild), and only the touched LHS groups are
///   re-checked.
///
/// Both paths' reports are asserted identical after every round.
fn delta_bench(smoke: bool, profile: bool) {
    header("Delta bench — patch-maintained violations vs. full re-detection");
    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[100_000, 1_000_000]
    };
    let error_rate = 0.05;
    let cfds = dq_gen::customer::paper_cfds();
    let rounds = 8usize;
    let mut rows = Vec::new();
    println!(
        "  tuples   rounds  edits/r  appends/r   rebuild        patch       speedup   violations"
    );
    for &size in sizes {
        let workload = customer_workload_scaled(size, error_rate);
        // Monitor-shaped rounds: the delta is small relative to the
        // instance (like a repair round's writes or a feed's batch), not a
        // bulk rewrite touching most LHS groups.
        let edits_per_round = (size / 10_000).clamp(4, 128);
        let appends_per_round = (size / 20_000).clamp(1, 64);

        let mut rebuild_instance = workload.dirty.clone();
        let mut patch_instance = workload.dirty.clone();
        let engine = DetectionEngine::new();

        // Round 0 runs outside the timers on both paths: the baseline pays
        // a full detection per round by design, and the incremental path
        // starts from an initial report exactly like a monitor would.
        let mut baseline = detect_cfd_violations(&rebuild_instance, &cfds);
        let mut maintained = engine.maintain_cfd_violations(&patch_instance, &cfds, None);
        assert_eq!(&baseline, maintained.report());

        // A fixed LCG drives the stream so runs are exactly reproducible.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };

        let arity = rebuild_instance.schema().arity();
        let mut rebuild_ms = 0.0;
        let mut patch_ms = 0.0;
        for _ in 0..rounds {
            let ids = rebuild_instance.ids();
            let mut edits = Vec::with_capacity(edits_per_round);
            for _ in 0..edits_per_round {
                let target = ids[next() % ids.len()];
                let attr = next() % arity;
                let donor = ids[next() % ids.len()];
                let value = rebuild_instance
                    .tuple(donor)
                    .expect("live")
                    .get(attr)
                    .clone();
                edits.push((target, attr, value));
            }
            let mut appends = Vec::with_capacity(appends_per_round);
            for _ in 0..appends_per_round {
                appends.push(
                    rebuild_instance
                        .tuple(ids[next() % ids.len()])
                        .expect("live")
                        .clone(),
                );
            }
            for instance in [&mut rebuild_instance, &mut patch_instance] {
                for (target, attr, value) in &edits {
                    instance
                        .update_cell(CellRef::new(*target, *attr), value.clone())
                        .expect("donor values are in-domain");
                }
                for tuple in &appends {
                    instance.insert(tuple.clone()).expect("same schema");
                }
            }
            let (ms, report) = timed(|| detect_cfd_violations(&rebuild_instance, &cfds));
            rebuild_ms += ms;
            baseline = report;
            let (ms, next_maintained) =
                timed(|| engine.maintain_cfd_violations(&patch_instance, &cfds, Some(&maintained)));
            patch_ms += ms;
            maintained = next_maintained;
            assert_eq!(
                &baseline,
                maintained.report(),
                "maintained report must equal full re-detection every round"
            );
        }
        let stats = engine.pool_stats();
        assert!(
            stats.patches > 0,
            "the mixed stream must be served by index patches"
        );
        let speedup = rebuild_ms / patch_ms;
        let violations = baseline.total();
        println!(
            "{size:>8}   {rounds:>5}  {edits_per_round:>7}  {appends_per_round:>9}   {rebuild_ms:>9.1}ms  {patch_ms:>9.1}ms  {speedup:>7.2}x  {violations:>10}"
        );
        let profile_json = profile_field(
            profile,
            &format!("delta @ {size}"),
            &[("engine.pool", &stats)],
        );
        rows.push(format!(
            "    {{\"tuples\": {size}, \"rounds\": {rounds}, \
             \"edits_per_round\": {edits_per_round}, \"appends_per_round\": {appends_per_round}, \
             \"error_rate\": {error_rate}, \"violations\": {violations}, \
             \"rebuild_ms\": {rebuild_ms:.3}, \"patch_ms\": {patch_ms:.3}, \
             \"speedup\": {speedup:.3}, \
             \"rebuild_rounds_per_sec\": {:.3}, \"patch_rounds_per_sec\": {:.3}, \
             \"pool_patches\": {}, \"pool_appends\": {}, \"pool_misses\": {}, \"pool_hits\": {}{profile_json}}}",
            rounds as f64 / (rebuild_ms / 1e3),
            rounds as f64 / (patch_ms / 1e3),
            stats.patches,
            stats.appends,
            stats.misses,
            stats.hits
        ));
    }
    if smoke {
        println!(
            "\nsmoke mode: maintained reports identical to full re-detection every round, artifact not written"
        );
        return;
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"sec5_delta_maintenance_patch_vs_rebuild\",\n  \
         \"workload\": \"dq_gen::customer (scaled city pool), error_rate {error_rate}, seed 42, mixed append+edit stream\",\n  \
         \"threads\": {threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_delta.json", &json).expect("write BENCH_delta.json");
    println!("\nwrote BENCH_delta.json");
}

/// Peak resident set (`VmHWM`) in MiB from `/proc/self/status`, or `0.0`
/// where that interface doesn't exist.
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let rest = line.strip_prefix("VmHWM:")?;
                rest.trim().strip_suffix("kB")?.trim().parse::<f64>().ok()
            })
        })
        .map(|kib| kib / 1024.0)
        .unwrap_or(0.0)
}

/// Best-effort reset of the peak-RSS high-water mark (`/proc/self/clear_refs`
/// code 5) so each stage's ceiling is measured on its own, not inherited
/// from an earlier, hungrier stage.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Out-of-core columnar shards: persist, mmap-load, and run the engines
/// through `ShardSource` cursors, asserting byte-identity with the in-RAM
/// paths and recording per-stage peak resident memory.
///
/// Smoke mode shrinks the instance to CI size and the shard size to 1024
/// rows, so the multi-shard layout, the incremental save (frozen
/// dictionary segments + overlay spill) and both engines' shard cursors
/// all execute; no artifact is written.  Full mode asserts identity at 1M
/// tuples, then streams 10M tuples through [`RelationWriter`] in 1M-chunk
/// generations — memory stays bounded by one chunk plus the writer's
/// dictionaries — and runs CFD detection and FD discovery at 10M entirely
/// through the mmap path, writing `BENCH_scale.json` with a
/// `peak_rss_mib` ceiling per row.
fn scale_bench(smoke: bool, profile: bool) {
    use dq_discovery::prelude::*;
    use dq_gen::customer::{customer_schema, generate_customers, CustomerConfig};
    use dq_relation::store::persist::{self, RelationWriter};
    use dq_relation::store::SHARD_ROWS;
    use dq_relation::{RelationInstance, ShardSource};

    header("Scale bench — out-of-core columnar shards, mmap vs. in-RAM");
    let error_rate = 0.05;
    let cfds = dq_gen::customer::paper_cfds();
    let engine = DetectionEngine::new();
    let root = std::env::temp_dir().join(format!("dq_scale_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut rows = Vec::new();

    // Stage 1 — identity: the mmap engines must reproduce the in-RAM
    // engines byte for byte.  The snapshot is written in two saves so the
    // second one runs incrementally (frozen dictionary segments plus
    // overlay spill), covering the append-only write path.
    let ident_size = if smoke { 20_000 } else { 1_000_000 };
    let shard_rows = if smoke { 1 << 10 } else { SHARD_ROWS };
    let dir = root.join("ident");
    let workload = customer_workload_scaled(ident_size, error_rate);
    let mut staged = RelationInstance::new(workload.dirty.schema().clone());
    let split = ident_size * 3 / 4;
    for (_, tuple) in workload.dirty.iter().take(split) {
        staged.insert(tuple.clone()).expect("same schema");
    }
    let first = staged
        .columnar()
        .save_to_with_shard_rows(&staged, &dir, shard_rows)
        .expect("first save");
    assert!(!first.incremental, "first save writes from scratch");
    for (_, tuple) in workload.dirty.iter().skip(split) {
        staged.insert(tuple.clone()).expect("same schema");
    }
    let second = staged
        .columnar()
        .save_to_with_shard_rows(&staged, &dir, shard_rows)
        .expect("incremental save");
    assert!(
        second.incremental,
        "append-only growth must extend the snapshot, not rewrite it"
    );
    let (open_ms, mapped) = timed(|| persist::open_mmap(&dir).expect("open mapped relation"));
    assert!(
        mapped.len() / shard_rows >= 2,
        "identity stage must span several shards"
    );

    let schema = workload.dirty.schema();
    let fd_cfg = dq_discovery::FdDiscoveryConfig {
        max_lhs: 2,
        exclude: vec![schema.attr("phn"), schema.attr("name")],
        ..Default::default()
    };

    let (ram_detect_ms, expected_report) = timed(|| engine.detect_cfd_violations(&staged, &cfds));
    let (mmap_detect_ms, mapped_report) =
        timed(|| engine.detect_cfd_violations_from_shards(&mapped, &cfds));
    assert_eq!(
        mapped_report.per_dependency(),
        expected_report.per_dependency(),
        "mmap CFD detection must be byte-identical to the in-RAM engine"
    );
    let (ram_fd_ms, expected_fds) = timed(|| discover_fds(&staged, &fd_cfg));
    let (mmap_fd_ms, mapped_fds) = timed(|| discover_fds_from_shards(&mapped, &fd_cfg));
    assert_eq!(
        mapped_fds.fds, expected_fds.fds,
        "mmap FD discovery must match the in-RAM engine"
    );
    assert_eq!(
        mapped_fds.candidates_checked,
        expected_fds.candidates_checked
    );
    let violations = expected_report.total();
    println!(
        "  identity @ {ident_size} (shard_rows {shard_rows}): open {open_ms:.1}ms · \
         detect in-RAM {ram_detect_ms:.1}ms / mmap {mmap_detect_ms:.1}ms · \
         discovery in-RAM {ram_fd_ms:.1}ms / mmap {mmap_fd_ms:.1}ms · \
         {violations} violations, {} FDs — reports identical",
        expected_fds.fds.len()
    );
    let profile_json = profile_field(profile, &format!("scale identity @ {ident_size}"), &[]);
    rows.push(format!(
        "    {{\"stage\": \"identity\", \"tuples\": {ident_size}, \"shard_rows\": {shard_rows}, \
         \"open_ms\": {open_ms:.3}, \"detect_ram_ms\": {ram_detect_ms:.3}, \
         \"detect_mmap_ms\": {mmap_detect_ms:.3}, \"discover_ram_ms\": {ram_fd_ms:.3}, \
         \"discover_mmap_ms\": {mmap_fd_ms:.3}, \"violations\": {violations}, \
         \"fds\": {}, \"disk_bytes\": {}, \"peak_rss_mib\": {:.1}{profile_json}}}",
        expected_fds.fds.len(),
        mapped.disk_bytes(),
        peak_rss_mib()
    ));
    drop(mapped);
    drop(staged);
    drop(workload);

    if smoke {
        let _ = std::fs::remove_dir_all(&root);
        println!(
            "\nsmoke mode: mmap reports identical to in-RAM on detection and discovery, artifact not written"
        );
        return;
    }

    // Stage 2 — streaming ingest: 10M tuples written through the
    // RelationWriter in 1M-tuple generated chunks.  No instance holding
    // more than one chunk ever exists; the writer's memory is its
    // dictionaries plus one partial shard.
    let total = 10_000_000usize;
    let chunk_rows = 1_000_000usize;
    let scale_dir = root.join("scale");
    reset_peak_rss();
    let (ingest_ms, ingested) = timed(|| {
        let mut writer = RelationWriter::create(&scale_dir, customer_schema(), SHARD_ROWS)
            .expect("create streaming writer");
        for chunk in 0..total / chunk_rows {
            let generated = generate_customers(&CustomerConfig {
                tuples: chunk_rows,
                error_rate,
                seed: 42 + chunk as u64,
                cities_per_country: (total / 2_000).max(3),
            });
            for (_, tuple) in generated.dirty.iter() {
                writer
                    .push_row(tuple.values().iter().cloned())
                    .expect("generated rows are in-domain");
            }
        }
        let stats = writer.finish().expect("finish streamed relation");
        assert_eq!(stats.rows, total);
        stats
    });
    let ingest_rss = peak_rss_mib();
    println!(
        "  ingest    @ {total}: {ingest_ms:.0}ms streaming through RelationWriter, \
         {} bytes on disk, peak RSS {ingest_rss:.0} MiB",
        ingested.bytes_written
    );
    let profile_json = profile_field(profile, &format!("scale ingest @ {total}"), &[]);
    rows.push(format!(
        "    {{\"stage\": \"ingest\", \"tuples\": {total}, \"shard_rows\": {SHARD_ROWS}, \
         \"ingest_ms\": {ingest_ms:.3}, \"disk_bytes\": {}, \
         \"peak_rss_mib\": {ingest_rss:.1}{profile_json}}}",
        ingested.bytes_written
    ));

    // Stage 3 — detection at 10M through the mmap path only: memory is
    // bounded by the dictionaries, the shard cursor and the grouped output,
    // never by a 10M-tuple instance.
    reset_peak_rss();
    let (open_ms, mapped) = timed(|| persist::open_mmap(&scale_dir).expect("open 10M relation"));
    let (detect_ms, report) = timed(|| engine.detect_cfd_violations_from_shards(&mapped, &cfds));
    let detect_rss = peak_rss_mib();
    println!(
        "  detect    @ {total}: open {open_ms:.0}ms, CFD detection {detect_ms:.0}ms, \
         {} violations, peak RSS {detect_rss:.0} MiB",
        report.total()
    );
    let profile_json = profile_field(profile, &format!("scale detect @ {total}"), &[]);
    rows.push(format!(
        "    {{\"stage\": \"detect\", \"tuples\": {total}, \"shard_rows\": {SHARD_ROWS}, \
         \"open_ms\": {open_ms:.3}, \"detect_mmap_ms\": {detect_ms:.3}, \
         \"violations\": {}, \"peak_rss_mib\": {detect_rss:.1}{profile_json}}}",
        report.total()
    ));

    // Stage 4 — FD discovery at 10M through the mmap path.
    reset_peak_rss();
    let (fd_ms, fds) = timed(|| discover_fds_from_shards(&mapped, &fd_cfg));
    let fd_rss = peak_rss_mib();
    println!(
        "  discover  @ {total}: FD discovery {fd_ms:.0}ms, {} FDs over {} candidates, \
         peak RSS {fd_rss:.0} MiB",
        fds.fds.len(),
        fds.candidates_checked
    );
    let profile_json = profile_field(profile, &format!("scale discover @ {total}"), &[]);
    rows.push(format!(
        "    {{\"stage\": \"discover\", \"tuples\": {total}, \"shard_rows\": {SHARD_ROWS}, \
         \"discover_mmap_ms\": {fd_ms:.3}, \"fds\": {}, \"candidates_checked\": {}, \
         \"peak_rss_mib\": {fd_rss:.1}{profile_json}}}",
        fds.fds.len(),
        fds.candidates_checked
    ));
    drop(mapped);
    let _ = std::fs::remove_dir_all(&root);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"out_of_core_columnar_shards\",\n  \
         \"workload\": \"dq_gen::customer (scaled city pool), error_rate {error_rate}, seeds 42+chunk\",\n  \
         \"threads\": {threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json");
}

/// Pre-builds every dictionary-encoded column of one relation (columns
/// intern lazily on first access, so `columnar()` alone leaves the store
/// cold): the matching rows charge the engine for every matching-layer
/// artifact, while the snapshot itself is a system-shared artifact whose
/// construction BENCH_detection already tracks.
fn warm_columns(inst: &dq_relation::RelationInstance) {
    let store = inst.columnar();
    for attr in 0..inst.schema().arity() {
        let _ = store.column(inst, attr);
    }
}

/// Measures one rule-matching scenario row: naive `Matcher::run` (when
/// `naive_runs`) vs. the interned engine cold and warm, asserting the
/// results byte-identical (matches *and* per-rule hit counts) and scoring
/// them against the generator's ground truth.  Cold passes run on clones
/// taken outside the timer — fresh instance identities, so the pool and
/// every engine cache miss — with the columnar snapshot pre-built: the
/// dictionary encoding is a system-wide artifact every other engine
/// already shares (BENCH_detection tracks its construction), so cold rows
/// pay every *matching-layer* build — interned indexes, blockers, display
/// forms, id translations and metric evaluations — inside the measurement,
/// and the snapshot's one-time cost is reported separately as `store_ms`.
/// A final dedicated cold run supplies the canonical single-run counters
/// (the timed engines' counters are summed across reps).
#[allow(clippy::too_many_arguments)]
fn match_scenario_row(
    scenario: &str,
    label: &str,
    rules: &[RelativeKey],
    w: &CardWorkload,
    holders: usize,
    naive_runs: bool,
    reps: usize,
    profile: bool,
) -> String {
    use dq_relation::IndexPool;
    use std::sync::Arc;
    let matcher = Matcher::new(rules.to_vec());
    let fresh = || MatchingEngine::new(Arc::new(IndexPool::new()));
    // Throwaway runs so neither path pays the allocator's first-touch page
    // faults inside a measurement.
    if naive_runs {
        let _ = matcher.run(&w.card, &w.billing);
    }
    let _ = matcher.run_with(&fresh(), &w.card, &w.billing);
    let naive = naive_runs.then(|| timed_median(reps, || matcher.run(&w.card, &w.billing)));
    let (store_card, store_billing) = (w.card.clone(), w.billing.clone());
    let (store_ms, _) = timed(|| {
        warm_columns(&store_card);
        warm_columns(&store_billing);
    });
    drop((store_card, store_billing));
    let cold_instances: Vec<_> = (0..reps)
        .map(|_| {
            let (c, b) = (w.card.clone(), w.billing.clone());
            warm_columns(&c);
            warm_columns(&b);
            (c, b)
        })
        .collect();
    let mut cold_iter = cold_instances.iter();
    let (cold_ms, cold_res) = timed_median(reps, || {
        let (c, b) = cold_iter.next().expect("one fresh pair per rep");
        matcher.run_with(&fresh(), c, b)
    });
    drop(cold_instances);
    let engine = fresh();
    let _ = matcher.run_with(&engine, &w.card, &w.billing);
    let (warm_ms, warm_res) = timed_median(reps, || matcher.run_with(&engine, &w.card, &w.billing));
    if let Some((_, naive_res)) = &naive {
        assert_eq!(
            naive_res.matches, cold_res.matches,
            "engine must find the same matches ({scenario}/{label})"
        );
        assert_eq!(
            naive_res.rule_hits, cold_res.rule_hits,
            "engine must credit the same rules ({scenario}/{label})"
        );
    }
    assert_eq!(
        cold_res.matches, warm_res.matches,
        "warm engine must find the same matches ({scenario}/{label})"
    );
    assert_eq!(
        cold_res.rule_hits, warm_res.rule_hits,
        "warm engine must credit the same rules ({scenario}/{label})"
    );
    let quality = score(&warm_res.matches, &w.truth);
    let (stats_card, stats_billing) = (w.card.clone(), w.billing.clone());
    warm_columns(&stats_card);
    warm_columns(&stats_billing);
    let stats_engine = fresh();
    let _ = matcher.run_with(&stats_engine, &stats_card, &stats_billing);
    let stats = stats_engine.stats();
    let naive_ms = naive.as_ref().map(|(ms, _)| *ms);
    let naive_col = naive_ms.map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}ms"));
    let speedup_col =
        naive_ms.map_or_else(|| "-".to_string(), |ms| format!("{:.2}x", ms / cold_ms));
    println!(
        "{holders:>8}   {label:<18} {naive_col:>11}  {cold_ms:>10.1}ms  {warm_ms:>10.1}ms  {:>9}  {speedup_col:>13}  f1 {:.3}",
        warm_res.len(),
        quality.f1,
    );
    let profile_json = profile_field(
        profile,
        &format!("{scenario} {label} @ {holders}"),
        &[("match", &stats)],
    );
    let pairs_total = w.card.len() as u64 * w.billing.len() as u64;
    format!(
        "    {{\"scenario\": \"{scenario}\", \"rule_set\": \"{label}\", \"holders\": {holders}, \
         \"records\": {}, \"pairs_total\": {pairs_total}, \"rules\": {}, \"matches\": {}, \
         \"naive_ms\": {}, \"store_ms\": {store_ms:.3}, \"engine_cold_ms\": {cold_ms:.3}, \
         \"engine_warm_ms\": {warm_ms:.3}, \"speedup_cold\": {}, \"speedup_warm\": {}, \
         \"precision\": {:.4}, \"recall\": {:.4}, \"f1\": {:.4}, \
         \"comparisons\": {}, \"pairs_saved\": {}, \"candidates\": {}, \"blocks_built\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}{profile_json}}}",
        w.card.len() + w.billing.len(),
        rules.len(),
        warm_res.len(),
        naive_ms.map_or_else(|| "null".to_string(), |ms| format!("{ms:.3}")),
        naive_ms.map_or_else(|| "null".to_string(), |ms| format!("{:.3}", ms / cold_ms)),
        naive_ms.map_or_else(|| "null".to_string(), |ms| format!("{:.3}", ms / warm_ms)),
        quality.precision,
        quality.recall,
        quality.f1,
        stats.comparisons,
        stats.pairs_saved,
        stats.candidates,
        stats.blocks_built,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache_hit_rate(),
    )
}

/// Naive vs. dictionary-blocked entity matching on the card/billing
/// workload, written to `BENCH_matching.json` (skipped in `--smoke` mode,
/// which runs the same comparison CI-sized — the point is to execute both
/// code paths and assert byte-identical output, so a fast-path regression
/// fails loudly).
///
/// Four scenarios:
/// * `rules` — the Section 3 given rule and the derived-RCK set (equality
///   premises join through pooled interned indexes; the `edit(3)` premise
///   is evaluated once per distinct value pair and memoized): naive
///   `Matcher::run` vs. the engine cold (fresh clones, fresh pool — every
///   matching-layer artifact built inside the timer; the system-shared
///   columnar snapshot is pre-built and reported as `store_ms`) and warm
///   (the same engine called again — displays, translations, indexes and
///   the similarity memo all served from cache);
/// * `fuzzy` — a rule with no equality premise, where the naive matcher
///   falls back to the full cross product while the engine blocks through
///   the q-gram token index over the dictionaries.  The naive path is
///   quadratic in *tuples* and measured at the smallest size only; the
///   engine's metric work is quadratic in *distinct values*, so it keeps
///   going (candidate verification still touches every generated row
///   pair, which bounds its sizes below the equality scenarios');
/// * `md_violations` — `MatchingDependency::violations_with` vs. the
///   pooled engine path on a tel-equality + FN-edit MD concluding e-mail
///   equality (the naive nested loop is measured up to 10k holders; the
///   asserts also pin the naive ascending pair order);
/// * `rule_learning` — `learn_relative_keys` vs. `_with_pool`: the whole
///   candidate sweep rides one engine, so later candidates are answered
///   from the similarity memo built by earlier ones.
///
/// Each row records P/R/F1 against the generator's ground truth (which the
/// engine cannot change — asserted, not assumed) and the engine's
/// single-cold-run counters: tuple comparisons performed, pairs blocking
/// skipped, candidates generated, blockers built, and memo-cache hit rate.
fn matching_bench(smoke: bool, profile: bool) {
    use dq_discovery::md_discovery::{
        learn_relative_keys, learn_relative_keys_with_pool, RuleLearningConfig,
    };
    use dq_relation::IndexPool;
    use std::sync::Arc;

    header("Matching bench — naive vs. dictionary-blocked parallel engine");
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let key = |comparisons: Vec<(&str, &str, SimilarityOp)>| {
        RelativeKey::new(
            &card,
            &billing,
            comparisons,
            &dq_match::paper::YC,
            &dq_match::paper::YB,
        )
        .unwrap()
    };
    // The Section 3 experiment rule sets (`md_matching_quality`): the given
    // LN/addr/FN equality rule, and the derived set adding the email join
    // and the edit-distance relaxation.
    let given = vec![key(vec![
        ("LN", "SN", SimilarityOp::Equality),
        ("addr", "post", SimilarityOp::Equality),
        ("FN", "FN", SimilarityOp::Equality),
    ])];
    let mut derived = given.clone();
    derived.push(key(vec![
        ("email", "email", SimilarityOp::Equality),
        ("addr", "post", SimilarityOp::Equality),
    ]));
    derived.push(key(vec![
        ("LN", "SN", SimilarityOp::Equality),
        ("addr", "post", SimilarityOp::Equality),
        ("FN", "FN", SimilarityOp::edit(3)),
    ]));
    // No equality premise anywhere: the naive matcher has nothing to block
    // on and compares every tuple pair; the engine blocks on the first
    // premise's q-gram cover.
    let fuzzy = vec![key(vec![
        (
            "FN",
            "FN",
            SimilarityOp::QGram {
                q: 2,
                min_similarity: 0.5,
            },
        ),
        ("LN", "SN", SimilarityOp::edit(2)),
        ("addr", "post", SimilarityOp::edit(5)),
    ])];
    // "Same phone and a similar first name ⇒ same e-mail": the generator
    // rewrites ~40% of billing e-mails, so the violation set is the
    // phone-stable matched pairs whose e-mail changed — non-empty at every
    // size.
    let md = MatchingDependency::new(
        &card,
        &billing,
        vec![
            ("tel", "phn", MatchOp::eq()),
            ("FN", "FN", MatchOp::edit(3)),
        ],
        &["email"],
        &["email"],
        MatchOp::eq(),
    )
    .unwrap();

    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut rows = Vec::new();
    println!("  holders   scenario                 naive  engine(cold)  engine(warm)    matches  speedup(cold)  quality");
    for &holders in sizes {
        let w = card_workload(holders);
        let reps = if holders > 100_000 { 1 } else { 3 };
        rows.push(match_scenario_row(
            "rules",
            "given_rules",
            &given,
            &w,
            holders,
            true,
            reps,
            profile,
        ));
        rows.push(match_scenario_row(
            "rules",
            "derived_rcks",
            &derived,
            &w,
            holders,
            true,
            reps,
            profile,
        ));
    }

    // Fuzzy scenario: naive is quadratic in tuples (the 2k-holder cross
    // product is ~4M pairs, each evaluating q-gram similarity on `Value`s),
    // so it runs at the smallest size only; the engine's verification work
    // still scales with the generated row pairs, so its sizes stay below
    // the equality scenarios' too.
    let fuzzy_sizes: &[usize] = if smoke { &[500] } else { &[2_000, 10_000] };
    for &holders in fuzzy_sizes {
        let w = card_workload(holders);
        rows.push(match_scenario_row(
            "fuzzy",
            "qgram_no_eq",
            &fuzzy,
            &w,
            holders,
            holders <= 2_000,
            if holders <= 2_000 { 1 } else { 3 },
            profile,
        ));
    }

    // MD violation checking under a ground-truth oracle.  The naive
    // `violations_with` nested loop visits the full cross product, so it is
    // measured up to 10k holders; the engine eq-joins on tel/phn at every
    // size.  Where both run, the violation vectors must agree in contents
    // *and* order (the engine re-sorts into the naive ascending order).
    for &holders in sizes {
        let w = card_workload(holders);
        let reps = if holders > 100_000 { 1 } else { 3 };
        let naive_runs = holders <= 10_000;
        let truth = w.truth.clone();
        let oracle = move |a, b| truth.contains(&(a, b));
        let fresh = || MatchingEngine::new(Arc::new(IndexPool::new()));
        let _ = md.violations_with_pool(&w.card, &w.billing, &oracle, &fresh());
        let naive = naive_runs.then(|| {
            let reps = if holders > 2_000 { 1 } else { reps };
            timed_median(reps, || md.violations_with(&w.card, &w.billing, &oracle))
        });
        let (store_card, store_billing) = (w.card.clone(), w.billing.clone());
        let (store_ms, _) = timed(|| {
            warm_columns(&store_card);
            warm_columns(&store_billing);
        });
        drop((store_card, store_billing));
        let cold_instances: Vec<_> = (0..reps)
            .map(|_| {
                let (c, b) = (w.card.clone(), w.billing.clone());
                warm_columns(&c);
                warm_columns(&b);
                (c, b)
            })
            .collect();
        let mut cold_iter = cold_instances.iter();
        let (cold_ms, cold_res) = timed_median(reps, || {
            let (c, b) = cold_iter.next().expect("one fresh pair per rep");
            md.violations_with_pool(c, b, &oracle, &fresh())
        });
        drop(cold_instances);
        let engine = fresh();
        let _ = md.violations_with_pool(&w.card, &w.billing, &oracle, &engine);
        let (warm_ms, warm_res) = timed_median(reps, || {
            md.violations_with_pool(&w.card, &w.billing, &oracle, &engine)
        });
        if let Some((_, naive_res)) = &naive {
            assert_eq!(
                naive_res, &cold_res,
                "engine must report the same MD violations in the same order"
            );
        }
        assert_eq!(
            cold_res, warm_res,
            "warm engine must report the same MD violations"
        );
        let stats = engine.stats();
        let naive_ms = naive.as_ref().map(|(ms, _)| *ms);
        let naive_col = naive_ms.map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}ms"));
        let speedup_col =
            naive_ms.map_or_else(|| "-".to_string(), |ms| format!("{:.2}x", ms / cold_ms));
        println!(
            "{holders:>8}   {:<18} {naive_col:>11}  {cold_ms:>10.1}ms  {warm_ms:>10.1}ms  {:>9}  {speedup_col:>13}  violations",
            "md_violations",
            warm_res.len(),
        );
        let profile_json = profile_field(
            profile,
            &format!("md_violations @ {holders}"),
            &[("match", &stats)],
        );
        rows.push(format!(
            "    {{\"scenario\": \"md_violations\", \"rule_set\": \"tel_fn_implies_email\", \
             \"holders\": {holders}, \"records\": {}, \"pairs_total\": {}, \"rules\": 1, \
             \"matches\": {}, \"naive_ms\": {}, \"store_ms\": {store_ms:.3}, \
             \"engine_cold_ms\": {cold_ms:.3}, \
             \"engine_warm_ms\": {warm_ms:.3}, \"speedup_cold\": {}, \"speedup_warm\": {}, \
             \"precision\": null, \"recall\": null, \"f1\": null, \
             \"comparisons\": {}, \"pairs_saved\": {}, \"candidates\": {}, \"blocks_built\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}{profile_json}}}",
            w.card.len() + w.billing.len(),
            w.card.len() as u64 * w.billing.len() as u64,
            warm_res.len(),
            naive_ms.map_or_else(|| "null".to_string(), |ms| format!("{ms:.3}")),
            naive_ms.map_or_else(|| "null".to_string(), |ms| format!("{:.3}", ms / cold_ms)),
            naive_ms.map_or_else(|| "null".to_string(), |ms| format!("{:.3}", ms / warm_ms)),
            stats.comparisons,
            stats.pairs_saved,
            stats.candidates,
            stats.blocks_built,
            stats.cache.hits,
            stats.cache.misses,
            stats.cache_hit_rate(),
        ));
    }

    // Rule learning: the candidate sweep re-runs the matcher once per
    // candidate key, so the pooled variant amortizes indexes and the
    // similarity memo across the whole sweep.
    let learn_holders = if smoke { 100 } else { 500 };
    let w = card_workload(learn_holders);
    let space = vec![
        ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
        ComparisonSpace::new(
            "FN",
            "FN",
            vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
        ),
        ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
    ];
    let config = RuleLearningConfig::default();
    let yc = dq_match::paper::YC;
    let yb = dq_match::paper::YB;
    let learn = || learn_relative_keys(&w.card, &w.billing, &w.truth, &space, &yc, &yb, &config);
    let _ = learn();
    let (naive_ms, naive_learned) = timed_median(3, learn);
    let (pooled_ms, pooled_learned) = timed_median(3, || {
        let engine = MatchingEngine::new(Arc::new(IndexPool::new()));
        learn_relative_keys_with_pool(
            &w.card, &w.billing, &w.truth, &space, &yc, &yb, &config, &engine,
        )
    });
    assert_eq!(
        naive_learned.candidates_evaluated, pooled_learned.candidates_evaluated,
        "pooled learning must sweep the same candidates"
    );
    assert_eq!(naive_learned.rules.len(), pooled_learned.rules.len());
    for (a, b) in naive_learned.rules.iter().zip(&pooled_learned.rules) {
        assert_eq!(a.key, b.key, "pooled learning must learn the same rules");
        assert_eq!(a.quality, b.quality, "with the same qualities");
    }
    assert_eq!(naive_learned.combined, pooled_learned.combined);
    println!(
        "{learn_holders:>8}   {:<18} {naive_ms:>9.1}ms  {pooled_ms:>10.1}ms  {:>12}  {:>9}  {:>12.2}x  learning",
        "rule_learning",
        "-",
        naive_learned.rules.len(),
        naive_ms / pooled_ms,
    );
    rows.push(format!(
        "    {{\"scenario\": \"rule_learning\", \"rule_set\": \"rck_space\", \
         \"holders\": {learn_holders}, \"records\": {}, \"candidates_evaluated\": {}, \
         \"rules_learned\": {}, \"naive_ms\": {naive_ms:.3}, \"pooled_ms\": {pooled_ms:.3}, \
         \"speedup\": {:.3}, \"combined_f1\": {:.4}}}",
        w.card.len() + w.billing.len(),
        naive_learned.candidates_evaluated,
        naive_learned.rules.len(),
        naive_ms / pooled_ms,
        naive_learned.combined.f1,
    ));

    if smoke {
        println!(
            "\nsmoke mode: engine output byte-identical to every naive path that ran, artifact not written"
        );
        return;
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"sec3_entity_matching_naive_vs_interned_engine\",\n  \
         \"workload\": \"dq_gen::cards card/billing, billing_rate 0.8, abbreviate 0.4, seed 42\",\n  \
         \"threads\": {threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_matching.json", &json).expect("write BENCH_matching.json");
    println!("\nwrote BENCH_matching.json");
}

/// A parity cycle over `k` boolean attributes: for every `i` the rules
/// `(b_i = v → b_{i+1 mod k} = v)` propagate the value around the cycle;
/// the `flip` variant negates the closing edge, so every assignment runs
/// into a contradiction and the set is inconsistent.  No rule forces a
/// constant unconditionally, so the quadratic propagation fixpoint cannot
/// start — the instance is decided by search, where the seed's
/// blind backtracking tests satisfaction only at full depth (`2^k` leaves
/// on the inconsistent variant) while the solver's unit propagation
/// collapses each top-level branch in `O(k)`.
fn parity_cycle_cfds(k: usize, flip: bool) -> Vec<Cfd> {
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;
    let schema = Arc::new(RelationSchema::new(
        "parity",
        (0..k).map(|i| (format!("b{i}"), Domain::Bool)),
    ));
    (0..k)
        .map(|i| {
            let invert = flip && i == k - 1;
            let rows = [true, false]
                .iter()
                .map(|&v| PatternTuple::new(vec![cst(v)], vec![cst(if invert { !v } else { v })]))
                .collect();
            Cfd::from_indices(&schema, vec![i], vec![(i + 1) % k], rows)
                .expect("well-formed cycle rule")
        })
        .collect()
}

/// The finite-domain implication gadget of Section 4.1: sigma forces
/// `B = b0` whichever boolean value `a0` takes, so `([a0..a_{k-1}] → B)`
/// with RHS pattern `b0` is implied — but only by case analysis over the
/// boolean domain, which the quadratic closure cannot see.  The naive
/// counterexample search exhausts all `2^k` shared boolean assignments
/// before conceding; the solver refutes each top-level branch by unit
/// propagation into the violation goal.
fn implication_gadget(k: usize) -> (Vec<Cfd>, Cfd) {
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;
    let mut attrs: Vec<(String, Domain)> =
        (0..k).map(|i| (format!("a{i}"), Domain::Bool)).collect();
    attrs.push(("B".into(), Domain::Text));
    let schema = Arc::new(RelationSchema::new("imp", attrs));
    let sigma = [true, false]
        .iter()
        .map(|&v| {
            Cfd::from_indices(
                &schema,
                vec![0],
                vec![k],
                vec![PatternTuple::new(vec![cst(v)], vec![cst("b0")])],
            )
            .expect("well-formed premise")
        })
        .collect();
    let phi = Cfd::from_indices(
        &schema,
        (0..k).collect(),
        vec![k],
        vec![PatternTuple::new(vec![wild(); k], vec![cst("b0")])],
    )
    .expect("well-formed conclusion");
    (sigma, phi)
}

/// The deliberately messy rule set the lint showcase runs on: a subsumed
/// tableau row, a verbatim duplicate rule (whose copies imply each other),
/// all consistent — plus a second, inconsistent set where two wildcard-LHS
/// rules force different constants on the same attribute.
fn lint_showcase_sets() -> (Vec<Cfd>, Vec<Cfd>) {
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;
    let schema = Arc::new(RelationSchema::new(
        "lint_demo",
        [
            ("CC", Domain::Text),
            ("AC", Domain::Text),
            ("city", Domain::Text),
        ],
    ));
    let subsumed = Cfd::from_indices(
        &schema,
        vec![0, 1],
        vec![2],
        vec![
            PatternTuple::new(vec![cst("44"), wild()], vec![wild()]),
            PatternTuple::new(vec![cst("44"), cst("131")], vec![wild()]),
        ],
    )
    .expect("well-formed rule");
    let constant = Cfd::from_indices(
        &schema,
        vec![0],
        vec![2],
        vec![PatternTuple::new(vec![cst("01")], vec![cst("MH")])],
    )
    .expect("well-formed rule");
    let messy = vec![subsumed, constant.clone(), constant];
    let force = |city: &str| {
        Cfd::from_indices(
            &schema,
            vec![0],
            vec![2],
            vec![PatternTuple::new(vec![wild()], vec![cst(city)])],
        )
        .expect("well-formed rule")
    };
    let inconsistent = vec![
        Cfd::from_indices(
            &schema,
            vec![1],
            vec![2],
            vec![PatternTuple::new(vec![cst("131")], vec![wild()])],
        )
        .expect("well-formed rule"),
        force("EDI"),
        force("NYC"),
    ];
    (messy, inconsistent)
}

/// Re-merges normalized single-pattern fragments into multi-row tableaux,
/// grouped by (LHS, RHS) in first-seen order: detection does one pass per
/// [`Cfd`] object, so both sides of the cover comparison must be in the
/// same merged representation for the row-count reduction (and not the
/// fragment explosion of normalization) to be what is measured.
fn merge_fragments(fragments: &[Cfd]) -> Vec<Cfd> {
    let mut order: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut rows: std::collections::HashMap<(Vec<usize>, Vec<usize>), Vec<PatternTuple>> =
        std::collections::HashMap::new();
    for f in fragments {
        let key = (f.lhs().to_vec(), f.rhs().to_vec());
        let entry = rows.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        for row in f.tableau() {
            if !entry.contains(row) {
                entry.push(row.clone());
            }
        }
    }
    let schema = fragments[0].schema();
    order
        .into_iter()
        .map(|(lhs, rhs)| {
            let tableau = rows.remove(&(lhs.clone(), rhs.clone())).expect("grouped");
            Cfd::from_indices(schema, lhs, rhs, tableau).expect("merged rule is well-formed")
        })
        .collect()
}

/// The static-analysis comparison, written to `BENCH_analysis.json`:
///
/// * consistency on parity-cycle gadgets (inconsistent and consistent
///   variants) at growing finite-domain counts `k` — the seed's blind
///   full-depth backtracking vs. the propagation-guided solver, verdicts
///   asserted identical on every row, solver witnesses asserted against the
///   naive single-tuple predicate via detection;
/// * implication on the boolean case-split gadget at growing `k` — the
///   seed's exhaustive two-tuple counterexample search vs. the solver,
///   verdicts asserted identical (and the quadratic closure asserted
///   incomplete: it cannot prove the gadget, which is exactly why the
///   exact procedures exist);
/// * the rule-lint pass rendered on a messy showcase set and an
///   inconsistent one (minimal core), both reports embedded as JSON;
/// * one detection row at 1M tuples: rules mined at 100k unioned with the
///   curated paper set, detected in full vs. after
///   [`cfd_minimal_cover`] pruning, clean verdicts asserted identical.
fn analysis_bench(smoke: bool, profile: bool) {
    use dq_core::analysis::solver::{solve_cfd_consistency, solve_cfd_implication};
    use dq_discovery::prelude::*;

    header("Analysis bench — propagation-guided solver vs. seed exact procedures");
    let scales: &[usize] = if smoke { &[6, 8] } else { &[10, 14, 18] };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reps = if smoke { 1 } else { 3 };
    let mut rows = Vec::new();

    println!("  analysis       variant               k   rules   naive          solver        speedup   nodes");
    for &k in scales {
        let mut gadget_row = |analysis: &str,
                              variant: &str,
                              rules: usize,
                              naive_ms: f64,
                              solver_ms: f64,
                              verdict: &str,
                              stats: &AnalysisStats,
                              profile_json: String| {
            let speedup = naive_ms / solver_ms.max(1e-6);
            println!(
                "  {analysis:<12} {variant:<20} {k:>3}  {rules:>5}   {naive_ms:>10.3}ms  {solver_ms:>10.3}ms  {speedup:>7.1}x  {:>6}",
                stats.nodes
            );
            rows.push(format!(
                "    {{\"analysis\": \"{analysis}\", \"variant\": \"{variant}\", \"k\": {k}, \
                 \"rules\": {rules}, \"naive_ms\": {naive_ms:.3}, \"solver_ms\": {solver_ms:.3}, \
                 \"speedup\": {speedup:.3}, \"verdict\": \"{verdict}\", \
                 \"verdicts_identical\": true, \"solver_nodes\": {}, \
                 \"solver_propagations\": {}, \"solver_conflicts\": {}{profile_json}}}",
                stats.nodes, stats.propagations, stats.conflicts
            ));
        };

        // Consistency, inconsistent cycle: naive pays the full 2^k sweep.
        let cycle = parity_cycle_cfds(k, true);
        let (naive_ms, naive_result) = timed_median(reps, || cfd_set_consistent_naive(&cycle));
        let (solver_ms, solver_result) =
            timed_median(reps, || solve_cfd_consistency(&cycle, threads));
        assert_eq!(
            solver_result.consistent, naive_result.consistent,
            "solver and naive consistency verdicts must be identical (k = {k})"
        );
        assert!(
            !solver_result.consistent,
            "flipped parity cycle must be inconsistent"
        );
        let profile_json = profile_field(profile, &format!("consistency unsat @ k={k}"), &[]);
        gadget_row(
            "consistency",
            "inconsistent_cycle",
            cycle.len(),
            naive_ms,
            solver_ms,
            "inconsistent",
            &solver_result.stats,
            profile_json,
        );

        // Consistency, consistent cycle: both must produce a witness; the
        // solver's is validated by detection on the singleton instance.
        let cycle_ok = parity_cycle_cfds(k, false);
        let (naive_ms, naive_result) = timed_median(reps, || cfd_set_consistent_naive(&cycle_ok));
        let (solver_ms, solver_result) =
            timed_median(reps, || solve_cfd_consistency(&cycle_ok, threads));
        assert_eq!(solver_result.consistent, naive_result.consistent);
        let witness = solver_result
            .witness_tuple()
            .expect("consistent verdicts carry a witness")
            .clone();
        let mut singleton =
            dq_relation::RelationInstance::new(std::sync::Arc::clone(cycle_ok[0].schema()));
        singleton.insert(witness).expect("witness inserts");
        assert!(
            detect_cfd_violations(&singleton, &cycle_ok).is_clean(),
            "solver witness must satisfy the rule set under detection"
        );
        let profile_json = profile_field(profile, &format!("consistency sat @ k={k}"), &[]);
        gadget_row(
            "consistency",
            "consistent_cycle",
            cycle_ok.len(),
            naive_ms,
            solver_ms,
            "consistent",
            &solver_result.stats,
            profile_json,
        );

        // Implication: the boolean case split the closure cannot prove.
        let (sigma, phi) = implication_gadget(k);
        assert!(
            !cfd_implies_closure(&sigma, &phi),
            "the gadget must defeat the quadratic closure, or it measures nothing"
        );
        let (naive_ms, naive_implied) =
            timed_median(reps, || cfd_implies_exact_naive(&sigma, &phi));
        let (solver_ms, solver_result) =
            timed_median(reps, || solve_cfd_implication(&sigma, &phi, threads));
        assert_eq!(
            solver_result.implied, naive_implied,
            "solver and naive implication verdicts must be identical (k = {k})"
        );
        assert!(solver_result.implied, "the case-split gadget is implied");
        let profile_json = profile_field(profile, &format!("implication @ k={k}"), &[]);
        gadget_row(
            "implication",
            "boolean_case_split",
            sigma.len(),
            naive_ms,
            solver_ms,
            "implied",
            &solver_result.stats,
            profile_json,
        );
    }

    // ---- Rule lint showcase ----
    let (messy, inconsistent) = lint_showcase_sets();
    let messy_report = lint_cfds(&messy);
    let inconsistent_report = lint_cfds(&inconsistent);
    println!("\nrule lint — messy but consistent set:");
    for line in messy_report.render().lines() {
        println!("  {line}");
    }
    println!("rule lint — inconsistent set (minimal core):");
    for line in inconsistent_report.render().lines() {
        println!("  {line}");
    }
    assert!(messy_report.is_consistent());
    assert!(!inconsistent_report.is_consistent());
    assert_eq!(
        inconsistent_report.core().map(<[usize]>::len),
        Some(2),
        "two wildcard-LHS rules forcing different constants form the core"
    );

    // ---- Cover-pruned detection at scale ----
    let (mine_size, detect_size) = if smoke {
        (2_000, 20_000)
    } else {
        (100_000, 1_000_000)
    };
    let error_rate = 0.05;
    let mine_workload = customer_workload_scaled(mine_size, error_rate);
    let exclude = {
        let schema = mine_workload.dirty.schema();
        vec![schema.attr("phn"), schema.attr("name")]
    };
    let mined = discover_cfds(
        &mine_workload.dirty,
        &CfdDiscoveryConfig {
            exclude,
            ..CfdDiscoveryConfig::default()
        },
    );
    // Mined rules plus the curated paper set: the overlap (the workload is
    // generated from the paper dependencies) is what cover pruning removes.
    let mut full: Vec<Cfd> = mined.all();
    full.extend(dq_gen::customer::paper_cfds());
    assert_eq!(
        solve_cfd_consistency(&full, threads).consistent,
        cfd_set_consistent_naive(&full).consistent,
        "solver and naive consistency verdicts must be identical on the mined set"
    );
    let (cover_ms, covered) = timed(|| cfd_minimal_cover(&full));
    let normalized: usize = full.iter().map(|c| c.normalize().len()).sum();
    let dropped = normalized - covered.len();
    // Both sides detected in the same merged-tableau representation, so the
    // measured saving is the pruned pattern rows, not a representation
    // artifact.
    let full_merged = merge_fragments(&full.iter().flat_map(Cfd::normalize).collect::<Vec<_>>());
    let covered_merged = merge_fragments(&covered);
    let detect_workload = customer_workload_scaled(detect_size, error_rate);
    let detect_reps = if smoke { 3 } else { 1 };
    let (full_ms, full_report) = timed_median(detect_reps, || {
        DetectionEngine::new().detect_cfd_violations(&detect_workload.dirty, &full_merged)
    });
    let (covered_ms, covered_report) = timed_median(detect_reps, || {
        DetectionEngine::new().detect_cfd_violations(&detect_workload.dirty, &covered_merged)
    });
    assert_eq!(
        full_report.is_clean(),
        covered_report.is_clean(),
        "cover pruning must not change the clean verdict"
    );
    let saved = full_ms - covered_ms;
    println!(
        "\ncover-pruned detection @ {detect_size} tuples: {normalized} normalized rules -> {} \
         ({dropped} dropped, cover in {cover_ms:.1}ms), detection {full_ms:.1}ms -> {covered_ms:.1}ms \
         ({saved:.1}ms saved)",
        covered.len()
    );
    let profile_json = profile_field(profile, "cover-pruned detection", &[]);
    rows.push(format!(
        "    {{\"analysis\": \"minimal_cover\", \"variant\": \"mined_plus_paper_rules\", \
         \"mine_tuples\": {mine_size}, \"detect_tuples\": {detect_size}, \
         \"rules_normalized\": {normalized}, \"rules_covered\": {}, \"cover_dropped\": {dropped}, \
         \"cover_ms\": {cover_ms:.3}, \"detect_full_ms\": {full_ms:.3}, \
         \"detect_covered_ms\": {covered_ms:.3}, \"detect_ms_saved\": {saved:.3}, \
         \"verdicts_identical\": true{profile_json}}}",
        covered.len()
    ));

    if smoke {
        println!(
            "\nsmoke mode: solver/naive verdicts identical on every row, artifact not written"
        );
        return;
    }
    let json = format!(
        "{{\n  \"experiment\": \"table1_static_analysis_solver_vs_naive\",\n  \
         \"workload\": \"parity-cycle and case-split gadgets; dq_gen::customer mined rules, error_rate {error_rate}, seed 42\",\n  \
         \"threads\": {threads},\n  \"lint_messy\": {},\n  \"lint_inconsistent\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        messy_report.to_json(),
        inconsistent_report.to_json(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_analysis.json", &json).expect("write BENCH_analysis.json");
    println!("\nwrote BENCH_analysis.json");
}

/// Standalone `--profile` mode: one compact composite workload — CFD
/// detection (cold, warm, then a patch-maintained round over donor-copy
/// edits), interned FD/CFD/IND discovery and a U-repair fixpoint — run
/// under the enabled recorder, followed by the span-tree flame summary
/// and the full [`dq_obs::MetricsSnapshot`] JSON.  The snapshot pours the
/// engine's pool stats and the columnar store's dictionary stats in
/// through their `MetricSource` impls, so the poll-only structs and the
/// live recorder land in one document: index build/extend/patch timings,
/// partition cache hits/misses, per-level lattice spans and per-round
/// repair cost all in one place.
fn profile_mode() {
    use dq_discovery::prelude::*;

    header("Profile — composite detection/discovery/repair workload");
    let size = 5_000;
    let error_rate = 0.05;
    let workload = customer_workload_scaled(size, error_rate);
    let cfds = dq_gen::customer::paper_cfds();
    let engine = DetectionEngine::new();

    // Detection: cold, warm, then one maintained round over a handful of
    // donor-copy edits so the patch path (index patches, report
    // maintenance) shows up alongside the full builds.
    let report = engine.detect_cfd_violations(&workload.dirty, &cfds);
    let _ = engine.detect_cfd_violations(&workload.dirty, &cfds);
    let mut patched = workload.dirty.clone();
    let maintained = engine.maintain_cfd_violations(&patched, &cfds, None);
    let ids = patched.ids();
    let arity = patched.schema().arity();
    for i in 0..16usize {
        let attr = i % arity;
        let value = patched
            .tuple(ids[(i * 7 + 1) % ids.len()])
            .expect("live")
            .get(attr)
            .clone();
        patched
            .update_cell(CellRef::new(ids[i % ids.len()], attr), value)
            .expect("donor values are in-domain");
    }
    let maintained = engine.maintain_cfd_violations(&patched, &cfds, Some(&maintained));

    // Discovery: the interned sweeps, fanned out across two workers so the
    // striped partition cache records hits, builds and races.
    let schema = workload.dirty.schema().clone();
    let exclude = vec![schema.attr("phn"), schema.attr("name")];
    let fds = discover_fds(
        &workload.dirty,
        &FdDiscoveryConfig {
            max_lhs: 2,
            max_g3: 0.0,
            exclude: exclude.clone(),
            use_interned: true,
            threads: 2,
        },
    );
    let mined = discover_cfds(
        &workload.dirty,
        &CfdDiscoveryConfig {
            min_support: 4,
            max_lhs: 2,
            exclude,
            use_interned: true,
            threads: 2,
            ..CfdDiscoveryConfig::default()
        },
    );
    let orders = order_workload(2_000, 0.05);
    let inds = discover_inds(
        &orders.db,
        &IndDiscoveryConfig {
            use_interned: true,
            ..IndDiscoveryConfig::default()
        },
    )
    .expect("schemas are compatible");

    // Repair: a smaller dirty instance through the engine-backed fixpoint,
    // so per-round cost histograms have several rounds to bucket.
    let repair_workload = customer_workload_scaled(1_000, error_rate);
    let outcome = repair_cfd_violations_with_engine(
        &repair_workload.dirty,
        &cfds,
        &RepairCost::uniform(),
        &RepairConfig::default(),
        &engine,
    )
    .expect("paper CFD set is consistent");

    println!(
        "workload: {} violations detected ({} maintained after edits), \
         {} FDs / {} CFDs / {} INDs discovered, repair converged in {} rounds (cost {:.1})",
        report.total(),
        maintained.report().total(),
        fds.fds.len(),
        mined.len(),
        inds.inds.len(),
        outcome.rounds,
        outcome.log.cost
    );

    let mut snap = dq_obs::recorder().snapshot();
    // Polled one-pool stats land under `engine.pool` — the live `pool.*`
    // counters aggregate every pool in the process, so the names must not
    // collide (snapshot counters are additive on ingest).
    snap.ingest("engine.pool", &engine.pool_stats());
    snap.ingest("columnar", &workload.dirty.columnar().stats());
    println!("\nspan tree (total ms · calls · ms/call · % of parent):");
    print!("{}", snap.render_span_tree());
    println!("\nmetrics snapshot:");
    println!("{}", snap.to_json());
}

fn figures_1_and_2() {
    header("Fig. 1 / Fig. 2 — CFDs catch what FDs miss, and detection scales");
    let d0 = dq_gen::customer::paper_instance();
    let fds = dq_gen::customer::paper_fds();
    let cfds = dq_gen::customer::paper_cfds();
    println!(
        "paper instance D0: FD violations = {}, CFD violations = {}, dirty tuples = {}/3",
        fds.iter().map(|f| f.violations(&d0).len()).sum::<usize>(),
        detect_cfd_violations(&d0, &cfds).total(),
        detect_cfd_violations(&d0, &cfds).violating_tuples().len()
    );
    println!("\n tuples   err%   FD-detected   CFD-detected   detection-time");
    for &size in &[1_000usize, 10_000, 50_000] {
        for &rate in &[0.01, 0.05] {
            let w = customer_workload(size, rate);
            let start = Instant::now();
            let report = detect_cfd_violations(&w.dirty, &cfds);
            let elapsed = start.elapsed();
            let fd_found: usize = fds.iter().map(|f| f.violations(&w.dirty).len()).sum();
            println!(
                "{:>7}  {:>4.0}%  {:>12}  {:>13}  {:>10.1}ms",
                size,
                rate * 100.0,
                fd_found,
                report.total(),
                elapsed.as_secs_f64() * 1e3
            );
        }
    }
}

fn figures_3_and_4() {
    header("Fig. 3 / Fig. 4 — CIND detection across source and target");
    let db = paper_database();
    let cinds = paper_cinds();
    let report = detect_cind_violations(&db, &cinds).unwrap();
    println!(
        "paper instance D1: cind1 = {}, cind2 = {}, cind3 = {} violations",
        report.of(0).len(),
        report.of(1).len(),
        report.of(2).len()
    );
    println!("\n orders   inj.violations   detected   time");
    for &size in &[1_000usize, 10_000, 50_000] {
        let w = order_workload(size, 0.05);
        let start = Instant::now();
        let report = detect_cind_violations(&w.db, &cinds).unwrap();
        let elapsed = start.elapsed();
        println!(
            "{:>7}  {:>15}  {:>9}  {:>6.1}ms",
            size,
            w.broken_orders.len() + w.broken_cds.len(),
            report.total(),
            elapsed.as_secs_f64() * 1e3
        );
    }
}

fn section_2_3_ecfds() {
    header("Section 2.3 — eCFDs: consistency no harder than CFDs");
    for &n in &[50usize, 200] {
        let cfds = synthetic_cfd_set(n, 8, 0.25);
        let start = Instant::now();
        let consistent = cfd_set_consistent(&cfds).consistent;
        let cfd_time = start.elapsed();
        // The analogous eCFD set (single-constant In sets).
        let ecfds: Vec<Ecfd> = cfds
            .iter()
            .map(|c| {
                let tp = &c.tableau()[0];
                let lhs: Vec<SetPattern> = tp
                    .lhs
                    .iter()
                    .map(|p| match p.as_const() {
                        Some(v) => SetPattern::eq(v.clone()),
                        None => SetPattern::any(),
                    })
                    .collect();
                let rhs: Vec<SetPattern> = tp
                    .rhs
                    .iter()
                    .map(|p| match p.as_const() {
                        Some(v) => SetPattern::eq(v.clone()),
                        None => SetPattern::any(),
                    })
                    .collect();
                let lhs_names: Vec<&str> =
                    c.lhs().iter().map(|&a| c.schema().attr_name(a)).collect();
                let rhs_names: Vec<&str> =
                    c.rhs().iter().map(|&a| c.schema().attr_name(a)).collect();
                Ecfd::new(
                    c.schema(),
                    &lhs_names,
                    &rhs_names,
                    vec![EcfdPattern::new(lhs, rhs)],
                )
                .unwrap()
            })
            .collect();
        let start = Instant::now();
        let e_consistent = ecfd_set_consistent(&ecfds).consistent;
        let ecfd_time = start.elapsed();
        println!(
            "n = {n:>4}: CFD consistency = {consistent} in {:>8.1}µs, eCFD consistency = {e_consistent} in {:>8.1}µs",
            micros(cfd_time),
            micros(ecfd_time)
        );
    }
}

fn examples_3x_matching() {
    header("Examples 3.1 / 3.2 / Sec. 4.2 — derived RCKs improve matching");
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let sigma = example_3_1_mds(&card, &billing);
    let space = vec![
        ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("tel", "phn", vec![SimilarityOp::Equality]),
        ComparisonSpace::new(
            "FN",
            "FN",
            vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
        ),
    ];
    let rcks = derive_rcks(
        &sigma,
        &card,
        &billing,
        &space,
        &dq_match::paper::YC,
        &dq_match::paper::YB,
        3,
    );
    println!("derived RCKs ({}):", rcks.len());
    for r in &rcks {
        println!("  {r}");
    }
    let exact = RelativeKey::new(
        &card,
        &billing,
        vec![
            ("LN", "SN", SimilarityOp::Equality),
            ("addr", "post", SimilarityOp::Equality),
            ("FN", "FN", SimilarityOp::Equality),
        ],
        &dq_match::paper::YC,
        &dq_match::paper::YB,
    )
    .unwrap();
    println!("\n holders   rules            pairs  comparisons  precision  recall    f1");
    for &holders in &[1_000usize, 5_000] {
        let w = card_workload(holders);
        for (label, matcher) in [
            ("exact key", Matcher::new(vec![exact.clone()])),
            ("derived RCKs", Matcher::new(rcks.clone())),
        ] {
            let (result, quality) = matcher.evaluate(&w.card, &w.billing, &w.truth);
            println!(
                "{:>8}   {:<15} {:>6}  {:>11}  {:>9.3}  {:>6.3}  {:>5.3}",
                holders,
                label,
                result.len(),
                result.comparisons,
                quality.precision,
                quality.recall,
                quality.f1
            );
        }
    }
}

fn example_4_1_and_table1_consistency() {
    header("Example 4.1 / Table 1 — consistency analysis");
    // Example 4.1 itself.
    let d0 = dq_gen::customer::paper_cfds();
    println!(
        "paper CFDs (Fig. 2) consistent: {}",
        cfd_set_consistent(&d0).consistent
    );
    println!("Example 4.1 CFDs consistent:    {}", {
        use dq_relation::{Domain, RelationSchema};
        use std::sync::Arc;
        let s = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Bool), ("B", Domain::Text)],
        ));
        let psi1 = Cfd::new(
            &s,
            &["A"],
            &["B"],
            vec![
                PatternTuple::new(vec![cst(true)], vec![cst("b1")]),
                PatternTuple::new(vec![cst(false)], vec![cst("b2")]),
            ],
        )
        .unwrap();
        let psi2 = Cfd::new(
            &s,
            &["B"],
            &["A"],
            vec![
                PatternTuple::new(vec![cst("b1")], vec![cst(false)]),
                PatternTuple::new(vec![cst("b2")], vec![cst(true)]),
            ],
        )
        .unwrap();
        cfd_set_consistent(&[psi1, psi2]).consistent
    });
    println!("\n |Σ|    no-finite-domain (quadratic)   bool attrs (witness search)");
    for &n in &[50usize, 200, 800] {
        let infinite = synthetic_cfd_set(n, 8, 0.0);
        let finite = synthetic_cfd_set(n.min(100), 4, 0.5);
        let start = Instant::now();
        let _ = cfd_set_consistent_propagation(&infinite);
        let t1 = start.elapsed();
        let start = Instant::now();
        let _ = cfd_set_consistent(&finite);
        let t2 = start.elapsed();
        println!(
            "{n:>4}    {:>14.1}µs                {:>14.1}µs",
            micros(t1),
            micros(t2)
        );
    }
    println!("\nCINDs: always consistent (O(1)); CFDs+CINDs: bounded chase heuristic");
    let cinds = paper_cinds();
    let result = cind_set_consistent(&cinds);
    println!(
        "paper CINDs consistent = {}, witness database built = {}",
        result.consistent,
        result.witness_database().is_some()
    );
    let verdict = cfd_cind_consistent_bounded(&dq_gen::customer::paper_cfds(), &[], 1_000);
    println!("paper CFDs + no CINDs, bounded chase verdict: {verdict:?}");
}

fn table1_implication() {
    header("Table 1 — implication analysis");
    println!(" |Σ|    FD (linear)   CFD closure (quadratic)   CFD exact (coNP)   CIND chase");
    for &n in &[50usize, 200, 800] {
        let fds = synthetic_fd_set(n, 8);
        let fd_target = fds[0].clone();
        let start = Instant::now();
        let _ = fd_implies(&fds[1..], &fd_target);
        let t_fd = start.elapsed();

        let infinite = synthetic_cfd_set(n, 8, 0.0);
        let target = infinite[0].clone();
        let start = Instant::now();
        let _ = cfd_implies_closure(&infinite[1..], &target);
        let t_closure = start.elapsed();

        let finite = synthetic_cfd_set(n.min(100), 4, 0.5);
        let finite_target = finite[0].clone();
        let start = Instant::now();
        let _ = cfd_implies_exact(&finite[1..], &finite_target);
        let t_exact = start.elapsed();

        let (chain, cind_target) = cind_chain((n / 100).clamp(2, 8));
        let start = Instant::now();
        let _ = cind_implies_chase(&chain, &cind_target, 100_000);
        let t_cind = start.elapsed();

        println!(
            "{n:>4}    {:>9.1}µs   {:>20.1}µs   {:>15.1}µs   {:>9.1}µs",
            micros(t_fd),
            micros(t_closure),
            micros(t_exact),
            micros(t_cind)
        );
    }
    println!("\nfinite axiomatization: one derivation round over the paper CFDs");
    let schema = dq_gen::customer::customer_schema();
    let base: Vec<Cfd> = dq_gen::customer::paper_cfds()
        .iter()
        .flat_map(|c| c.normalize())
        .collect();
    let derived = derive_cfds_once(&schema, &base);
    let sound = derived.iter().all(|d| cfd_implies(&base, &d.cfd));
    println!(
        "derived {} CFDs, all semantically implied: {sound}",
        derived.len()
    );
}

fn example_4_2_propagation() {
    header("Example 4.2 / Theorem 4.7 — propagation through the union view");
    let (schema, sigma, view, view_schema) = propagation_setting();
    let f3 = Cfd::from_fd(&Fd::new(&view_schema, &["zip"], &["street"]));
    let f4 = Cfd::from_fd(&Fd::new(&view_schema, &["AC"], &["city"]));
    let phi7 = Cfd::new(
        &view_schema,
        &["CC", "zip"],
        &["street"],
        vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
    )
    .unwrap();
    let phi8 = Cfd::new(
        &view_schema,
        &["CC", "AC"],
        &["city"],
        vec![
            PatternTuple::new(vec![cst(44), wild()], vec![wild()]),
            PatternTuple::new(vec![cst(31), wild()], vec![wild()]),
            PatternTuple::new(vec![cst(1), wild()], vec![wild()]),
        ],
    )
    .unwrap();
    for (name, dep) in [
        ("f3 (FD)", &f3),
        ("f3+i (FD)", &f4),
        ("ϕ7 (CFD)", &phi7),
        ("ϕ8 (CFD)", &phi8),
    ] {
        let start = Instant::now();
        let result = propagates(&schema, &sigma, &view, dep).unwrap();
        println!(
            "{name:<10} propagates = {:<5}  ({:.1}µs)",
            result.holds(),
            micros(start.elapsed())
        );
    }
}

fn theorem_4_8_mds() {
    header("Theorem 4.8 — MD implication is PTIME");
    println!(" |Σ|     implication time    implied");
    for &n in &[10usize, 100, 1_000, 5_000] {
        let (sigma, target) = synthetic_md_set(n);
        let start = Instant::now();
        let implied = md_implies(&sigma, &target);
        println!(
            "{n:>5}    {:>12.1}µs      {implied}",
            micros(start.elapsed())
        );
    }
}

fn section_5_1_repair() {
    header("Section 5.1 — heuristic U-repair: cost, quality and scaling");
    let cfds = dq_gen::customer::paper_cfds();
    println!(" tuples   err%   changes   cost     precision  recall   f1     time");
    for &size in &[1_000usize, 5_000, 20_000] {
        for &rate in &[0.01, 0.05, 0.10] {
            let w = customer_workload(size, rate);
            let start = Instant::now();
            let outcome = repair_cfd_violations(
                &w.dirty,
                &cfds,
                &RepairCost::uniform(),
                &RepairConfig::default(),
            )
            .expect("paper CFD set is consistent");
            let elapsed = start.elapsed();
            let q = score_repair(&w.clean, &w.dirty, &outcome.repaired);
            println!(
                "{:>7}  {:>4.0}%  {:>8}  {:>7.1}  {:>9.3}  {:>6.3}  {:>5.3}  {:>6.1}ms",
                size,
                rate * 100.0,
                q.changes,
                outcome.log.cost,
                q.precision,
                q.recall,
                q.f1,
                elapsed.as_secs_f64() * 1e3
            );
        }
    }
}

fn example_5_1() {
    header("Example 5.1 — exponentially many repairs");
    println!("  n   tuples   repairs   enumeration time   wsd size");
    for &n in &[4usize, 8, 12, 16] {
        let (instance, constraints) = example_5_1_instance(n);
        let key = Fd::new(instance.schema(), &["A"], &["B"]);
        let wsd = WorldSetDecomposition::for_key(&instance, &key);
        if n <= 12 {
            let start = Instant::now();
            let count = count_repairs(&instance, &constraints);
            println!(
                "{n:>3}   {:>6}   {:>7}   {:>14.1}ms   {:>8}",
                instance.len(),
                count,
                Instant::now().duration_since(start).as_secs_f64() * 1e3,
                wsd.size()
            );
        } else {
            println!(
                "{n:>3}   {:>6}   {:>7}   {:>16}   {:>8}",
                instance.len(),
                wsd.world_count(),
                "(not enumerated)",
                wsd.size()
            );
        }
    }
}

fn section_5_2_cqa() {
    header("Section 5.2 — consistent query answering: oracle vs. rewriting");
    let keys = vec![KeySpec::new("account", vec![0])];
    println!(" groups  conflicts  repairs      oracle        rewriting   answers equal");
    for &conflicts in &[4usize, 8, 12] {
        let (db, constraints, query) = cqa_instance(conflicts * 4, 0.25);
        let repairs = repair_count(&db, "account", &constraints).unwrap();
        let start = Instant::now();
        let slow = certain_answers_oracle(&db, "account", &constraints, &query).unwrap();
        let t_slow = start.elapsed();
        let start = Instant::now();
        let fast = certain_answers_rewriting(&db, &keys, &query).unwrap();
        let t_fast = start.elapsed();
        println!(
            "{:>7}  {:>9}  {:>7}  {:>10.1}µs  {:>12.1}µs   {}",
            conflicts * 4,
            conflicts,
            repairs,
            micros(t_slow),
            micros(t_fast),
            slow == fast
        );
    }
    for &groups in &[1_000usize, 10_000, 50_000] {
        let (db, _, query) = cqa_instance(groups, 0.05);
        let start = Instant::now();
        let fast = certain_answers_rewriting(&db, &keys, &query).unwrap();
        println!(
            "{:>7}  {:>9}  {:>7}  {:>12}  {:>10.1}ms   (oracle infeasible)",
            groups,
            (groups as f64 * 0.05) as usize,
            "-",
            "-",
            Instant::now().duration_since(start).as_secs_f64() * 1e3,
        );
        let _ = fast;
    }
}

fn section_5_3_representations() {
    header("Section 5.3 — condensed representations of all repairs");
    println!("  n   repairs   nucleus tuples   nucleus vars   wsd size   nucleus answers = certain answers");
    let query = ConjunctiveQuery::new(
        vec!["a"],
        vec![Atom::new("r", vec![Term::var("a"), Term::var("b")])],
        vec![],
    );
    for &n in &[4usize, 8, 10] {
        let (instance, constraints) = example_5_1_instance(n);
        let key = Fd::new(instance.schema(), &["A"], &["B"]);
        let stats = nucleus_stats(&instance, &key);
        let nucleus = nucleus_for_fd(&instance, &key);
        let via_nucleus = evaluate_on_nucleus(&nucleus, "r", &query);
        let db = single_relation_db(instance.clone());
        let oracle = certain_answers_oracle(&db, "r", &constraints, &query).unwrap();
        let wsd = WorldSetDecomposition::for_key(&instance, &key);
        println!(
            "{n:>3}   {:>7}   {:>14}   {:>12}   {:>8}   {}",
            stats.represented_worlds,
            stats.nucleus_tuples,
            stats.variables,
            wsd.size(),
            via_nucleus == oracle
        );
    }
}

fn section_1_discovery() {
    use dq_discovery::prelude::*;
    header("Section 1 — profiling: discovering the cleaning rules from data");
    println!(" tuples   profile-time   FDs found   CFDs found (var+const)   discovery-time   rules hold on sample");
    for &size in &[500usize, 2_000, 8_000] {
        let workload = customer_workload(size, 0.0);
        let schema = workload.clean.schema().clone();
        let exclude = vec![schema.attr("phn"), schema.attr("name")];
        let start = Instant::now();
        let profile = dq_discovery::profile::profile_relation(&workload.clean);
        let t_profile = start.elapsed();
        let fd_config = FdDiscoveryConfig {
            max_lhs: 2,
            exclude: exclude.clone(),
            ..FdDiscoveryConfig::default()
        };
        let fds = discover_fds(&workload.clean, &fd_config);
        let cfd_config = CfdDiscoveryConfig {
            min_support: 4,
            max_lhs: 2,
            exclude,
            ..CfdDiscoveryConfig::default()
        };
        let start = Instant::now();
        let cfds = discover_cfds(&workload.clean, &cfd_config);
        let t_discovery = start.elapsed();
        let clean = detect_cfd_violations(&workload.clean, &cfds.all()).is_clean();
        println!(
            "{:>7}   {:>10.1}ms   {:>9}   {:>11}+{:<10}   {:>12.1}ms   {}",
            size,
            t_profile.as_secs_f64() * 1e3,
            fds.fds.len(),
            cfds.variable_cfds.len(),
            cfds.constant_cfds.len(),
            t_discovery.as_secs_f64() * 1e3,
            clean
        );
        let _ = profile;
    }
}

fn section_5_1_master_data() {
    use dq_cleaning::prelude::*;
    use dq_repair::quality::score_repair;
    header("Section 5.1 (remark) / Section 6 — repairing with master data vs. blind repair");
    println!(" entities   err%   matched   fusion-fixes   repair-fixes   precision/recall/F1 (master)   precision/recall/F1 (repair only)");
    let cfds = dq_gen::customer::paper_cfds();
    for &entities in &[500usize, 2_000] {
        for &rate in &[0.1, 0.25] {
            let w = master_workload(entities, rate);
            let unified = CleaningPipeline::with_master(
                cfds.clone(),
                MasterData::new(w.master.clone()),
                master_rules(),
                master_fusion_attrs(),
            )
            .run(&w.dirty)
            .expect("paper CFD set is consistent");
            let baseline = CleaningPipeline::repair_only(cfds.clone())
                .run(&w.dirty)
                .expect("paper CFD set is consistent");
            let qm = score_repair(&w.clean, &w.dirty, &unified.cleaned);
            let qb = score_repair(&w.clean, &w.dirty, &baseline.cleaned);
            println!(
                "{:>9}  {:>4.0}%   {:>7}   {:>12}   {:>12}   {:>6.2}/{:>5.2}/{:>5.2}              {:>6.2}/{:>5.2}/{:>5.2}",
                entities,
                rate * 100.0,
                unified.master_matches,
                unified.fusion_changes,
                unified.repair_changes,
                qm.precision, qm.recall, qm.f1,
                qb.precision, qb.recall, qb.f1,
            );
        }
    }
}

fn section_5_2_aggregates() {
    use dq_relation::{Domain, RelationInstance, RelationSchema, Value};
    use std::sync::Arc;
    header("Section 5.2 (remark) — range-consistent answers for aggregation queries");
    println!(" groups   conflicts   SUM range            MIN range        MAX range        COUNT certain   time");
    for &groups in &[1_000usize, 10_000, 50_000] {
        let schema = Arc::new(RelationSchema::new(
            "salary",
            [("emp", Domain::Text), ("amount", Domain::Int)],
        ));
        let mut inst = RelationInstance::new(schema);
        let mut conflicts = 0usize;
        for i in 0..groups {
            inst.insert_values([Value::str(format!("e{i}")), Value::int(1_000 + i as i64)])
                .unwrap();
            if i % 4 == 0 {
                inst.insert_values([Value::str(format!("e{i}")), Value::int(2_000 + i as i64)])
                    .unwrap();
                conflicts += 1;
            }
        }
        let amount = inst.schema().attr("amount");
        let start = Instant::now();
        let sum = range_consistent_aggregate(&inst, &[0], AggregateFn::Sum, amount);
        let min = range_consistent_aggregate(&inst, &[0], AggregateFn::Min, amount);
        let max = range_consistent_aggregate(&inst, &[0], AggregateFn::Max, amount);
        let count = range_consistent_aggregate(&inst, &[0], AggregateFn::Count, amount);
        let elapsed = start.elapsed();
        println!(
            "{:>7}   {:>9}   [{:>9.0}, {:>9.0}]   [{:>5.0}, {:>5.0}]   [{:>7.0}, {:>7.0}]   {:>13}   {:>6.1}ms",
            groups,
            conflicts,
            sum.lower, sum.upper,
            min.lower, min.upper,
            max.lower, max.upper,
            count.is_certain(),
            elapsed.as_secs_f64() * 1e3
        );
    }
}

fn section_5_3_ctables() {
    use dq_repr::ctable::CTable;
    header("Section 5.3 — c-tables: conditioned tuples represent all key repairs");
    println!("  n   worlds (repairs)   c-table size   certain tuples   every world is a repair");
    for &n in &[4usize, 8, 10] {
        let (instance, _) = example_5_1_instance(n);
        let key = Fd::new(instance.schema(), &["A"], &["B"]);
        let table = CTable::from_key_repairs(&instance, &key);
        let all_repairs = table.worlds().iter().all(|w| key.holds_on(w));
        println!(
            "{n:>3}   {:>16}   {:>12}   {:>14}   {}",
            table.world_count(),
            table.size(),
            table.certain_tuples().len(),
            all_repairs
        );
    }
}

fn section_3_1_rule_learning() {
    use dq_discovery::prelude::*;
    header("Section 3.1 — matching rules discovered via learning");
    let space = vec![
        ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
        ComparisonSpace::new(
            "FN",
            "FN",
            vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
        ),
        ComparisonSpace::new("tel", "phn", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
    ];
    println!(
        " holders   candidates   rules kept   combined P/R/F1        hand-written (LN,FN)= P/R/F1"
    );
    for &holders in &[250usize, 1_000] {
        let w = card_workload(holders);
        let start = Instant::now();
        let learned = learn_relative_keys(
            &w.card,
            &w.billing,
            &w.truth,
            &space,
            &dq_match::paper::YC,
            &dq_match::paper::YB,
            &RuleLearningConfig::default(),
        );
        let elapsed = start.elapsed();
        let baseline_key = RelativeKey::new(
            w.card.schema(),
            w.billing.schema(),
            vec![
                ("LN", "SN", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::Equality),
            ],
            &dq_match::paper::YC,
            &dq_match::paper::YB,
        )
        .expect("baseline rule");
        let baseline = Matcher::new(vec![baseline_key]).run(&w.card, &w.billing);
        let qb = score(&baseline.matches, &w.truth);
        println!(
            "{:>8}   {:>10}   {:>10}   {:.2}/{:.2}/{:.2} ({:>6.0}ms)   {:.2}/{:.2}/{:.2}",
            holders,
            learned.candidates_evaluated,
            learned.rules.len(),
            learned.combined.precision,
            learned.combined.recall,
            learned.combined.f1,
            elapsed.as_secs_f64() * 1e3,
            qb.precision,
            qb.recall,
            qb.f1
        );
    }
}

fn section_5_1_cind_insertions() {
    use dq_repair::insertion::{repair_cind_violations_by_insertion, InsertionRepairConfig};
    header("Section 5.1 — S-repair insertions for CIND violations");
    println!(" orders   dangling   inserted   rounds   consistent   time");
    let cinds = dq_gen::orders::paper_cinds();
    for &orders in &[1_000usize, 10_000] {
        let w = order_workload(orders, 0.05);
        let dangling: usize = cinds
            .iter()
            .map(|c| c.violations(&w.db).map(|v| v.len()).unwrap_or(0))
            .sum();
        let start = Instant::now();
        let outcome =
            repair_cind_violations_by_insertion(&w.db, &cinds, &InsertionRepairConfig::default())
                .expect("insertion repair runs");
        let elapsed = start.elapsed();
        println!(
            "{:>7}   {:>8}   {:>8}   {:>6}   {:>10}   {:>6.1}ms",
            orders,
            dangling,
            outcome.insertion_count(),
            outcome.rounds,
            outcome.consistent,
            elapsed.as_secs_f64() * 1e3
        );
    }
}
