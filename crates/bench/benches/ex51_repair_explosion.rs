//! Example 5.1 experiment: the number of repairs of D_n doubles with every
//! key group, and enumeration cost follows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_repair::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex51_repair_explosion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for &n in &[4usize, 8, 10] {
        let (instance, constraints) = example_5_1_instance(n);
        group.bench_with_input(BenchmarkId::new("enumerate_repairs", n), &n, |b, _| {
            b.iter(|| count_repairs(&instance, &constraints))
        });
        // The greedy deletion repair finds one repair in linear time.
        group.bench_with_input(BenchmarkId::new("single_greedy_repair", n), &n, |b, _| {
            b.iter(|| repair_by_deletion(&instance, &constraints).repaired.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
