//! Section 1 experiment: dependency profiling — discovering the cleaning
//! rules (FDs, constant and variable CFDs) from the data instead of writing
//! them by hand, scaling the instance size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::customer_workload;
use dq_discovery::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec1_discovery");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    // Profiling and discovery run on the clean generated data (rules are
    // mined from trusted samples, then enforced on dirty data).
    for &size in &[500usize, 2_000, 8_000] {
        let workload = customer_workload(size, 0.0);
        let phn = workload.clean.schema().attr("phn");
        let name = workload.clean.schema().attr("name");
        group.bench_with_input(BenchmarkId::new("profile", size), &size, |b, _| {
            b.iter(|| profile_relation(&workload.clean).columns.len())
        });
        let fd_config = FdDiscoveryConfig {
            max_lhs: 2,
            exclude: vec![phn, name],
            ..FdDiscoveryConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("fd_discovery", size), &size, |b, _| {
            b.iter(|| discover_fds(&workload.clean, &fd_config).fds.len())
        });
        let cfd_config = CfdDiscoveryConfig {
            min_support: 4,
            max_lhs: 2,
            exclude: vec![phn, name],
            ..CfdDiscoveryConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("constant_cfd_discovery", size),
            &size,
            |b, _| b.iter(|| discover_constant_cfds(&workload.clean, &cfd_config).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("full_cfd_discovery", size),
            &size,
            |b, _| b.iter(|| discover_cfds(&workload.clean, &cfd_config).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
