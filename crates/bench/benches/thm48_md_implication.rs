//! Theorem 4.8 experiment: PTIME implication of matching dependencies and
//! RCK derivation, scaling the size of the MD set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::synthetic_md_set;
use dq_match::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm48_md_implication");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for &n in &[10usize, 100, 1000] {
        let (sigma, target) = synthetic_md_set(n);
        group.bench_with_input(BenchmarkId::new("md_implication", n), &n, |b, _| {
            b.iter(|| md_implies(&sigma, &target))
        });
    }
    // RCK derivation over the paper's comparison space.
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let (sigma, _) = synthetic_md_set(4);
    let space = vec![
        ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("tel", "phn", vec![SimilarityOp::Equality]),
        ComparisonSpace::new(
            "FN",
            "FN",
            vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
        ),
    ];
    group.bench_function("rck_derivation", |b| {
        b.iter(|| {
            derive_rcks(
                &sigma,
                &card,
                &billing,
                &space,
                &dq_match::paper::YC,
                &dq_match::paper::YB,
                3,
            )
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
