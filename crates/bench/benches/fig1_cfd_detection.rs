//! Fig. 1 / Fig. 2 experiment: CFD violation detection on the customer
//! relation, scaling the number of tuples and the error rate, with the
//! traditional-FD baseline and incremental detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::{customer_workload, DETECTION_SIZES};
use dq_core::prelude::*;
use dq_gen::customer::{paper_cfds, paper_fds};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_cfd_detection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let cfds = paper_cfds();
    let fds = paper_fds();
    for &size in &DETECTION_SIZES {
        let workload = customer_workload(size, 0.05);
        group.bench_with_input(BenchmarkId::new("cfd_detection", size), &size, |b, _| {
            b.iter(|| detect_cfd_violations(&workload.dirty, &cfds).total())
        });
        // The shared-index parallel engine, cold (fresh pool every call) and
        // warm (pool amortized across calls on the unchanged instance).
        group.bench_with_input(BenchmarkId::new("engine_cold", size), &size, |b, _| {
            b.iter(|| {
                DetectionEngine::new()
                    .detect_cfd_violations(&workload.dirty, &cfds)
                    .total()
            })
        });
        let engine = DetectionEngine::new();
        group.bench_with_input(BenchmarkId::new("engine_warm", size), &size, |b, _| {
            b.iter(|| engine.detect_cfd_violations(&workload.dirty, &cfds).total())
        });
        group.bench_with_input(BenchmarkId::new("fd_baseline", size), &size, |b, _| {
            b.iter(|| {
                fds.iter()
                    .map(|fd| fd.violations(&workload.dirty).len())
                    .sum::<usize>()
            })
        });
        // Incremental detection of a 1% append.
        let mut extended = workload.dirty.clone();
        let extra = customer_workload(size / 100 + 1, 0.2);
        let added: Vec<_> = extra
            .dirty
            .iter()
            .map(|(_, t)| extended.insert(t.clone()).expect("compatible schema"))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("incremental_append", size),
            &size,
            |b, _| b.iter(|| detect_cfd_violations_incremental(&extended, &cfds, &added).total()),
        );
        let engine = DetectionEngine::new();
        group.bench_with_input(
            BenchmarkId::new("engine_incremental_append", size),
            &size,
            |b, _| {
                b.iter(|| {
                    engine
                        .detect_cfd_violations_incremental(&extended, &cfds, &added)
                        .total()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
