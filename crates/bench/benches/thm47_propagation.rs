//! Theorem 4.7 / Example 4.2 experiment: CFD propagation through the
//! three-source SPCU integration view.

use criterion::{criterion_group, criterion_main, Criterion};
use dq_bench::propagation_setting;
use dq_core::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm47_propagation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let (schema, sigma, view, view_schema) = propagation_setting();
    let f3 = Cfd::from_fd(&Fd::new(&view_schema, &["zip"], &["street"]));
    let phi7 = Cfd::new(
        &view_schema,
        &["CC", "zip"],
        &["street"],
        vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
    )
    .unwrap();
    let phi8 = Cfd::new(
        &view_schema,
        &["CC", "AC"],
        &["city"],
        vec![
            PatternTuple::new(vec![cst(44), wild()], vec![wild()]),
            PatternTuple::new(vec![cst(31), wild()], vec![wild()]),
            PatternTuple::new(vec![cst(1), wild()], vec![wild()]),
        ],
    )
    .unwrap();
    group.bench_function("fd_f3_does_not_propagate", |b| {
        b.iter(|| propagates(&schema, &sigma, &view, &f3).unwrap().holds())
    });
    group.bench_function("cfd_phi7_propagates", |b| {
        b.iter(|| propagates(&schema, &sigma, &view, &phi7).unwrap().holds())
    });
    group.bench_function("cfd_phi8_propagates", |b| {
        b.iter(|| propagates(&schema, &sigma, &view, &phi8).unwrap().holds())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
