//! Section 5.3 experiment: condensed representations — nucleus construction
//! and query evaluation vs. explicit repair enumeration, and the world-set
//! decomposition sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_core::prelude::*;
use dq_relation::{Atom, ConjunctiveQuery, Term};
use dq_repair::prelude::*;
use dq_repr::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec53_nucleus");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let query = ConjunctiveQuery::new(
        vec!["a"],
        vec![Atom::new("r", vec![Term::var("a"), Term::var("b")])],
        vec![],
    );
    for &n in &[6usize, 10, 14] {
        let (instance, constraints) = example_5_1_instance(n);
        let key = Fd::new(instance.schema(), &["A"], &["B"]);
        group.bench_with_input(
            BenchmarkId::new("nucleus_build_and_query", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let nucleus = nucleus_for_fd(&instance, &key);
                    evaluate_on_nucleus(&nucleus, "r", &query).len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("wsd_build", n), &n, |b, _| {
            b.iter(|| WorldSetDecomposition::for_key(&instance, &key).size())
        });
        if n <= 10 {
            group.bench_with_input(BenchmarkId::new("enumerate_all_repairs", n), &n, |b, _| {
                b.iter(|| count_repairs(&instance, &constraints))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
