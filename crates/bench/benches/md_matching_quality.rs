//! Section 3 / 4.2 experiment: object identification with given rules vs.
//! derived RCKs — runtime here, precision/recall in the harness tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::card_workload;
use dq_match::prelude::*;
use std::time::Duration;

fn rules(derived: bool) -> Vec<RelativeKey> {
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let yc = dq_match::paper::YC;
    let yb = dq_match::paper::YB;
    let mut rules = vec![RelativeKey::new(
        &card,
        &billing,
        vec![
            ("LN", "SN", SimilarityOp::Equality),
            ("addr", "post", SimilarityOp::Equality),
            ("FN", "FN", SimilarityOp::Equality),
        ],
        &yc,
        &yb,
    )
    .unwrap()];
    if derived {
        rules.push(
            RelativeKey::new(
                &card,
                &billing,
                vec![
                    ("email", "email", SimilarityOp::Equality),
                    ("addr", "post", SimilarityOp::Equality),
                ],
                &yc,
                &yb,
            )
            .unwrap(),
        );
        rules.push(
            RelativeKey::new(
                &card,
                &billing,
                vec![
                    ("LN", "SN", SimilarityOp::Equality),
                    ("addr", "post", SimilarityOp::Equality),
                    ("FN", "FN", SimilarityOp::edit(3)),
                ],
                &yc,
                &yb,
            )
            .unwrap(),
        );
    }
    rules
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("md_matching_quality");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for &holders in &[500usize, 2_000] {
        let workload = card_workload(holders);
        let given = Matcher::new(rules(false));
        let derived = Matcher::new(rules(true));
        group.bench_with_input(
            BenchmarkId::new("given_rules", holders),
            &holders,
            |b, _| b.iter(|| given.run(&workload.card, &workload.billing).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("with_derived_rcks", holders),
            &holders,
            |b, _| b.iter(|| derived.run(&workload.card, &workload.billing).len()),
        );
        let unblocked = Matcher::new(rules(true)).without_blocking();
        group.bench_with_input(
            BenchmarkId::new("without_blocking", holders),
            &holders,
            |b, _| b.iter(|| unblocked.run(&workload.card, &workload.billing).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
