//! Table 1 experiment: consistency and implication of CFDs / eCFDs / FDs /
//! CINDs, with and without finite-domain attributes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::{cind_chain, synthetic_cfd_set, synthetic_fd_set};
use dq_core::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_static_analyses");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &n in &[25usize, 100, 400] {
        // CFD consistency: no finite domains (quadratic case) vs. 25% bool
        // attributes (NP case, exercised by the same witness search).
        let infinite = synthetic_cfd_set(n, 8, 0.0);
        // The finite-domain workload uses a narrower schema: the witness /
        // counterexample searches are exponential in the number of
        // constrained attributes (that is the point of the NP/coNP rows), so
        // the sweep scales the number of dependencies, not the schema width.
        let finite = synthetic_cfd_set(n.min(100), 4, 0.5);
        group.bench_with_input(
            BenchmarkId::new("cfd_consistency_no_finite", n),
            &n,
            |b, _| b.iter(|| cfd_set_consistent_propagation(&infinite)),
        );
        group.bench_with_input(BenchmarkId::new("cfd_consistency_finite", n), &n, |b, _| {
            b.iter(|| cfd_set_consistent(&finite).consistent)
        });
        // CFD implication (closure vs. exact) against the first dependency.
        let target = infinite[0].clone();
        group.bench_with_input(
            BenchmarkId::new("cfd_implication_closure", n),
            &n,
            |b, _| b.iter(|| cfd_implies_closure(&infinite[1..], &target)),
        );
        let finite_target = finite[0].clone();
        group.bench_with_input(BenchmarkId::new("cfd_implication_exact", n), &n, |b, _| {
            b.iter(|| cfd_implies_exact(&finite[1..], &finite_target))
        });
        // FD baseline: always-consistent, linear implication.
        let fds = synthetic_fd_set(n, 8);
        let fd_target = fds[0].clone();
        group.bench_with_input(BenchmarkId::new("fd_implication", n), &n, |b, _| {
            b.iter(|| fd_implies(&fds[1..], &fd_target))
        });
    }

    // CIND implication by chase over growing chains (EXPTIME in general; the
    // chain family grows linearly per step but the chase re-derives the whole
    // prefix).
    for &n in &[2usize, 4, 8] {
        let (chain, target) = cind_chain(n);
        group.bench_with_input(BenchmarkId::new("cind_implication_chase", n), &n, |b, _| {
            b.iter(|| cind_implies_chase(&chain, &target, 100_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
