//! Fig. 3 / Fig. 4 experiment: CIND violation detection on the
//! order/book/CD database, scaling the number of orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::{order_workload, DETECTION_SIZES};
use dq_core::prelude::*;
use dq_gen::orders::paper_cinds;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_cind_detection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let cinds = paper_cinds();
    let inds: Vec<Ind> = cinds.iter().map(|c| c.embedded_ind()).collect();
    for &size in &DETECTION_SIZES {
        let workload = order_workload(size, 0.05);
        group.bench_with_input(BenchmarkId::new("cind_detection", size), &size, |b, _| {
            b.iter(|| {
                detect_cind_violations(&workload.db, &cinds)
                    .unwrap()
                    .total()
            })
        });
        // Baseline: the embedded traditional INDs (which flag far more
        // tuples, because they ignore the pattern conditions).
        group.bench_with_input(BenchmarkId::new("ind_baseline", size), &size, |b, _| {
            b.iter(|| {
                inds.iter()
                    .map(|i| i.violations(&workload.db).map(|v| v.len()).unwrap_or(0))
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
