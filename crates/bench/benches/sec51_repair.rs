//! Section 5.1 experiment: heuristic U-repair of CFD violations and greedy
//! X-repair (deletions) — runtime scaling; repair quality is in the harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::customer_workload;
use dq_core::prelude::*;
use dq_gen::customer::paper_cfds;
use dq_repair::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec51_repair");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    let cfds = paper_cfds();
    for &size in &[1_000usize, 5_000] {
        let workload = customer_workload(size, 0.05);
        group.bench_with_input(BenchmarkId::new("urepair", size), &size, |b, _| {
            b.iter(|| {
                repair_cfd_violations(
                    &workload.dirty,
                    &cfds,
                    &RepairCost::uniform(),
                    &RepairConfig::default(),
                )
                .expect("consistent rule set")
                .log
                .change_count()
            })
        });
        // Deletion repair against the zip -> street FD expressed as denial
        // constraints (restricted to UK tuples via the CFD in detection, but
        // deletions operate on the plain FD here).
        let schema = dq_gen::customer::customer_schema();
        let constraints = DenialConstraint::from_fd(&Fd::new(&schema, &["CC", "zip"], &["street"]));
        group.bench_with_input(
            BenchmarkId::new("xrepair_deletions", size),
            &size,
            |b, _| {
                b.iter(|| {
                    repair_by_deletion(&workload.dirty, &constraints)
                        .log
                        .deleted
                        .len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("repair_checking", size), &size, |b, _| {
            let outcome = repair_cfd_violations(
                &workload.dirty,
                &cfds,
                &RepairCost::uniform(),
                &RepairConfig::default(),
            )
            .expect("consistent rule set");
            b.iter(|| check_u_repair(&workload.dirty, &outcome.repaired, &cfds))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
