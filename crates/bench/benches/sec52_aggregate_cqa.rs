//! Section 5.2 (aggregation remark) experiment: range-consistent answers for
//! aggregation queries under key repairs — the greedy per-group bounds scale
//! linearly while the repair space grows exponentially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_cqa::prelude::*;
use dq_relation::{Domain, RelationInstance, RelationSchema, Value};
use std::sync::Arc;
use std::time::Duration;

/// A key-violating salary relation: `groups` employees, a quarter of which
/// have two conflicting salary records.
fn salary_instance(groups: usize) -> RelationInstance {
    let schema = Arc::new(RelationSchema::new(
        "salary",
        [("emp", Domain::Text), ("amount", Domain::Int)],
    ));
    let mut inst = RelationInstance::new(schema);
    for i in 0..groups {
        inst.insert_values([Value::str(format!("e{i}")), Value::int(1_000 + i as i64)])
            .expect("tuple fits the schema");
        if i % 4 == 0 {
            inst.insert_values([Value::str(format!("e{i}")), Value::int(2_000 + i as i64)])
                .expect("tuple fits the schema");
        }
    }
    inst
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec52_aggregate_cqa");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for &groups in &[1_000usize, 10_000, 50_000] {
        let inst = salary_instance(groups);
        let amount = inst.schema().attr("amount");
        let emp = inst.schema().attr("emp");
        for (label, agg) in [
            ("sum", AggregateFn::Sum),
            ("min", AggregateFn::Min),
            ("max", AggregateFn::Max),
            ("count", AggregateFn::Count),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("range_{label}"), groups),
                &groups,
                |b, _| b.iter(|| range_consistent_aggregate(&inst, &[emp], agg, amount)),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("plain_aggregate", groups),
            &groups,
            |b, _| b.iter(|| aggregate_on(&inst, AggregateFn::Sum, amount)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
