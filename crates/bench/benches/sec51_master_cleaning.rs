//! Section 5.1 (master-data remark) / Section 6 experiment: the unified
//! cleaning pipeline (object identification against master data + fusion +
//! heuristic repair) vs. blind heuristic repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::{master_fusion_attrs, master_rules, master_workload};
use dq_cleaning::prelude::*;
use dq_gen::customer::paper_cfds;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec51_master_cleaning");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    for &entities in &[500usize, 2_000] {
        let workload = master_workload(entities, 0.2);
        let with_master = CleaningPipeline::with_master(
            paper_cfds(),
            MasterData::new(workload.master.clone()),
            master_rules(),
            master_fusion_attrs(),
        );
        let repair_only = CleaningPipeline::repair_only(paper_cfds());
        group.bench_with_input(
            BenchmarkId::new("master_pipeline", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    with_master
                        .run(&workload.dirty)
                        .expect("consistent rule set")
                        .total_changes()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("repair_only", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    repair_only
                        .run(&workload.dirty)
                        .expect("consistent rule set")
                        .total_changes()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("matching_stage_only", entities),
            &entities,
            |b, _| {
                let master = MasterData::new(workload.master.clone());
                let rules = master_rules();
                b.iter(|| {
                    match_against_master(&workload.dirty, &master, &rules)
                        .0
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
