//! Section 5.2 experiment: consistent query answering — the PTIME rewriting
//! vs. the exponential repair-enumeration oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dq_bench::cqa_instance;
use dq_cqa::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec52_cqa");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let keys = vec![KeySpec::new("account", vec![0])];
    // The oracle is only feasible with a handful of conflicting groups.
    for &conflicts in &[4usize, 8, 12] {
        let (db, constraints, query) = cqa_instance(conflicts * 4, 0.25);
        group.bench_with_input(BenchmarkId::new("oracle", conflicts), &conflicts, |b, _| {
            b.iter(|| {
                certain_answers_oracle(&db, "account", &constraints, &query)
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("rewriting_same_instance", conflicts),
            &conflicts,
            |b, _| b.iter(|| certain_answers_rewriting(&db, &keys, &query).unwrap().len()),
        );
    }
    // The rewriting scales to instances far beyond the oracle.
    for &groups in &[1_000usize, 10_000] {
        let (db, _, query) = cqa_instance(groups, 0.05);
        group.bench_with_input(
            BenchmarkId::new("rewriting_large", groups),
            &groups,
            |b, _| b.iter(|| certain_answers_rewriting(&db, &keys, &query).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
