//! A shared partition source for level-wise discovery.
//!
//! TANE-style discovery asks for the partitions of many overlapping
//! attribute sets — `π_X` for every candidate LHS `X` and `π_{X ∪ {A}}` for
//! every candidate FD `X → A`.  Rebuilding each one from the row store
//! (hashing a `Vec<Value>` projection per tuple per candidate) is the
//! dominant cost of discovery on large instances.  [`PartitionSource`]
//! instead serves every request from three layers of reuse:
//!
//! 1. **interned indexes** — single-attribute partitions fall out of the
//!    CSR postings of [`dq_relation::InternedIndex`]es, pooled in a shared
//!    [`IndexPool`] keyed by `(instance, version, attrs)`, so the same
//!    physical index also serves detection and repair;
//! 2. **partition products** — multi-attribute partitions are computed as
//!    `π_X · π_A` over already-cached partitions through a reusable
//!    [`PartitionProber`] probe table (stripped partitions shrink rapidly
//!    with width, so products touch far fewer tuples than a rebuild);
//! 3. **memoization** — partitions are cached by their sorted attribute
//!    set, so `X` and any permutation of `X` share one materialization
//!    across FD discovery, CFD conditioning and profiling.
//!
//! The legacy `Vec<Value>`-keyed path ([`StrippedPartition::build`]) stays
//! available behind the same interface for equivalence testing and for the
//! `--discovery-bench` comparison.

use crate::partition::{g3_error, g3_error_interned, PartitionProber, StrippedPartition};
use dq_relation::{IndexPool, RelationInstance};
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::Arc;

/// Serves stripped partitions (and `g3` errors) for one instance, either
/// from pooled interned indexes (the fast path) or from the legacy
/// value-keyed builds.
pub struct PartitionSource<'a> {
    instance: &'a RelationInstance,
    pool: Arc<IndexPool>,
    threads: usize,
    interned: bool,
    cache: HashMap<Vec<usize>, Arc<StrippedPartition>>,
    prober: PartitionProber,
    built: usize,
}

impl<'a> PartitionSource<'a> {
    /// An interned source over a shared pool, parallelizing cold index
    /// builds across up to `threads` workers.
    pub fn interned(instance: &'a RelationInstance, pool: Arc<IndexPool>, threads: usize) -> Self {
        PartitionSource {
            instance,
            pool,
            threads: threads.max(1),
            interned: true,
            cache: HashMap::new(),
            prober: PartitionProber::new(),
            built: 0,
        }
    }

    /// The legacy source: every partition is built from the row store with
    /// `Vec<Value>` keys.  Kept for equivalence tests and benchmarks.
    pub fn naive(instance: &'a RelationInstance) -> Self {
        PartitionSource {
            instance,
            pool: Arc::new(IndexPool::new()),
            threads: 1,
            interned: false,
            cache: HashMap::new(),
            prober: PartitionProber::new(),
            built: 0,
        }
    }

    /// An interned source with a private pool sized to the machine.
    pub fn with_fresh_pool(instance: &'a RelationInstance) -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::interned(instance, Arc::new(IndexPool::new()), threads)
    }

    /// Number of partitions materialized so far (cache hits excluded).
    pub fn partitions_built(&self) -> usize {
        self.built
    }

    /// The shared index pool behind the interned path.
    pub fn pool(&self) -> &Arc<IndexPool> {
        &self.pool
    }

    /// The stripped partition of the instance on `attrs` (order and
    /// duplicates ignored), memoized by sorted attribute set.
    pub fn partition(&mut self, attrs: &[usize]) -> Arc<StrippedPartition> {
        let mut key = attrs.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(p) = self.cache.get(&key) {
            return Arc::clone(p);
        }
        self.built += 1;
        let partition = if !self.interned {
            Arc::new(StrippedPartition::build(self.instance, &key))
        } else if key.len() <= 1 {
            let index = self.pool.interned_for(self.instance, &key, self.threads);
            Arc::new(StrippedPartition::from_interned(&index))
        } else {
            // π_{X ∪ {A}} = π_X · π_A over the reusable probe table; both
            // operands come out of this cache (built recursively on a cold
            // miss), so a level-wise sweep touches each index once.
            let (rest, last) = key.split_at(key.len() - 1);
            let left = self.partition(rest);
            let right = self.partition(last);
            Arc::new(left.product_with(&right, &mut self.prober))
        };
        self.cache.insert(key, Arc::clone(&partition));
        partition
    }

    /// The `g3` error of `lhs → rhs`, routed through the pooled interned
    /// index of `lhs` on the fast path.
    pub fn g3(&mut self, lhs: &[usize], rhs: &[usize]) -> f64 {
        if self.interned {
            let index = self.pool.interned_for(self.instance, lhs, self.threads);
            g3_error_interned(&index, self.instance, rhs)
        } else {
            g3_error(self.instance, lhs, rhs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationSchema, Value};

    fn instance() -> RelationInstance {
        let schema = RelationSchema::new(
            "r",
            [("a", Domain::Text), ("b", Domain::Text), ("c", Domain::Int)],
        );
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b, c) in [
            ("x", "p", 1),
            ("x", "p", 1),
            ("x", "q", 1),
            ("y", "p", 2),
            ("y", "p", 2),
            ("z", "q", 3),
        ] {
            inst.insert_values([Value::str(a), Value::str(b), Value::int(c)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn interned_source_matches_naive_builds() {
        let inst = instance();
        let mut fast = PartitionSource::with_fresh_pool(&inst);
        let mut slow = PartitionSource::naive(&inst);
        for attrs in [&[0usize][..], &[1], &[2], &[0, 1], &[1, 2], &[0, 1, 2], &[]] {
            assert_eq!(
                *fast.partition(attrs),
                *slow.partition(attrs),
                "attrs {attrs:?}"
            );
            assert_eq!(
                *fast.partition(attrs),
                StrippedPartition::build(&inst, attrs),
                "attrs {attrs:?} vs direct build"
            );
        }
    }

    #[test]
    fn partitions_are_memoized_across_permutations() {
        let inst = instance();
        let mut source = PartitionSource::with_fresh_pool(&inst);
        let a = source.partition(&[0, 1]);
        let built = source.partitions_built();
        let b = source.partition(&[1, 0]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(source.partitions_built(), built, "permutation is a hit");
    }

    #[test]
    fn g3_agrees_between_paths() {
        let inst = instance();
        let mut fast = PartitionSource::with_fresh_pool(&inst);
        let mut slow = PartitionSource::naive(&inst);
        for (lhs, rhs) in [
            (&[0usize][..], &[1usize][..]),
            (&[1], &[0]),
            (&[0, 1], &[2]),
            (&[2], &[0]),
        ] {
            assert_eq!(fast.g3(lhs, rhs), slow.g3(lhs, rhs), "{lhs:?} -> {rhs:?}");
        }
    }
}
