//! A shared, concurrent partition source for level-wise discovery.
//!
//! TANE-style discovery asks for the partitions of many overlapping
//! attribute sets — `π_X` for every candidate LHS `X` and `π_{X ∪ {A}}` for
//! every candidate FD `X → A`.  Rebuilding each one from the row store
//! (hashing a `Vec<Value>` projection per tuple per candidate) is the
//! dominant cost of discovery on large instances.  [`PartitionSource`]
//! instead serves every request from three layers of reuse:
//!
//! 1. **interned indexes** — single-attribute partitions fall out of the
//!    CSR postings of [`dq_relation::InternedIndex`]es, pooled in a shared
//!    [`IndexPool`] keyed by `(instance, version, attrs)`, so the same
//!    physical index also serves detection and repair;
//! 2. **partition products** — multi-attribute partitions are computed as
//!    `π_X · π_A` over already-cached partitions through a pooled
//!    [`PartitionProber`] probe table (stripped partitions shrink rapidly
//!    with width, so products touch far fewer tuples than a rebuild);
//! 3. **memoization** — partitions are cached by their sorted attribute
//!    set, so `X` and any permutation of `X` share one materialization
//!    across FD discovery, CFD conditioning and profiling.
//!
//! The source is **concurrent**: every method takes `&self`, so the
//! independent candidates of one lattice level can fan out across the
//! engine's thread pool ([`dq_core::engine::parallel_map`]) and validate
//! against one shared source.  Three pieces make that safe without
//! serializing the level:
//!
//! * the partition cache is **lock-striped** — requests hash their sorted
//!   attribute set onto one of [`STRIPES`] independent `RwLock`ed maps, so
//!   readers of different partitions never contend and writers only block
//!   their own stripe;
//! * partitions are **built outside every lock** (products recurse through
//!   `partition` itself, so holding a stripe while building could deadlock
//!   on the same stripe); two workers missing on the same cold key both
//!   build and the first insert wins — the loser's duplicate is discarded
//!   and counted in [`PartitionSource::duplicate_races`];
//! * probe tables come from a **prober pool** — a worker borrows an
//!   epoch-stamped [`PartitionProber`] for exactly one product and returns
//!   it, so scratch buffers are reused across calls but never shared
//!   between threads mid-product.
//!
//! Because a partition's value depends only on its key, races change
//! neither the cache contents nor [`partitions_built`]
//! ([`PartitionSource::partitions_built`] counts winning inserts, i.e.
//! distinct materialized attribute sets — the same number the sequential
//! sweep reports).
//!
//! The legacy `Vec<Value>`-keyed path ([`StrippedPartition::build`]) stays
//! available behind the same interface for equivalence testing and for the
//! `--discovery-bench` comparison.

use crate::partition::{
    g3_error, g3_error_from_shards, g3_error_interned, PartitionProber, StrippedPartition,
};
use dq_relation::{FxHasher, IndexPool, RelationInstance, ShardSource};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of independent cache stripes.  Power of two, comfortably above
/// any realistic worker count so that stripe collisions between concurrent
/// writers stay rare.
const STRIPES: usize = 32;

/// Resolves a configured worker count: `0` means "size to the machine".
pub(crate) fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    }
}

/// Serves stripped partitions (and `g3` errors) for one instance, either
/// from pooled interned indexes (the fast path) or from the legacy
/// value-keyed builds.  Shareable across worker threads: see the module
/// docs for the concurrency design.
pub struct PartitionSource<'a> {
    backend: Backend<'a>,
    pool: Arc<IndexPool>,
    threads: usize,
    stripes: Vec<RwLock<HashMap<Vec<usize>, Arc<StrippedPartition>>>>,
    probers: Mutex<Vec<PartitionProber>>,
    built: AtomicUsize,
    races: AtomicUsize,
    obs: SourceObs,
}

/// Where single-attribute partitions and `g3` tallies come from.
enum Backend<'a> {
    /// Pooled interned indexes over a live instance (the fast path).
    Interned(&'a RelationInstance),
    /// Legacy `Vec<Value>`-keyed builds from the row store.
    Naive(&'a RelationInstance),
    /// Shard-cursor scans over an in-RAM snapshot or a memory-mapped
    /// relation — no pooled indexes, no row store, memory bounded by the
    /// dictionaries plus the partitions themselves.
    Shards(&'a dyn ShardSource),
}

/// Pre-registered `dq-obs` handles mirroring the partition cache's
/// counters as live metrics (near-no-ops while recording is off).
struct SourceObs {
    hits: dq_obs::Counter,
    built: dq_obs::Counter,
    races: dq_obs::Counter,
    build_ns: dq_obs::Histogram,
}

impl SourceObs {
    fn new() -> Self {
        let rec = dq_obs::recorder();
        SourceObs {
            hits: rec.counter("partition.hits"),
            built: rec.counter("partition.built"),
            races: rec.counter("partition.races"),
            build_ns: rec.histogram("partition.build_ns"),
        }
    }
}

impl<'a> PartitionSource<'a> {
    fn with_backend(backend: Backend<'a>, pool: Arc<IndexPool>, threads: usize) -> Self {
        PartitionSource {
            backend,
            pool,
            threads: threads.max(1),
            stripes: (0..STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
            probers: Mutex::new(Vec::new()),
            built: AtomicUsize::new(0),
            races: AtomicUsize::new(0),
            obs: SourceObs::new(),
        }
    }

    /// An interned source over a shared pool, parallelizing cold index
    /// builds across up to `threads` workers.
    pub fn interned(instance: &'a RelationInstance, pool: Arc<IndexPool>, threads: usize) -> Self {
        Self::with_backend(Backend::Interned(instance), pool, threads)
    }

    /// The legacy source: every partition is built from the row store with
    /// `Vec<Value>` keys.  Kept for equivalence tests and benchmarks.
    pub fn naive(instance: &'a RelationInstance) -> Self {
        Self::with_backend(Backend::Naive(instance), Arc::new(IndexPool::new()), 1)
    }

    /// A shard-cursor source: single-attribute partitions and `g3` tallies
    /// come from sequential scans of `source`'s shards
    /// ([`StrippedPartition::from_shards`]), wider partitions from products
    /// over the cache as usual.  Works over a memory-mapped relation
    /// without ever materializing tuples or pooled indexes.
    pub fn from_shards(source: &'a dyn ShardSource, threads: usize) -> Self {
        Self::with_backend(Backend::Shards(source), Arc::new(IndexPool::new()), threads)
    }

    /// An interned source with a private pool sized to the machine.
    pub fn with_fresh_pool(instance: &'a RelationInstance) -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::interned(instance, Arc::new(IndexPool::new()), threads)
    }

    /// Number of distinct partitions materialized so far (cache hits and
    /// discarded duplicate builds excluded) — identical between a
    /// sequential and a fanned-out sweep over the same candidates.
    pub fn partitions_built(&self) -> usize {
        self.built.load(Ordering::Relaxed)
    }

    /// Number of duplicate builds discarded because a concurrent worker
    /// built and inserted the same partition first.  Always 0 for a
    /// single-threaded sweep.
    pub fn duplicate_races(&self) -> usize {
        self.races.load(Ordering::Relaxed)
    }

    /// The shared index pool behind the interned path.
    pub fn pool(&self) -> &Arc<IndexPool> {
        &self.pool
    }

    /// The stripe holding `key`'s cache slot.
    fn stripe(&self, key: &[usize]) -> &RwLock<HashMap<Vec<usize>, Arc<StrippedPartition>>> {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        &self.stripes[hasher.finish() as usize % STRIPES]
    }

    /// Runs `f` over a prober borrowed from the pool — exclusive for the
    /// duration of one product, its scratch capacity retained across calls.
    fn with_prober<R>(&self, f: impl FnOnce(&mut PartitionProber) -> R) -> R {
        let mut prober = self
            .probers
            .lock()
            .expect("prober pool poisoned")
            .pop()
            .unwrap_or_default();
        let out = f(&mut prober);
        self.probers
            .lock()
            .expect("prober pool poisoned")
            .push(prober);
        out
    }

    /// The stripped partition of the instance on `attrs` (order and
    /// duplicates ignored), memoized by sorted attribute set.
    pub fn partition(&self, attrs: &[usize]) -> Arc<StrippedPartition> {
        let mut key = attrs.to_vec();
        key.sort_unstable();
        key.dedup();
        let stripe = self.stripe(&key);
        if let Some(p) = stripe.read().expect("stripe poisoned").get(&key) {
            self.obs.hits.inc();
            return Arc::clone(p);
        }
        // Build with no lock held: products recurse into `partition` (the
        // operands may live on this very stripe), and a slow build must not
        // stall readers of sibling partitions.
        let partition = Arc::new(self.obs.build_ns.time(|| self.build(&key)));
        match stripe.write().expect("stripe poisoned").entry(key) {
            Entry::Occupied(winner) => {
                // A concurrent worker built the same partition first; both
                // results are identical, keep the cached winner.
                self.races.fetch_add(1, Ordering::Relaxed);
                self.obs.races.inc();
                Arc::clone(winner.get())
            }
            Entry::Vacant(slot) => {
                self.built.fetch_add(1, Ordering::Relaxed);
                self.obs.built.inc();
                slot.insert(Arc::clone(&partition));
                partition
            }
        }
    }

    /// Materializes the partition for an already-normalized `key`.
    ///
    /// Cold pooled index builds run single-threaded here: `partition` is
    /// called from inside the level fan-out, where the candidates are the
    /// parallel axis — letting each worker also shard its build would nest
    /// up to `threads²` scoped threads and thrash.  Callers that want a
    /// big cold build to shard internally warm it up front
    /// ([`warm_singles`](Self::warm_singles)).
    fn build(&self, key: &[usize]) -> StrippedPartition {
        match &self.backend {
            Backend::Naive(instance) => StrippedPartition::build(instance, key),
            Backend::Interned(instance) if key.len() <= 1 => {
                let index = self.pool.interned_for(instance, key, 1);
                StrippedPartition::from_interned(&index)
            }
            Backend::Shards(source) if key.len() <= 1 => {
                StrippedPartition::from_shards(*source, key)
            }
            Backend::Interned(_) | Backend::Shards(_) => {
                // π_{X ∪ {A}} = π_X · π_A over a pooled probe table; both
                // operands come out of this cache (built recursively on a
                // cold miss), so a level-wise sweep touches each base
                // partition once.
                let (rest, last) = key.split_at(key.len() - 1);
                let left = self.partition(rest);
                let right = self.partition(last);
                self.with_prober(|prober| left.product_with(&right, prober))
            }
        }
    }

    /// Pre-builds the pooled single-attribute interned indexes — the
    /// dominant cold cost of a sweep — spending parallelism where it pays,
    /// exactly like the detection engine's warm pass: with at least as
    /// many attributes as workers (or a store too small to shard) the
    /// builds run concurrently with one thread each; otherwise the few
    /// builds run in sequence and each shards internally across the whole
    /// budget.  After warming, the per-level fan-out never nests parallel
    /// builds.  A no-op on the naive backend (it has no indexes to warm;
    /// its partitions are built by the fan-out itself).
    pub fn warm_singles(&self, attrs: &[usize]) {
        if attrs.is_empty() {
            return;
        }
        let singles: Vec<Vec<usize>> = attrs.iter().map(|&a| vec![a]).collect();
        match &self.backend {
            Backend::Naive(_) => {}
            Backend::Interned(instance) => {
                let sharded = instance.columnar().shard_count() > 1;
                if singles.len() >= self.threads || !sharded {
                    dq_core::engine::parallel_map(&singles, self.threads, |attrs| {
                        self.pool.interned_for(instance, attrs, 1);
                    });
                } else {
                    for attrs in &singles {
                        self.pool.interned_for(instance, attrs, self.threads);
                    }
                }
            }
            Backend::Shards(_) => {
                // Shard scans are sequential per attribute; fan the single-
                // attribute builds out across workers through the cache.
                dq_core::engine::parallel_map(&singles, self.threads, |attrs| {
                    self.partition(attrs);
                });
            }
        }
    }

    /// The `g3` error of `lhs → rhs`, routed through the pooled interned
    /// index of `lhs` on the fast path.  Like [`partition`](Self::partition),
    /// a cold index build runs single-threaded — the level fan-out calling
    /// this is the parallel axis.
    pub fn g3(&self, lhs: &[usize], rhs: &[usize]) -> f64 {
        match &self.backend {
            Backend::Interned(instance) => {
                let index = self.pool.interned_for(instance, lhs, 1);
                g3_error_interned(&index, instance, rhs)
            }
            Backend::Naive(instance) => g3_error(instance, lhs, rhs),
            Backend::Shards(source) => g3_error_from_shards(*source, lhs, rhs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::engine::parallel_map;
    use dq_relation::{Domain, RelationSchema, Value};

    fn instance() -> RelationInstance {
        let schema = RelationSchema::new(
            "r",
            [("a", Domain::Text), ("b", Domain::Text), ("c", Domain::Int)],
        );
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b, c) in [
            ("x", "p", 1),
            ("x", "p", 1),
            ("x", "q", 1),
            ("y", "p", 2),
            ("y", "p", 2),
            ("z", "q", 3),
        ] {
            inst.insert_values([Value::str(a), Value::str(b), Value::int(c)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn interned_source_matches_naive_builds() {
        let inst = instance();
        let fast = PartitionSource::with_fresh_pool(&inst);
        let slow = PartitionSource::naive(&inst);
        for attrs in [&[0usize][..], &[1], &[2], &[0, 1], &[1, 2], &[0, 1, 2], &[]] {
            assert_eq!(
                *fast.partition(attrs),
                *slow.partition(attrs),
                "attrs {attrs:?}"
            );
            assert_eq!(
                *fast.partition(attrs),
                StrippedPartition::build(&inst, attrs),
                "attrs {attrs:?} vs direct build"
            );
        }
    }

    #[test]
    fn partitions_are_memoized_across_permutations() {
        let inst = instance();
        let source = PartitionSource::with_fresh_pool(&inst);
        let a = source.partition(&[0, 1]);
        let built = source.partitions_built();
        let b = source.partition(&[1, 0]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(source.partitions_built(), built, "permutation is a hit");
    }

    #[test]
    fn g3_agrees_between_paths() {
        let inst = instance();
        let fast = PartitionSource::with_fresh_pool(&inst);
        let slow = PartitionSource::naive(&inst);
        for (lhs, rhs) in [
            (&[0usize][..], &[1usize][..]),
            (&[1], &[0]),
            (&[0, 1], &[2]),
            (&[2], &[0]),
        ] {
            assert_eq!(fast.g3(lhs, rhs), slow.g3(lhs, rhs), "{lhs:?} -> {rhs:?}");
        }
    }

    #[test]
    fn concurrent_requests_share_one_materialization_per_key() {
        let inst = instance();
        let source = PartitionSource::with_fresh_pool(&inst);
        let attr_sets: Vec<Vec<usize>> = vec![
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![0, 1, 2],
        ];
        // Every worker requests every key; the cache must end up with one
        // partition per distinct set, all equal to the direct builds.
        let requests: Vec<usize> = (0..8).collect();
        let per_worker = parallel_map(&requests, 8, |_| {
            attr_sets
                .iter()
                .map(|attrs| source.partition(attrs))
                .collect::<Vec<_>>()
        });
        for partitions in &per_worker {
            for (attrs, partition) in attr_sets.iter().zip(partitions) {
                assert_eq!(
                    **partition,
                    StrippedPartition::build(&inst, attrs),
                    "attrs {attrs:?}"
                );
            }
        }
        assert_eq!(
            source.partitions_built(),
            attr_sets.len(),
            "built counts distinct materializations, not duplicate races"
        );
    }

    #[test]
    fn sequential_sweeps_never_count_races() {
        let inst = instance();
        let source = PartitionSource::with_fresh_pool(&inst);
        for attrs in [&[0usize][..], &[1], &[0, 1], &[0, 1, 2]] {
            source.partition(attrs);
            source.partition(attrs);
        }
        assert_eq!(source.duplicate_races(), 0);
    }
}
