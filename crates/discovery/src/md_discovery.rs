//! Learning matching rules (relative keys) from labelled examples.
//!
//! Section 3.1 notes that matching rules are "either specified by human
//! experts or discovered via learning [48]".  This module implements the
//! learning side for the rule language of Section 3.2: given two relations,
//! a set of ground-truth matches, and a comparison space (which attribute
//! pairs the deployment can compare, and with which similarity operators),
//! it searches for relative keys that are precise on the labelled data and
//! greedily assembles a small rule set that maximises recall — the
//! dependency-shaped counterpart of learned comparison vectors.

use dq_match::matcher::{score, MatchQuality, Matcher};
use dq_match::rck::{ComparisonSpace, RelativeKey};
use dq_match::similarity::SimilarityOp;
use dq_relation::{RelationInstance, RelationSchema, TupleId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of rule learning.
#[derive(Clone, Debug)]
pub struct RuleLearningConfig {
    /// Maximum number of comparisons per rule.
    pub max_length: usize,
    /// Minimum precision (on the labelled data) for a candidate rule to be
    /// admitted.
    pub min_precision: f64,
    /// Stop adding rules once combined recall reaches this level.
    pub target_recall: f64,
    /// Upper bound on the number of rules returned.
    pub max_rules: usize,
}

impl Default for RuleLearningConfig {
    fn default() -> Self {
        RuleLearningConfig {
            max_length: 2,
            min_precision: 0.95,
            target_recall: 0.99,
            max_rules: 4,
        }
    }
}

/// A learned rule with its individual quality on the labelled data.
#[derive(Clone, Debug)]
pub struct LearnedRule {
    /// The relative key.
    pub key: RelativeKey,
    /// Precision/recall/F1 of the rule on its own.
    pub quality: MatchQuality,
}

/// The outcome of rule learning.
#[derive(Clone, Debug)]
pub struct LearnedRuleSet {
    /// The selected rules, in the order they were added by the greedy cover.
    pub rules: Vec<LearnedRule>,
    /// Quality of the whole rule set (union of the matches of its rules).
    pub combined: MatchQuality,
    /// Number of candidate rules evaluated.
    pub candidates_evaluated: usize,
}

impl LearnedRuleSet {
    /// The bare relative keys, ready to hand to a
    /// [`Matcher`](dq_match::matcher::Matcher).
    pub fn keys(&self) -> Vec<RelativeKey> {
        self.rules.iter().map(|r| r.key.clone()).collect()
    }
}

/// Learns a set of relative keys for `(target_left, target_right)` from
/// labelled matches.
///
/// Candidates are all rules of up to [`RuleLearningConfig::max_length`]
/// comparisons drawn from the comparison space (one operator per attribute
/// pair).  Each candidate is run as the sole matching rule and scored against
/// `truth`; candidates below the precision floor are discarded, and the
/// remainder are added greedily — most new true matches first — until the
/// target recall (or the rule budget) is reached.
pub fn learn_relative_keys(
    d1: &RelationInstance,
    d2: &RelationInstance,
    truth: &BTreeSet<(TupleId, TupleId)>,
    space: &[ComparisonSpace],
    target_left: &[&str],
    target_right: &[&str],
    config: &RuleLearningConfig,
) -> LearnedRuleSet {
    learn_with_runner(
        d1,
        d2,
        truth,
        space,
        target_left,
        target_right,
        config,
        &|key| Matcher::new(vec![key.clone()]).run(d1, d2).matches,
    )
}

/// [`learn_relative_keys`] with candidate scoring routed through an interned
/// [`MatchingEngine`](dq_match::engine::MatchingEngine).
///
/// The learning loop runs every candidate rule as a matcher over the same
/// two instances, so the engine's dictionary artifacts (display forms,
/// equality translations, memoized similarity verdicts) are built once and
/// reused across all candidates — exactly the access pattern the memo cache
/// is for.  The returned [`LearnedRuleSet`] is byte-identical to the naive
/// path: same rules in the same order, same qualities, same candidate
/// count.
#[allow(clippy::too_many_arguments)]
pub fn learn_relative_keys_with_pool(
    d1: &RelationInstance,
    d2: &RelationInstance,
    truth: &BTreeSet<(TupleId, TupleId)>,
    space: &[ComparisonSpace],
    target_left: &[&str],
    target_right: &[&str],
    config: &RuleLearningConfig,
    engine: &dq_match::engine::MatchingEngine,
) -> LearnedRuleSet {
    learn_with_runner(
        d1,
        d2,
        truth,
        space,
        target_left,
        target_right,
        config,
        &|key| {
            Matcher::new(vec![key.clone()])
                .run_with(engine, d1, d2)
                .matches
        },
    )
}

/// The shared learning loop: enumerate candidates, score each with
/// `run_rule`, then greedily cover the truth.  Both public entry points
/// differ only in how a single rule is executed (and the two executions
/// produce identical match sets), so everything downstream is shared.
#[allow(clippy::too_many_arguments)]
fn learn_with_runner(
    d1: &RelationInstance,
    d2: &RelationInstance,
    truth: &BTreeSet<(TupleId, TupleId)>,
    space: &[ComparisonSpace],
    target_left: &[&str],
    target_right: &[&str],
    config: &RuleLearningConfig,
    run_rule: &dyn Fn(&RelativeKey) -> BTreeSet<(TupleId, TupleId)>,
) -> LearnedRuleSet {
    let lhs_schema: &Arc<RelationSchema> = d1.schema();
    let rhs_schema: &Arc<RelationSchema> = d2.schema();

    // Enumerate candidate rules: choose up to `max_length` space entries and
    // one operator per entry.
    let mut candidates: Vec<RelativeKey> = Vec::new();
    let entry_count = space.len();
    let max_len = config.max_length.min(entry_count).max(1);
    for len in 1..=max_len {
        for combo in combinations(entry_count, len) {
            let mut operator_choices: Vec<Vec<(usize, SimilarityOp)>> = vec![Vec::new()];
            for &entry_idx in &combo {
                let mut next = Vec::new();
                for op in &space[entry_idx].operators {
                    for partial in &operator_choices {
                        let mut extended = partial.clone();
                        extended.push((entry_idx, op.clone()));
                        next.push(extended);
                    }
                }
                operator_choices = next;
            }
            for choice in operator_choices {
                let comparisons: Vec<(&str, &str, SimilarityOp)> = choice
                    .iter()
                    .map(|(idx, op)| {
                        (
                            space[*idx].left.as_str(),
                            space[*idx].right.as_str(),
                            op.clone(),
                        )
                    })
                    .collect();
                if let Ok(key) = RelativeKey::new(
                    lhs_schema,
                    rhs_schema,
                    comparisons,
                    target_left,
                    target_right,
                ) {
                    candidates.push(key);
                }
            }
        }
    }

    // Score every candidate on its own.
    type Scored = (RelativeKey, MatchQuality, BTreeSet<(TupleId, TupleId)>);
    let mut scored: Vec<Scored> = Vec::new();
    let candidates_evaluated = candidates.len();
    for key in candidates {
        let matches = run_rule(&key);
        let quality = score(&matches, truth);
        if quality.precision >= config.min_precision && !matches.is_empty() {
            scored.push((key, quality, matches));
        }
    }

    // Greedy cover: repeatedly add the rule contributing the most new true
    // matches (ties broken towards higher precision).
    let mut selected: Vec<LearnedRule> = Vec::new();
    let mut covered: BTreeSet<(TupleId, TupleId)> = BTreeSet::new();
    let mut predicted: BTreeSet<(TupleId, TupleId)> = BTreeSet::new();
    while selected.len() < config.max_rules {
        let recall = if truth.is_empty() {
            1.0
        } else {
            covered.len() as f64 / truth.len() as f64
        };
        if recall >= config.target_recall {
            break;
        }
        let best = scored
            .iter()
            .enumerate()
            .map(|(i, (_, quality, matches))| {
                let new_true = matches
                    .intersection(truth)
                    .filter(|m| !covered.contains(m))
                    .count();
                (i, new_true, quality.precision)
            })
            .filter(|(_, new_true, _)| *new_true > 0)
            .max_by(|a, b| {
                a.1.cmp(&b.1)
                    .then(a.2.partial_cmp(&b.2).expect("finite precision"))
            });
        let Some((idx, _, _)) = best else { break };
        let (key, quality, matches) = scored.swap_remove(idx);
        covered.extend(matches.intersection(truth).cloned());
        predicted.extend(matches.iter().cloned());
        selected.push(LearnedRule { key, quality });
    }

    let combined = score(&predicted, truth);
    LearnedRuleSet {
        rules: selected,
        combined,
        candidates_evaluated,
    }
}

/// All `len`-element subsets of `0..n`.
fn combinations(n: usize, len: usize) -> Vec<Vec<usize>> {
    crate::fd_discovery::subsets_of_size(&(0..n).collect::<Vec<_>>(), len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_gen::cards::{generate_cards, CardConfig};

    fn comparison_space() -> Vec<ComparisonSpace> {
        vec![
            ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
            ComparisonSpace::new(
                "FN",
                "FN",
                vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
            ),
            ComparisonSpace::new("tel", "phn", vec![SimilarityOp::Equality]),
            ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
            ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
        ]
    }

    const YC: [&str; 5] = ["FN", "LN", "addr", "tel", "email"];
    const YB: [&str; 5] = ["FN", "SN", "post", "phn", "email"];

    fn workload() -> dq_gen::cards::CardWorkload {
        generate_cards(&CardConfig {
            holders: 250,
            billing_rate: 0.8,
            abbreviate_rate: 0.4,
            phone_change_rate: 0.3,
            email_change_rate: 0.3,
            distractors: 30,
            seed: 19,
        })
    }

    #[test]
    fn learned_rules_are_precise_and_cover_the_truth() {
        let w = workload();
        let learned = learn_relative_keys(
            &w.card,
            &w.billing,
            &w.truth,
            &comparison_space(),
            &YC,
            &YB,
            &RuleLearningConfig::default(),
        );
        assert!(learned.candidates_evaluated > 5);
        assert!(!learned.rules.is_empty());
        for rule in &learned.rules {
            assert!(
                rule.quality.precision >= 0.95,
                "admitted rule below the precision floor: {:?}",
                rule.quality
            );
        }
        assert!(
            learned.combined.recall > 0.8,
            "the greedy cover should recover most true matches, got {:?}",
            learned.combined
        );
        assert!(learned.combined.precision >= 0.95);
    }

    #[test]
    fn learned_rule_set_beats_any_single_equality_rule() {
        let w = workload();
        let learned = learn_relative_keys(
            &w.card,
            &w.billing,
            &w.truth,
            &comparison_space(),
            &YC,
            &YB,
            &RuleLearningConfig::default(),
        );
        // Baseline: exact equality on (LN, FN) only.
        let schema_l = w.card.schema();
        let schema_r = w.billing.schema();
        let baseline = RelativeKey::new(
            schema_l,
            schema_r,
            vec![
                ("LN", "SN", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::Equality),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        let baseline_result = Matcher::new(vec![baseline]).run(&w.card, &w.billing);
        let baseline_quality = score(&baseline_result.matches, &w.truth);
        assert!(
            learned.combined.f1 >= baseline_quality.f1,
            "learned {:?} vs baseline {:?}",
            learned.combined,
            baseline_quality
        );
    }

    #[test]
    fn empty_truth_or_space_is_handled() {
        let w = workload();
        let empty_truth = BTreeSet::new();
        let learned = learn_relative_keys(
            &w.card,
            &w.billing,
            &empty_truth,
            &comparison_space(),
            &YC,
            &YB,
            &RuleLearningConfig::default(),
        );
        assert!(learned.rules.is_empty(), "no truth, nothing to cover");
        let no_space = learn_relative_keys(
            &w.card,
            &w.billing,
            &w.truth,
            &[],
            &YC,
            &YB,
            &RuleLearningConfig::default(),
        );
        assert!(no_space.rules.is_empty());
        assert_eq!(no_space.candidates_evaluated, 0);
    }

    #[test]
    fn pooled_learning_is_byte_identical_to_the_naive_path() {
        let w = workload();
        let naive = learn_relative_keys(
            &w.card,
            &w.billing,
            &w.truth,
            &comparison_space(),
            &YC,
            &YB,
            &RuleLearningConfig::default(),
        );
        let pool = std::sync::Arc::new(dq_relation::IndexPool::new());
        let engine = dq_match::engine::MatchingEngine::new(pool).with_threads(2);
        let pooled = learn_relative_keys_with_pool(
            &w.card,
            &w.billing,
            &w.truth,
            &comparison_space(),
            &YC,
            &YB,
            &RuleLearningConfig::default(),
            &engine,
        );
        assert_eq!(naive.candidates_evaluated, pooled.candidates_evaluated);
        assert_eq!(naive.rules.len(), pooled.rules.len());
        for (a, b) in naive.rules.iter().zip(&pooled.rules) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.quality, b.quality);
        }
        assert_eq!(naive.combined, pooled.combined);
        // The engine actually memoized similarity work across candidates.
        assert!(engine.stats().cache.hits > 0);
    }

    #[test]
    fn rule_budget_is_respected() {
        let w = workload();
        let learned = learn_relative_keys(
            &w.card,
            &w.billing,
            &w.truth,
            &comparison_space(),
            &YC,
            &YB,
            &RuleLearningConfig {
                max_rules: 1,
                ..RuleLearningConfig::default()
            },
        );
        assert!(learned.rules.len() <= 1);
    }
}
