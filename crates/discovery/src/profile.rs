//! Column and relation profiling.
//!
//! Profiling answers the questions discovery needs answered before it starts:
//! which attributes are categorical (few distinct values — candidates for
//! CFD/CIND conditions), which are key-like (distinct everywhere — useless as
//! conditions, good as identifiers to exclude), and what the realistic
//! finite domains are.  The same statistics drive the "reasonable" defaults
//! of [`crate::cfd_discovery`] and [`crate::ind_discovery`].

use crate::source::resolve_threads;
use dq_core::engine::parallel_map;
use dq_relation::{Database, Domain, IndexPool, RelationInstance, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Profile of a single column.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnProfile {
    /// Attribute position.
    pub attr: usize,
    /// Attribute name.
    pub name: String,
    /// Declared domain.
    pub domain: Domain,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Number of null values.
    pub nulls: usize,
    /// Distinct-to-total ratio (1.0 for a key column, ~0 for a constant).
    pub uniqueness: f64,
    /// The distinct values, when there are at most `max_inline_values` of
    /// them — i.e. the inferred finite domain of a categorical column.
    pub inline_values: Option<BTreeSet<Value>>,
}

impl ColumnProfile {
    /// Whether this column looks categorical (bounded set of values).
    pub fn is_categorical(&self, max_values: usize) -> bool {
        self.distinct <= max_values && self.distinct > 0
    }

    /// Whether this column is a single-attribute key of the instance.
    pub fn is_unique(&self) -> bool {
        self.nulls == 0 && (self.uniqueness - 1.0).abs() < f64::EPSILON
    }
}

/// Profile of a relation.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationProfile {
    /// Relation name.
    pub relation: String,
    /// Number of tuples.
    pub tuples: usize,
    /// Per-column profiles, positionally aligned with the schema.
    pub columns: Vec<ColumnProfile>,
    /// Single attributes that are keys of the instance.
    pub unary_keys: Vec<usize>,
    /// Attribute pairs that are keys while neither member is one on its own.
    pub binary_keys: Vec<(usize, usize)>,
}

impl RelationProfile {
    /// Attributes that look categorical under the given bound.
    pub fn categorical_attributes(&self, max_values: usize) -> Vec<usize> {
        self.columns
            .iter()
            .filter(|c| c.is_categorical(max_values) && !c.is_unique())
            .map(|c| c.attr)
            .collect()
    }

    /// Attributes worth excluding from dependency discovery: unique
    /// identifiers whose FDs are trivial.
    pub fn identifier_attributes(&self) -> Vec<usize> {
        self.columns
            .iter()
            .filter(|c| c.is_unique())
            .map(|c| c.attr)
            .collect()
    }
}

/// How many distinct values a column may have for its values to be listed
/// inline in the profile.
const MAX_INLINE_VALUES: usize = 32;

/// Profiles one relation instance with a private index pool.
pub fn profile_relation(instance: &RelationInstance) -> RelationProfile {
    profile_relation_pooled(instance, &Arc::new(IndexPool::new()))
}

/// Profiles one relation instance over its interned columnar snapshot.
///
/// Distinct counts and inferred finite domains come straight from the
/// per-column dictionaries (one scan per column to tally nulls, no
/// `Value` clones per cell), and binary key candidacy groups through a
/// pooled interned index on the pair instead of materializing a
/// `BTreeSet<Vec<Value>>` of projections — the same indexes discovery and
/// detection use.
///
/// Dictionaries dedup by `Eq` while the legacy per-column scan deduped by
/// `Value`'s `Ord` — which deliberately compares mixed numerics like
/// `Int(0)` and `Real(0.0)` as equal — so dictionary entries are re-deduped
/// through a `BTreeSet` built by *insertion* (tiny: one entry per distinct
/// value, never per row; `collect` would silently dedup by `Eq` instead,
/// std's bulk build sorts by `Ord` but dedups by `Eq`).  Binary-key
/// counting keeps `group_count()`: the legacy `project_distinct` built its
/// set via `collect`, i.e. it already counted `Eq`-distinct projections,
/// which is exactly what the index's groups count.  Every reported number
/// is identical to the legacy row-scanning profile.
pub fn profile_relation_pooled(
    instance: &RelationInstance,
    pool: &Arc<IndexPool>,
) -> RelationProfile {
    profile_relation_with(instance, pool, 0)
}

/// [`profile_relation_pooled`] with an explicit worker budget (`0` sizes
/// the pool to the machine): per-column statistics and binary-key
/// candidates are independent, so both fan out across the thread pool —
/// columns first (each scans its own dictionary and null ids), then the
/// candidate attribute pairs (each groups through its own pooled index).
/// The reported profile is identical at every thread count.
pub fn profile_relation_with(
    instance: &RelationInstance,
    pool: &Arc<IndexPool>,
    threads: usize,
) -> RelationProfile {
    let threads = resolve_threads(threads);
    let schema = instance.schema();
    let tuples = instance.len();
    let store = instance.columnar();
    let attrs: Vec<usize> = (0..schema.arity()).collect();
    let columns: Vec<ColumnProfile> = parallel_map(&attrs, threads, |&attr| {
        let col = store.column(instance, attr);
        let interner = col.interner();
        let null_id = interner.lookup(&Value::Null);
        let nulls = match null_id {
            Some(null_id) => col.ids().iter().filter(|&&id| id == null_id).count(),
            None => 0,
        };
        let mut dictionary: BTreeSet<&Value> = BTreeSet::new();
        for value in interner.values().iter().filter(|v| !v.is_null()) {
            dictionary.insert(value);
        }
        let distinct = dictionary.len();
        let uniqueness = if tuples == 0 {
            0.0
        } else {
            distinct as f64 / tuples as f64
        };
        let inline_values = if distinct <= MAX_INLINE_VALUES {
            Some(dictionary.iter().map(|&v| v.clone()).collect())
        } else {
            None
        };
        ColumnProfile {
            attr,
            name: schema.attr_name(attr).to_string(),
            domain: schema.domain(attr).clone(),
            distinct,
            nulls,
            uniqueness,
            inline_values,
        }
    });

    let unary_keys: Vec<usize> = columns
        .iter()
        .filter(|c| tuples > 0 && c.is_unique())
        .map(|c| c.attr)
        .collect();
    let mut binary_keys = Vec::new();
    if tuples > 0 {
        let candidate_pairs: Vec<(usize, usize)> = (0..schema.arity())
            .flat_map(|a| ((a + 1)..schema.arity()).map(move |b| (a, b)))
            .filter(|(a, b)| !unary_keys.contains(a) && !unary_keys.contains(b))
            .collect();
        let is_key: Vec<bool> = parallel_map(&candidate_pairs, threads, |&(a, b)| {
            pool.interned_for(instance, &[a, b], 1).group_count() == tuples
        });
        binary_keys = candidate_pairs
            .into_iter()
            .zip(is_key)
            .filter_map(|(pair, key)| key.then_some(pair))
            .collect();
    }

    RelationProfile {
        relation: schema.name().to_string(),
        tuples,
        columns,
        unary_keys,
        binary_keys,
    }
}

/// Profiles every relation of a database, sharing one index pool.
pub fn profile_database(db: &Database) -> Vec<RelationProfile> {
    let pool = Arc::new(IndexPool::new());
    db.iter()
        .map(|(_, inst)| profile_relation_pooled(inst, &pool))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::RelationSchema;
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "people",
            vec![
                ("id", Domain::Int),
                ("country", Domain::Text),
                ("name", Domain::Text),
            ],
        ))
    }

    fn sample() -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for i in 0..10i64 {
            inst.insert_values(vec![
                Value::int(i),
                Value::str(if i % 2 == 0 { "UK" } else { "US" }),
                Value::str(format!("person-{i}")),
            ])
            .unwrap();
        }
        inst
    }

    #[test]
    fn profiles_distinct_counts_and_uniqueness() {
        let profile = profile_relation(&sample());
        assert_eq!(profile.tuples, 10);
        assert_eq!(profile.columns[0].distinct, 10);
        assert!(profile.columns[0].is_unique());
        assert_eq!(profile.columns[1].distinct, 2);
        assert!(profile.columns[1].is_categorical(8));
        assert!(!profile.columns[1].is_unique());
    }

    #[test]
    fn key_detection() {
        let profile = profile_relation(&sample());
        assert_eq!(profile.unary_keys, vec![0, 2]);
        // country + name is a key, but name alone already is, so the pair is
        // not reported; country pairs with nothing else here.
        assert!(profile.binary_keys.is_empty());
    }

    #[test]
    fn binary_key_reported_when_no_unary_key_covers_it() {
        let mut inst = RelationInstance::new(Arc::new(RelationSchema::new(
            "r",
            vec![
                ("a", Domain::Text),
                ("b", Domain::Text),
                ("c", Domain::Text),
            ],
        )));
        for (a, b) in [("x", "1"), ("x", "2"), ("y", "1"), ("y", "2")] {
            inst.insert_values(vec![Value::str(a), Value::str(b), Value::str("c")])
                .unwrap();
        }
        let profile = profile_relation(&inst);
        assert!(profile.unary_keys.is_empty());
        assert_eq!(profile.binary_keys, vec![(0, 1)]);
    }

    #[test]
    fn categorical_and_identifier_helpers() {
        let profile = profile_relation(&sample());
        assert_eq!(profile.categorical_attributes(8), vec![1]);
        assert_eq!(profile.identifier_attributes(), vec![0, 2]);
    }

    #[test]
    fn mixed_numeric_distinct_counts_follow_value_order() {
        // `Value`'s Ord compares Int(0) and Real(0.0) as equal while Eq
        // (and hence the dictionary) distinguishes them; the profile must
        // keep the legacy Ord-based distinct semantics.
        let universe: Arc<[Value]> = vec![
            Value::int(0),
            Value::real(0.0),
            Value::int(1),
            Value::str("x"),
            Value::str("y"),
        ]
        .into();
        let schema = Arc::new(RelationSchema::new(
            "m",
            vec![
                ("n", Domain::Finite(Arc::clone(&universe))),
                ("s", Domain::Finite(universe)),
            ],
        ));
        let mut inst = RelationInstance::new(schema);
        for (n, s) in [
            (Value::int(0), Value::str("x")),
            (Value::real(0.0), Value::str("x")),
        ] {
            inst.insert_values(vec![n, s]).unwrap();
        }
        let profile = profile_relation(&inst);
        // Int(0) and Real(0.0) collapse under Ord: one distinct value (the
        // legacy per-column scan deduped through BTreeSet *inserts*).
        assert_eq!(profile.columns[0].distinct, 1);
        assert_eq!(profile.columns[0].inline_values.as_ref().unwrap().len(), 1);
        assert!(!profile.columns[0].is_unique());
        assert_eq!(profile.columns[1].distinct, 1);
        // Pair projections were deduped by the legacy `project_distinct`
        // via `collect`, i.e. by Eq — (Int(0), "x") and (Real(0.0), "x")
        // stay distinct — so (n, s) is a binary key under both paths.
        assert_eq!(inst.project_distinct(&[0, 1]).len(), inst.len());
        assert!(profile.binary_keys.contains(&(0, 1)));
    }

    #[test]
    fn fan_out_is_identical_to_sequential_profile() {
        let inst = sample();
        let pool = Arc::new(IndexPool::new());
        let sequential = profile_relation_with(&inst, &pool, 1);
        for threads in [2, 8] {
            assert_eq!(
                profile_relation_with(&inst, &pool, threads),
                sequential,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn empty_relation_profile() {
        let profile = profile_relation(&RelationInstance::new(schema()));
        assert_eq!(profile.tuples, 0);
        assert!(profile.unary_keys.is_empty());
        assert!(profile.columns.iter().all(|c| c.distinct == 0));
    }

    #[test]
    fn inline_values_capture_small_domains() {
        let profile = profile_relation(&sample());
        let countries = profile.columns[1].inline_values.as_ref().unwrap();
        assert!(countries.contains(&Value::str("UK")));
        assert!(countries.contains(&Value::str("US")));
        assert_eq!(countries.len(), 2);
    }
}
