//! Discovery of conditional functional dependencies from data.
//!
//! Two discovery modes cover the two shapes of CFDs in Section 2.1:
//!
//! * **Constant CFDs** (every pattern cell a constant, e.g.
//!   `([CC = 44, AC = 131] → [city = EDI])`) are mined in the spirit of
//!   CFDMiner: frequent left-hand-side value combinations whose matching
//!   tuples all agree on the right-hand side, filtered for minimality so
//!   that a condition is only reported when no sub-condition already forces
//!   the same constant.
//! * **Variable CFDs** (an embedded FD plus a pattern tableau, e.g.
//!   `([CC, zip] → [street])` with pattern `(44, _ ‖ _)`) are mined in the
//!   spirit of CTANE: for an embedded FD that does not hold globally, the
//!   search enumerates increasingly specific pattern tuples (more constants)
//!   and keeps the most general ones under which the FD holds with enough
//!   support.
//!
//! Discovered dependencies are ordinary [`Cfd`] values; by construction every
//! one of them holds on the profiled instance, which the module's tests
//! assert and which makes them safe seeds for cleaning rules on *future*
//! data of the same source.

use crate::fd_discovery::{discover_fds, subsets_of_size, FdDiscoveryConfig};
use crate::partition::g3_error;
use dq_core::cfd::Cfd;
use dq_core::fd::Fd;
use dq_core::pattern::{PatternTuple, PatternValue};
use dq_relation::{RelationInstance, Value};
use std::collections::{BTreeMap, HashMap};

/// Configuration of CFD discovery.
#[derive(Clone, Debug)]
pub struct CfdDiscoveryConfig {
    /// Minimum number of tuples a pattern tuple must match to be reported.
    pub min_support: usize,
    /// Maximum size of embedded-FD left-hand sides.
    pub max_lhs: usize,
    /// Maximum number of LHS attributes that may carry constants in a
    /// variable-CFD pattern tuple.
    pub max_condition_attrs: usize,
    /// Maximum `g3` error for an embedded FD to be considered a conditioning
    /// candidate (an FD with huge error is unlikely to hold on any useful
    /// condition).
    pub max_candidate_g3: f64,
    /// Cap on the number of pattern tuples collected per dependency.
    pub max_tableau: usize,
    /// Attributes excluded from discovery (surrogate keys, free text).
    pub exclude: Vec<usize>,
}

impl Default for CfdDiscoveryConfig {
    fn default() -> Self {
        CfdDiscoveryConfig {
            min_support: 2,
            max_lhs: 2,
            max_condition_attrs: 2,
            max_candidate_g3: 0.5,
            max_tableau: 64,
            exclude: Vec::new(),
        }
    }
}

/// The outcome of [`discover_cfds`].
#[derive(Clone, Debug)]
pub struct DiscoveredCfds {
    /// Variable CFDs: exact FDs lifted to all-wildcard tableaux, plus
    /// conditional tableaux mined for approximate FDs.
    pub variable_cfds: Vec<Cfd>,
    /// Constant CFDs (association-rule-like patterns).
    pub constant_cfds: Vec<Cfd>,
    /// Number of candidate pattern tuples validated.
    pub candidates_checked: usize,
}

impl DiscoveredCfds {
    /// All discovered CFDs, variable first.
    pub fn all(&self) -> Vec<Cfd> {
        self.variable_cfds
            .iter()
            .chain(self.constant_cfds.iter())
            .cloned()
            .collect()
    }

    /// Total number of dependencies.
    pub fn len(&self) -> usize {
        self.variable_cfds.len() + self.constant_cfds.len()
    }

    /// Whether nothing was discovered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Discovers constant CFDs: minimal frequent LHS value combinations that
/// force a constant on some other attribute.  Patterns over the same
/// `(LHS attributes, RHS attribute)` are merged into a single CFD tableau.
pub fn discover_constant_cfds(
    instance: &RelationInstance,
    config: &CfdDiscoveryConfig,
) -> Vec<Cfd> {
    let schema = instance.schema().clone();
    let attrs: Vec<usize> = (0..schema.arity())
        .filter(|a| !config.exclude.contains(a))
        .collect();
    // tableaux[(lhs, rhs)] -> pattern tuples
    let mut tableaux: BTreeMap<(Vec<usize>, usize), Vec<PatternTuple>> = BTreeMap::new();
    let all_tuples: Vec<_> = instance.iter().map(|(_, t)| t.clone()).collect();

    for size in 1..=config.max_lhs.min(attrs.len()) {
        for lhs in subsets_of_size(&attrs, size) {
            let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (pos, tuple) in all_tuples.iter().enumerate() {
                groups.entry(tuple.project(&lhs)).or_default().push(pos);
            }
            for (lhs_values, members) in &groups {
                if members.len() < config.min_support {
                    continue;
                }
                for &rhs in &attrs {
                    if lhs.contains(&rhs) {
                        continue;
                    }
                    let first = all_tuples[members[0]].get(rhs).clone();
                    if !members.iter().all(|&m| all_tuples[m].get(rhs) == &first) {
                        continue;
                    }
                    // Minimality: a proper sub-condition that already forces
                    // the same constant (with support) makes this redundant.
                    if size >= 2
                        && is_redundant_constant_pattern(
                            &all_tuples,
                            &lhs,
                            lhs_values,
                            rhs,
                            &first,
                            config.min_support,
                        )
                    {
                        continue;
                    }
                    let entry = tableaux.entry((lhs.clone(), rhs)).or_default();
                    if entry.len() >= config.max_tableau {
                        continue;
                    }
                    entry.push(PatternTuple::new(
                        lhs_values
                            .iter()
                            .cloned()
                            .map(PatternValue::Const)
                            .collect(),
                        vec![PatternValue::Const(first.clone())],
                    ));
                }
            }
        }
    }

    tableaux
        .into_iter()
        .filter_map(|((lhs, rhs), mut tableau)| {
            tableau.sort_by_key(|tp| format!("{tp}"));
            tableau.dedup();
            Cfd::from_indices(&schema, lhs, vec![rhs], tableau).ok()
        })
        .collect()
}

/// Whether the LHS pattern `a` matches every tuple the LHS pattern `b`
/// matches: at every position `a` is either a wildcard or equal to `b`.
fn lhs_more_general(a: &[PatternValue], b: &[PatternValue]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(pa, pb)| pa.is_any() || pa == pb)
}

/// Whether some proper subset of the condition already forces `rhs = value`
/// on at least `min_support` tuples — in which case the longer condition is
/// not minimal and should not be reported.
fn is_redundant_constant_pattern(
    tuples: &[dq_relation::Tuple],
    lhs: &[usize],
    lhs_values: &[Value],
    rhs: usize,
    value: &Value,
    min_support: usize,
) -> bool {
    for drop in 0..lhs.len() {
        let sub_attrs: Vec<usize> = lhs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, &a)| a)
            .collect();
        let sub_values: Vec<&Value> = lhs_values
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, v)| v)
            .collect();
        let matching: Vec<&dq_relation::Tuple> = tuples
            .iter()
            .filter(|t| {
                sub_attrs
                    .iter()
                    .zip(&sub_values)
                    .all(|(&a, v)| t.get(a) == *v)
            })
            .collect();
        if matching.len() >= min_support && matching.iter().all(|t| t.get(rhs) == value) {
            return true;
        }
    }
    false
}

/// Mines a pattern tableau for the embedded FD `fd` on `instance`: the most
/// general pattern tuples (fewest constants) under which the FD holds with
/// at least [`CfdDiscoveryConfig::min_support`] matching tuples.
///
/// Returns `None` when no pattern with enough support makes the FD hold.
/// When the FD already holds globally the tableau is the single all-wildcard
/// pattern (i.e. the traditional FD).
pub fn discover_tableau_for_fd(
    instance: &RelationInstance,
    fd: &Fd,
    config: &CfdDiscoveryConfig,
) -> Option<Cfd> {
    let schema = instance.schema().clone();
    let lhs = fd.lhs().to_vec();
    let rhs = fd.rhs().to_vec();
    let tuples: Vec<_> = instance.iter().map(|(_, t)| t.clone()).collect();
    let mut accepted: Vec<PatternTuple> = Vec::new();

    let max_constants = config.max_condition_attrs.min(lhs.len());
    for constants in 0..=max_constants {
        if accepted.len() >= config.max_tableau {
            break;
        }
        // Positions (within the LHS list) that carry constants.
        let positions = subsets_of_size(&(0..lhs.len()).collect::<Vec<_>>(), constants);
        let position_sets: Vec<Vec<usize>> = if constants == 0 {
            vec![Vec::new()]
        } else {
            positions
        };
        for cond_positions in position_sets {
            let cond_attrs: Vec<usize> = cond_positions.iter().map(|&p| lhs[p]).collect();
            // Distinct value combinations actually present in the data.
            let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (pos, tuple) in tuples.iter().enumerate() {
                groups
                    .entry(tuple.project(&cond_attrs))
                    .or_default()
                    .push(pos);
            }
            for (cond_values, members) in groups {
                if members.len() < config.min_support {
                    continue;
                }
                let lhs_pattern: Vec<PatternValue> = (0..lhs.len())
                    .map(|p| match cond_positions.iter().position(|&c| c == p) {
                        Some(i) => PatternValue::Const(cond_values[i].clone()),
                        None => PatternValue::Any,
                    })
                    .collect();
                // Prefer the most general patterns: skip a candidate whose
                // LHS is covered by an already accepted, more general one.
                if accepted
                    .iter()
                    .any(|a| lhs_more_general(&a.lhs, &lhs_pattern))
                {
                    continue;
                }
                // Does the embedded FD hold on the matching tuples?
                let mut by_lhs: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
                let mut holds = true;
                for &m in &members {
                    let key = tuples[m].project(&lhs);
                    let val = tuples[m].project(&rhs);
                    match by_lhs.get(&key) {
                        Some(existing) if existing != &val => {
                            holds = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            by_lhs.insert(key, val);
                        }
                    }
                }
                if !holds {
                    continue;
                }
                // Upgrade the RHS to constants when every matching tuple
                // agrees on it (the `city = EDI` shape of cfd2/cfd3).
                let first_rhs = tuples[members[0]].project(&rhs);
                let rhs_constant = members
                    .iter()
                    .all(|&m| tuples[m].project(&rhs) == first_rhs);
                let rhs_pattern: Vec<PatternValue> = if rhs_constant && !cond_positions.is_empty() {
                    first_rhs.into_iter().map(PatternValue::Const).collect()
                } else {
                    vec![PatternValue::Any; rhs.len()]
                };
                accepted.push(PatternTuple::new(lhs_pattern, rhs_pattern));
                if accepted.len() >= config.max_tableau {
                    break;
                }
            }
        }
    }

    if accepted.is_empty() {
        return None;
    }
    accepted.sort_by_key(|tp| format!("{tp}"));
    accepted.dedup();
    Cfd::from_indices(&schema, lhs, rhs, accepted).ok()
}

/// Full CFD discovery: exact FDs (reported as all-wildcard CFDs), conditional
/// tableaux for approximate FDs, and constant CFDs.
pub fn discover_cfds(instance: &RelationInstance, config: &CfdDiscoveryConfig) -> DiscoveredCfds {
    let mut candidates_checked = 0usize;

    // Exact FDs become traditional (all-wildcard) CFDs.
    let exact = discover_fds(
        instance,
        &FdDiscoveryConfig {
            max_lhs: config.max_lhs,
            max_g3: 0.0,
            exclude: config.exclude.clone(),
        },
    );
    candidates_checked += exact.candidates_checked;
    let mut variable_cfds: Vec<Cfd> = exact.fds.iter().map(Cfd::from_fd).collect();

    // Approximate FDs (hold after removing at most `max_candidate_g3` of the
    // tuples but not exactly) are conditioning candidates: mine a tableau.
    let approx = discover_fds(
        instance,
        &FdDiscoveryConfig {
            max_lhs: config.max_lhs,
            max_g3: config.max_candidate_g3,
            exclude: config.exclude.clone(),
        },
    );
    candidates_checked += approx.candidates_checked;
    for fd in &approx.fds {
        let exact_already = exact
            .fds
            .iter()
            .any(|e| e.lhs() == fd.lhs() && e.rhs() == fd.rhs());
        if exact_already {
            continue;
        }
        // Only condition on FDs that genuinely fail globally.
        if g3_error(instance, fd.lhs(), fd.rhs()) == 0.0 {
            continue;
        }
        candidates_checked += 1;
        if let Some(cfd) = discover_tableau_for_fd(instance, fd, config) {
            // A tableau consisting solely of the all-wildcard pattern adds
            // nothing beyond the (failing) traditional FD.
            if !cfd.tableau().iter().all(PatternTuple::is_all_wildcards) {
                variable_cfds.push(cfd);
            }
        }
    }

    let constant_cfds = discover_constant_cfds(instance, config);
    DiscoveredCfds {
        variable_cfds,
        constant_cfds,
        candidates_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::detect::detect_cfd_violations;
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    /// A miniature customer-like schema: country, area code, city, street.
    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "cust",
            vec![
                ("cc", Domain::Int),
                ("ac", Domain::Int),
                ("city", Domain::Text),
                ("zip", Domain::Text),
                ("street", Domain::Text),
            ],
        ))
    }

    fn row(inst: &mut RelationInstance, cc: i64, ac: i64, city: &str, zip: &str, street: &str) {
        inst.insert_values(vec![
            Value::int(cc),
            Value::int(ac),
            Value::str(city),
            Value::str(zip),
            Value::str(street),
        ])
        .unwrap();
    }

    /// UK rows obey zip → street; US rows deliberately break it.
    fn uk_us_instance() -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for i in 0..6 {
            row(
                &mut inst,
                44,
                131,
                "EDI",
                &format!("EH{}", i / 2),
                &format!("S{}", i / 2),
            );
        }
        // US: same zip, different streets.
        row(&mut inst, 1, 908, "MH", "07974", "Mtn Ave");
        row(&mut inst, 1, 908, "MH", "07974", "Main St");
        row(&mut inst, 1, 212, "NYC", "10001", "5th Ave");
        row(&mut inst, 1, 212, "NYC", "10001", "Broadway");
        inst
    }

    #[test]
    fn constant_cfds_find_area_code_city_pattern() {
        let inst = uk_us_instance();
        let config = CfdDiscoveryConfig {
            min_support: 2,
            max_lhs: 2,
            ..CfdDiscoveryConfig::default()
        };
        let cfds = discover_constant_cfds(&inst, &config);
        // ac = 131 → city = EDI must be found (as a minimal, single-attribute
        // condition; the redundant {cc = 44, ac = 131} version must not be).
        let found = cfds.iter().any(|c| {
            c.lhs() == [1]
                && c.rhs() == [2]
                && c.tableau().iter().any(|tp| {
                    tp.lhs == [PatternValue::Const(Value::int(131))]
                        && tp.rhs == [PatternValue::Const(Value::str("EDI"))]
                })
        });
        assert!(found, "expected ac=131 → city=EDI, got {cfds:?}");
        let redundant = cfds.iter().any(|c| c.lhs() == [0, 1] && c.rhs() == [2]);
        assert!(
            !redundant,
            "two-attribute condition should be pruned as non-minimal"
        );
    }

    #[test]
    fn constant_cfds_hold_on_the_instance() {
        let inst = uk_us_instance();
        let cfds = discover_constant_cfds(&inst, &CfdDiscoveryConfig::default());
        assert!(!cfds.is_empty());
        let report = detect_cfd_violations(&inst, &cfds);
        assert!(
            report.is_clean(),
            "discovered constant CFDs must hold on the data"
        );
    }

    #[test]
    fn tableau_mining_recovers_uk_condition() {
        let inst = uk_us_instance();
        // zip → street fails globally (US rows), holds for cc = 44.
        let fd = Fd::new(&schema(), &["cc", "zip"], &["street"]);
        let cfd = discover_tableau_for_fd(&inst, &fd, &CfdDiscoveryConfig::default())
            .expect("a conditional tableau exists");
        assert!(cfd.holds_on(&inst));
        let has_uk_pattern = cfd
            .tableau()
            .iter()
            .any(|tp| tp.lhs.first() == Some(&PatternValue::Const(Value::int(44))));
        assert!(
            has_uk_pattern,
            "expected a (44, _) pattern, got {:?}",
            cfd.tableau()
        );
    }

    #[test]
    fn tableau_mining_returns_none_without_support() {
        let mut inst = RelationInstance::new(schema());
        // Two tuples that violate zip → street and share no usable condition.
        row(&mut inst, 1, 212, "NYC", "10001", "5th Ave");
        row(&mut inst, 1, 212, "NYC", "10001", "Broadway");
        let fd = Fd::new(&schema(), &["zip"], &["street"]);
        let config = CfdDiscoveryConfig {
            min_support: 2,
            ..CfdDiscoveryConfig::default()
        };
        assert!(discover_tableau_for_fd(&inst, &fd, &config).is_none());
    }

    #[test]
    fn exact_fd_becomes_all_wildcard_tableau() {
        let mut inst = RelationInstance::new(schema());
        row(&mut inst, 44, 131, "EDI", "EH1", "S1");
        row(&mut inst, 44, 131, "EDI", "EH1", "S1");
        row(&mut inst, 44, 141, "GLA", "G1", "S2");
        let fd = Fd::new(&schema(), &["zip"], &["street"]);
        let cfd = discover_tableau_for_fd(&inst, &fd, &CfdDiscoveryConfig::default()).unwrap();
        assert!(cfd.tableau().iter().any(PatternTuple::is_all_wildcards));
    }

    #[test]
    fn full_discovery_output_is_consistent_with_the_data() {
        let inst = uk_us_instance();
        let discovered = discover_cfds(&inst, &CfdDiscoveryConfig::default());
        assert!(!discovered.is_empty());
        let report = detect_cfd_violations(&inst, &discovered.all());
        assert!(
            report.is_clean(),
            "every discovered CFD must hold on the instance it was mined from"
        );
    }

    #[test]
    fn discovery_respects_exclusions() {
        let inst = uk_us_instance();
        let config = CfdDiscoveryConfig {
            exclude: vec![4],
            ..CfdDiscoveryConfig::default()
        };
        let discovered = discover_cfds(&inst, &config);
        for cfd in discovered.all() {
            assert!(!cfd.lhs().contains(&4));
            assert!(!cfd.rhs().contains(&4));
        }
    }
}
