//! Discovery of conditional functional dependencies from data.
//!
//! Two discovery modes cover the two shapes of CFDs in Section 2.1:
//!
//! * **Constant CFDs** (every pattern cell a constant, e.g.
//!   `([CC = 44, AC = 131] → [city = EDI])`) are mined in the spirit of
//!   CFDMiner: frequent left-hand-side value combinations whose matching
//!   tuples all agree on the right-hand side, filtered for minimality so
//!   that a condition is only reported when no sub-condition already forces
//!   the same constant.
//! * **Variable CFDs** (an embedded FD plus a pattern tableau, e.g.
//!   `([CC, zip] → [street])` with pattern `(44, _ ‖ _)`) are mined in the
//!   spirit of CTANE: for an embedded FD that does not hold globally, the
//!   search enumerates increasingly specific pattern tuples (more constants)
//!   and keeps the most general ones under which the FD holds with enough
//!   support.
//!
//! Discovered dependencies are ordinary [`Cfd`] values; by construction every
//! one of them holds on the profiled instance, which the module's tests
//! assert and which makes them safe seeds for cleaning rules on *future*
//! data of the same source.

use crate::fd_discovery::{discover_fds_with_pool, subsets_of_size, FdDiscoveryConfig};
use crate::partition::{g3_error, g3_error_interned};
use crate::source::resolve_threads;
use dq_core::cfd::Cfd;
use dq_core::engine::parallel_map;
use dq_core::fd::Fd;
use dq_core::implication::cfd_minimal_cover;
use dq_core::pattern::{PatternTuple, PatternValue};
use dq_relation::{
    Column, FxHashMap, IndexPool, InternedIndex, KeyCodec, ProjectionKey, RelationInstance, Value,
    ValueId,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The canonical group-mining order shared by the naive and interned
/// paths.  `Value`'s `Ord` deliberately compares mixed numerics (`Int(0)`
/// vs `Real(0.0)`) as equal while `Eq` distinguishes them, so `Ord`-equal
/// but distinct keys get a debug-rendering tiebreak — without it each
/// path's hash-map iteration order would leak through the stable sort.
fn sorted_group_order(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    a.cmp(b)
        .then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
}

/// Configuration of CFD discovery.
#[derive(Clone, Debug)]
pub struct CfdDiscoveryConfig {
    /// Minimum number of tuples a pattern tuple must match to be reported.
    pub min_support: usize,
    /// Maximum size of embedded-FD left-hand sides.
    pub max_lhs: usize,
    /// Maximum number of LHS attributes that may carry constants in a
    /// variable-CFD pattern tuple.
    pub max_condition_attrs: usize,
    /// Maximum `g3` error for an embedded FD to be considered a conditioning
    /// candidate (an FD with huge error is unlikely to hold on any useful
    /// condition).
    pub max_candidate_g3: f64,
    /// Cap on the number of pattern tuples collected per dependency.
    pub max_tableau: usize,
    /// Attributes excluded from discovery (surrogate keys, free text).
    pub exclude: Vec<usize>,
    /// Mine over pooled interned indexes (id comparisons, packed keys —
    /// the fast path).  `false` keeps the legacy `Vec<Value>`-keyed
    /// grouping; both paths mine groups in sorted key order and produce
    /// identical dependency sets.
    pub use_interned: bool,
    /// Worker threads for the per-level fan-outs (embedded FD discovery,
    /// constant-pattern mining per LHS, tableau mining per condition-
    /// position set).  `0` sizes the pool to the machine; `1` mines
    /// sequentially.  The mined dependencies are identical at every thread
    /// count.
    pub threads: usize,
    /// Post-process the mined set with
    /// [`cfd_minimal_cover`](dq_core::implication::cfd_minimal_cover):
    /// normalized rules implied by the rest are dropped, so detection and
    /// repair downstream check fewer, non-redundant dependencies.  The
    /// number of pruned fragments is reported in
    /// [`DiscoveredCfds::cover_dropped`].
    pub minimal_cover: bool,
}

impl Default for CfdDiscoveryConfig {
    fn default() -> Self {
        CfdDiscoveryConfig {
            min_support: 2,
            max_lhs: 2,
            max_condition_attrs: 2,
            max_candidate_g3: 0.5,
            max_tableau: 64,
            exclude: Vec::new(),
            use_interned: true,
            threads: 0,
            minimal_cover: false,
        }
    }
}

/// The outcome of [`discover_cfds`].
#[derive(Clone, Debug)]
pub struct DiscoveredCfds {
    /// Variable CFDs: exact FDs lifted to all-wildcard tableaux, plus
    /// conditional tableaux mined for approximate FDs.
    pub variable_cfds: Vec<Cfd>,
    /// Constant CFDs (association-rule-like patterns).
    pub constant_cfds: Vec<Cfd>,
    /// Number of candidate pattern tuples validated.
    pub candidates_checked: usize,
    /// Wall-clock milliseconds spent per lattice level (index 0 = LHS
    /// size 1), summed across the exact FD sweep, the approximate FD
    /// sweep and constant-pattern mining at that LHS size — the same
    /// per-level reporting FD discovery already gets from
    /// [`crate::fd_discovery::DiscoveredFds::level_ms`].  Per-FD tableau mining is not level-shaped and is
    /// reported through the `discover.cfd/tableau` span instead.
    pub level_ms: Vec<f64>,
    /// Normalized rule fragments pruned by the minimal-cover post-pass
    /// (`0` unless [`CfdDiscoveryConfig::minimal_cover`] was set).
    pub cover_dropped: usize,
}

impl DiscoveredCfds {
    /// All discovered CFDs, variable first.
    pub fn all(&self) -> Vec<Cfd> {
        self.variable_cfds
            .iter()
            .chain(self.constant_cfds.iter())
            .cloned()
            .collect()
    }

    /// Total number of dependencies.
    pub fn len(&self) -> usize {
        self.variable_cfds.len() + self.constant_cfds.len()
    }

    /// Whether nothing was discovered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Discovers constant CFDs: minimal frequent LHS value combinations that
/// force a constant on some other attribute.  Patterns over the same
/// `(LHS attributes, RHS attribute)` are merged into a single CFD tableau.
pub fn discover_constant_cfds(
    instance: &RelationInstance,
    config: &CfdDiscoveryConfig,
) -> Vec<Cfd> {
    discover_constant_cfds_with_pool(instance, config, &Arc::new(IndexPool::new()))
}

/// [`discover_constant_cfds`] over a shared [`IndexPool`].  On the interned
/// path every candidate condition set is grouped through a pooled
/// [`InternedIndex`], support and right-hand-side agreement are checked on
/// `u32` dictionary ids, and the minimality probe re-uses the sub-condition
/// indexes the level-wise sweep already built.
pub fn discover_constant_cfds_with_pool(
    instance: &RelationInstance,
    config: &CfdDiscoveryConfig,
    pool: &Arc<IndexPool>,
) -> Vec<Cfd> {
    discover_constant_cfds_with_pool_timed(instance, config, pool).0
}

/// [`discover_constant_cfds_with_pool`] plus per-size-level wall-clock
/// milliseconds (index 0 = LHS size 1), measured through the span layer.
pub(crate) fn discover_constant_cfds_with_pool_timed(
    instance: &RelationInstance,
    config: &CfdDiscoveryConfig,
    pool: &Arc<IndexPool>,
) -> (Vec<Cfd>, Vec<f64>) {
    let _span = dq_obs::span("constants");
    let schema = instance.schema().clone();
    let attrs: Vec<usize> = (0..schema.arity())
        .filter(|a| !config.exclude.contains(a))
        .collect();
    // tableaux[(lhs, rhs)] -> pattern tuples
    let mut tableaux: BTreeMap<(Vec<usize>, usize), Vec<PatternTuple>> = BTreeMap::new();
    let mut level_ms: Vec<f64> = Vec::new();
    if config.use_interned {
        mine_constant_patterns_interned(
            instance,
            config,
            pool,
            &attrs,
            &mut tableaux,
            &mut level_ms,
        );
    } else {
        mine_constant_patterns_naive(instance, config, &attrs, &mut tableaux, &mut level_ms);
    }
    let cfds = tableaux
        .into_iter()
        .filter_map(|((lhs, rhs), mut tableau)| {
            tableau.sort_by_key(|tp| format!("{tp}"));
            tableau.dedup();
            Cfd::from_indices(&schema, lhs, vec![rhs], tableau).ok()
        })
        .collect();
    (cfds, level_ms)
}

/// One mined constant pattern, produced by a per-LHS worker and merged into
/// the tableaux in canonical order.
type MinedPattern = (usize, Vec<Value>, Value);

/// The legacy mining loop: per-tuple `Vec<Value>` projections.  Groups are
/// visited in sorted key order so the tableau cap selects the same patterns
/// as the interned path.  The LHS sets of one size level mine independently
/// (each writes its own `(LHS, RHS)` tableau keys), so they fan out across
/// the thread pool; per-LHS results merge back in canonical subset order.
fn mine_constant_patterns_naive(
    instance: &RelationInstance,
    config: &CfdDiscoveryConfig,
    attrs: &[usize],
    tableaux: &mut BTreeMap<(Vec<usize>, usize), Vec<PatternTuple>>,
    level_ms: &mut Vec<f64>,
) {
    let threads = resolve_threads(config.threads);
    let all_tuples: Vec<_> = instance.iter().map(|(_, t)| t.clone()).collect();
    for size in 1..=config.max_lhs.min(attrs.len()) {
        let level_span = dq_obs::span_owned(format!("level{size}"));
        let lhs_sets = subsets_of_size(attrs, size);
        let per_lhs: Vec<Vec<MinedPattern>> = parallel_map(&lhs_sets, threads, |lhs| {
            let mut by_key: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (pos, tuple) in all_tuples.iter().enumerate() {
                by_key.entry(tuple.project(lhs)).or_default().push(pos);
            }
            let mut groups: Vec<(Vec<Value>, Vec<usize>)> = by_key.into_iter().collect();
            groups.sort_by(|a, b| sorted_group_order(&a.0, &b.0));
            let mut mined: Vec<MinedPattern> = Vec::new();
            for (lhs_values, members) in &groups {
                if members.len() < config.min_support {
                    continue;
                }
                for &rhs in attrs {
                    if lhs.contains(&rhs) {
                        continue;
                    }
                    let first = all_tuples[members[0]].get(rhs).clone();
                    if !members.iter().all(|&m| all_tuples[m].get(rhs) == &first) {
                        continue;
                    }
                    // Minimality: a proper sub-condition that already forces
                    // the same constant (with support) makes this redundant.
                    if size >= 2
                        && is_redundant_constant_pattern(
                            &all_tuples,
                            lhs,
                            lhs_values,
                            rhs,
                            &first,
                            config.min_support,
                        )
                    {
                        continue;
                    }
                    mined.push((rhs, lhs_values.clone(), first));
                }
            }
            mined
        });
        for (lhs, mined) in lhs_sets.iter().zip(per_lhs) {
            for (rhs, lhs_values, first) in mined {
                push_constant_pattern(tableaux, config, lhs, rhs, &lhs_values, &first);
            }
        }
        level_ms.push(level_span.finish_ms());
    }
}

/// The interned mining loop: conditions group through pooled indexes and
/// every support / agreement / minimality check compares dictionary ids.
/// Values are resolved only when a pattern is actually emitted (and to sort
/// groups into the canonical mining order).  Like the naive loop, the LHS
/// sets of one size level fan out across the thread pool — the pooled
/// index and column lookups are all concurrent — and merge back in
/// canonical subset order.
fn mine_constant_patterns_interned(
    instance: &RelationInstance,
    config: &CfdDiscoveryConfig,
    pool: &Arc<IndexPool>,
    attrs: &[usize],
    tableaux: &mut BTreeMap<(Vec<usize>, usize), Vec<PatternTuple>>,
    level_ms: &mut Vec<f64>,
) {
    let threads = resolve_threads(config.threads);
    let store = instance.columnar();
    // Only the non-excluded attributes are ever read; excluded columns
    // (surrogate keys, free text) must not pay for dictionary encoding.
    let mut columns: Vec<Option<Arc<Column>>> = vec![None; instance.schema().arity()];
    for &a in attrs {
        columns[a] = Some(store.column(instance, a));
    }
    for size in 1..=config.max_lhs.min(attrs.len()) {
        let level_span = dq_obs::span_owned(format!("level{size}"));
        let lhs_sets = subsets_of_size(attrs, size);
        let per_lhs: Vec<Vec<MinedPattern>> = parallel_map(&lhs_sets, threads, |lhs| {
            // Candidate sub-condition indexes inside the minimality probe
            // are pooled too, so cross-LHS sharing survives the fan-out;
            // cold builds run single-threaded per worker (the level itself
            // is the parallel axis).
            let index = pool.interned_for(instance, lhs, 1);
            let mut groups: Vec<(Vec<Value>, Vec<ValueId>, &[u32])> = index
                .groups()
                .filter(|(_, rows)| rows.len() >= config.min_support)
                .map(|(ids, rows)| (resolve_key(&index, &ids), ids, rows))
                .collect();
            groups.sort_by(|a, b| sorted_group_order(&a.0, &b.0));
            let mut mined: Vec<MinedPattern> = Vec::new();
            for (lhs_values, lhs_ids, members) in &groups {
                for &rhs in attrs {
                    if lhs.contains(&rhs) {
                        continue;
                    }
                    let col = columns[rhs].as_ref().expect("non-excluded column built");
                    let first_id = col.id_at(members[0] as usize);
                    if !members.iter().all(|&m| col.id_at(m as usize) == first_id) {
                        continue;
                    }
                    if size >= 2
                        && is_redundant_constant_pattern_interned(
                            instance,
                            pool,
                            lhs,
                            lhs_ids,
                            col,
                            first_id,
                            config.min_support,
                        )
                    {
                        continue;
                    }
                    let first = col.interner().resolve(first_id).clone();
                    mined.push((rhs, lhs_values.clone(), first));
                }
            }
            mined
        });
        for (lhs, mined) in lhs_sets.iter().zip(per_lhs) {
            for (rhs, lhs_values, first) in mined {
                push_constant_pattern(tableaux, config, lhs, rhs, &lhs_values, &first);
            }
        }
        level_ms.push(level_span.finish_ms());
    }
}

/// Appends one mined constant pattern, respecting the per-dependency cap.
fn push_constant_pattern(
    tableaux: &mut BTreeMap<(Vec<usize>, usize), Vec<PatternTuple>>,
    config: &CfdDiscoveryConfig,
    lhs: &[usize],
    rhs: usize,
    lhs_values: &[Value],
    rhs_value: &Value,
) {
    let entry = tableaux.entry((lhs.to_vec(), rhs)).or_default();
    if entry.len() >= config.max_tableau {
        return;
    }
    entry.push(PatternTuple::new(
        lhs_values
            .iter()
            .cloned()
            .map(PatternValue::Const)
            .collect(),
        vec![PatternValue::Const(rhs_value.clone())],
    ));
}

/// Resolves a group's key ids into owned values, positionally aligned with
/// the index's attribute list.
fn resolve_key(index: &InternedIndex, ids: &[ValueId]) -> Vec<Value> {
    ids.iter()
        .zip(index.columns())
        .map(|(&id, col)| col.interner().resolve(id).clone())
        .collect()
}

/// Whether the LHS pattern `a` matches every tuple the LHS pattern `b`
/// matches: at every position `a` is either a wildcard or equal to `b`.
fn lhs_more_general(a: &[PatternValue], b: &[PatternValue]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(pa, pb)| pa.is_any() || pa == pb)
}

/// Whether some proper subset of the condition already forces `rhs = value`
/// on at least `min_support` tuples — in which case the longer condition is
/// not minimal and should not be reported.
fn is_redundant_constant_pattern(
    tuples: &[dq_relation::Tuple],
    lhs: &[usize],
    lhs_values: &[Value],
    rhs: usize,
    value: &Value,
    min_support: usize,
) -> bool {
    for drop in 0..lhs.len() {
        let sub_attrs: Vec<usize> = lhs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, &a)| a)
            .collect();
        let sub_values: Vec<&Value> = lhs_values
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, v)| v)
            .collect();
        let matching: Vec<&dq_relation::Tuple> = tuples
            .iter()
            .filter(|t| {
                sub_attrs
                    .iter()
                    .zip(&sub_values)
                    .all(|(&a, v)| t.get(a) == *v)
            })
            .collect();
        if matching.len() >= min_support && matching.iter().all(|t| t.get(rhs) == value) {
            return true;
        }
    }
    false
}

/// Interned counterpart of [`is_redundant_constant_pattern`]: each
/// sub-condition is probed through its pooled index by dictionary ids
/// (valid across indexes because columns — and hence dictionaries — are
/// shared per store), and agreement on the right-hand side compares ids.
#[allow(clippy::too_many_arguments)]
fn is_redundant_constant_pattern_interned(
    instance: &RelationInstance,
    pool: &Arc<IndexPool>,
    lhs: &[usize],
    lhs_ids: &[ValueId],
    rhs_col: &Arc<Column>,
    rhs_constant: ValueId,
    min_support: usize,
) -> bool {
    for drop in 0..lhs.len() {
        let sub_attrs: Vec<usize> = lhs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, &a)| a)
            .collect();
        let sub_ids: Vec<ValueId> = lhs_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, &id)| id)
            .collect();
        let sub_index = pool.interned_for(instance, &sub_attrs, 1);
        let rows = sub_index.rows_for_ids(&sub_ids);
        if rows.len() >= min_support
            && rows
                .iter()
                .all(|&r| rhs_col.id_at(r as usize) == rhs_constant)
        {
            return true;
        }
    }
    false
}

/// The grouping / validation backend of [`discover_tableau_for_fd`]: the
/// legacy variant projects `Vec<Value>` keys per tuple, the interned
/// variant groups through pooled indexes and compares packed dictionary
/// ids.  Both hand the shared mining loop groups in sorted key order and
/// members as dense row positions, so the mined tableaux are identical.
enum TableauMiner<'a> {
    Naive {
        tuples: Vec<dq_relation::Tuple>,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
    },
    Interned {
        instance: &'a RelationInstance,
        pool: Arc<IndexPool>,
        lhs_codec: KeyCodec,
        rhs_codec: KeyCodec,
        rhs_cols: Vec<Arc<Column>>,
    },
}

impl<'a> TableauMiner<'a> {
    fn naive(instance: &RelationInstance, fd: &Fd) -> Self {
        TableauMiner::Naive {
            tuples: instance.iter().map(|(_, t)| t.clone()).collect(),
            lhs: fd.lhs().to_vec(),
            rhs: fd.rhs().to_vec(),
        }
    }

    fn interned(instance: &'a RelationInstance, fd: &Fd, pool: &Arc<IndexPool>) -> Self {
        let store = instance.columnar();
        let lhs_cols: Vec<Arc<Column>> = fd
            .lhs()
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        let rhs_cols: Vec<Arc<Column>> = fd
            .rhs()
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        TableauMiner::Interned {
            instance,
            pool: Arc::clone(pool),
            lhs_codec: KeyCodec::new(lhs_cols),
            rhs_codec: KeyCodec::new(rhs_cols.clone()),
            rhs_cols,
        }
    }

    /// Distinct value combinations on `cond_attrs` with at least
    /// `min_support` members, sorted by key values; members are dense row
    /// positions (live tuples in insertion order on both variants).
    fn groups(&self, cond_attrs: &[usize], min_support: usize) -> Vec<(Vec<Value>, Vec<usize>)> {
        let mut out: Vec<(Vec<Value>, Vec<usize>)> = match self {
            TableauMiner::Naive { tuples, .. } => {
                let mut by_key: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (pos, tuple) in tuples.iter().enumerate() {
                    by_key
                        .entry(tuple.project(cond_attrs))
                        .or_default()
                        .push(pos);
                }
                by_key
                    .into_iter()
                    .filter(|(_, members)| members.len() >= min_support)
                    .collect()
            }
            TableauMiner::Interned { instance, pool, .. } => {
                // Condition sets revisit indexes FD discovery already
                // built; a cold build runs single-threaded because the
                // condition-position sets themselves are the parallel axis.
                let index = pool.interned_for(instance, cond_attrs, 1);
                index
                    .groups()
                    .filter(|(_, rows)| rows.len() >= min_support)
                    .map(|(ids, rows)| {
                        (
                            resolve_key(&index, &ids),
                            rows.iter().map(|&r| r as usize).collect(),
                        )
                    })
                    .collect()
            }
        };
        out.sort_by(|a, b| sorted_group_order(&a.0, &b.0));
        out
    }

    /// Does the embedded FD hold on exactly these members?
    fn fd_holds_on(&self, members: &[usize]) -> bool {
        match self {
            TableauMiner::Naive { tuples, lhs, rhs } => {
                let mut by_lhs: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
                for &m in members {
                    let key = tuples[m].project(lhs);
                    let val = tuples[m].project(rhs);
                    match by_lhs.get(&key) {
                        Some(existing) if existing != &val => return false,
                        Some(_) => {}
                        None => {
                            by_lhs.insert(key, val);
                        }
                    }
                }
                true
            }
            TableauMiner::Interned {
                lhs_codec,
                rhs_codec,
                ..
            } => {
                let mut by_lhs: FxHashMap<ProjectionKey, ProjectionKey> = FxHashMap::default();
                for &m in members {
                    let key = lhs_codec.pack_row(m);
                    let val = rhs_codec.pack_row(m);
                    match by_lhs.get(&key) {
                        Some(existing) if existing != &val => return false,
                        Some(_) => {}
                        None => {
                            by_lhs.insert(key, val);
                        }
                    }
                }
                true
            }
        }
    }

    /// The members' common RHS projection, when they all agree on it.
    fn constant_rhs(&self, members: &[usize]) -> Option<Vec<Value>> {
        match self {
            TableauMiner::Naive { tuples, rhs, .. } => {
                let first_rhs = tuples[members[0]].project(rhs);
                members
                    .iter()
                    .all(|&m| tuples[m].project(rhs) == first_rhs)
                    .then_some(first_rhs)
            }
            TableauMiner::Interned {
                rhs_codec,
                rhs_cols,
                ..
            } => {
                let first = rhs_codec.pack_row(members[0]);
                members
                    .iter()
                    .all(|&m| rhs_codec.pack_row(m) == first)
                    .then(|| {
                        rhs_cols
                            .iter()
                            .map(|col| col.interner().resolve(col.id_at(members[0])).clone())
                            .collect()
                    })
            }
        }
    }
}

/// Mines a pattern tableau for the embedded FD `fd` on `instance`: the most
/// general pattern tuples (fewest constants) under which the FD holds with
/// at least [`CfdDiscoveryConfig::min_support`] matching tuples.
///
/// Returns `None` when no pattern with enough support makes the FD hold.
/// When the FD already holds globally the tableau is the single all-wildcard
/// pattern (i.e. the traditional FD).
pub fn discover_tableau_for_fd(
    instance: &RelationInstance,
    fd: &Fd,
    config: &CfdDiscoveryConfig,
) -> Option<Cfd> {
    discover_tableau_for_fd_with_pool(instance, fd, config, &Arc::new(IndexPool::new()))
}

/// [`discover_tableau_for_fd`] over a shared [`IndexPool`] (the condition
/// sets enumerated here revisit the indexes FD discovery already built).
pub fn discover_tableau_for_fd_with_pool(
    instance: &RelationInstance,
    fd: &Fd,
    config: &CfdDiscoveryConfig,
    pool: &Arc<IndexPool>,
) -> Option<Cfd> {
    discover_tableau_for_fd_with_pool_threads(
        instance,
        fd,
        config,
        pool,
        resolve_threads(config.threads),
    )
}

/// [`discover_tableau_for_fd_with_pool`] with an explicit worker budget for
/// the per-condition-set fan-out, so an outer per-FD fan-out can hand each
/// mine a slice of the pool instead of letting every mine claim the whole
/// machine (nesting up to `threads²` scoped workers).
fn discover_tableau_for_fd_with_pool_threads(
    instance: &RelationInstance,
    fd: &Fd,
    config: &CfdDiscoveryConfig,
    pool: &Arc<IndexPool>,
    threads: usize,
) -> Option<Cfd> {
    let _span = dq_obs::span("tableau");
    let schema = instance.schema().clone();
    let lhs = fd.lhs().to_vec();
    let rhs = fd.rhs().to_vec();
    let miner = if config.use_interned {
        TableauMiner::interned(instance, fd, pool)
    } else {
        TableauMiner::naive(instance, fd)
    };
    let mut accepted: Vec<PatternTuple> = Vec::new();

    /// One validated pattern candidate, produced by a per-condition-set
    /// worker; acceptance (generality pruning + the tableau cap) happens at
    /// the sequential merge so the mined tableau is order-identical to the
    /// sequential sweep.
    struct TableauCandidate {
        lhs_pattern: Vec<PatternValue>,
        holds: bool,
        constant_rhs: Option<Vec<Value>>,
    }

    let max_constants = config.max_condition_attrs.min(lhs.len());
    for constants in 0..=max_constants {
        if accepted.len() >= config.max_tableau {
            break;
        }
        // Positions (within the LHS list) that carry constants.
        let positions = subsets_of_size(&(0..lhs.len()).collect::<Vec<_>>(), constants);
        let position_sets: Vec<Vec<usize>> = if constants == 0 {
            vec![Vec::new()]
        } else {
            positions
        };
        // Two patterns with the same number of constants can never cover
        // each other (coverage needs a constant-position subset, equal
        // counts force equality), so the generality prune only ever fires
        // on patterns accepted at *earlier* levels — frozen for the whole
        // level.  That makes the condition-position sets independent: each
        // worker groups and validates its candidates against the frozen
        // tableau, and the merge below re-applies acceptance sequentially.
        let per_set: Vec<Vec<TableauCandidate>> =
            parallel_map(&position_sets, threads, |cond_positions| {
                let cond_attrs: Vec<usize> = cond_positions.iter().map(|&p| lhs[p]).collect();
                miner
                    .groups(&cond_attrs, config.min_support)
                    .into_iter()
                    .filter_map(|(cond_values, members)| {
                        let lhs_pattern: Vec<PatternValue> = (0..lhs.len())
                            .map(|p| match cond_positions.iter().position(|&c| c == p) {
                                Some(i) => PatternValue::Const(cond_values[i].clone()),
                                None => PatternValue::Any,
                            })
                            .collect();
                        // Prefer the most general patterns: skip a candidate
                        // whose LHS is covered by an already accepted, more
                        // general one (all from earlier levels).
                        if accepted
                            .iter()
                            .any(|a| lhs_more_general(&a.lhs, &lhs_pattern))
                        {
                            return None;
                        }
                        Some(TableauCandidate {
                            // Does the embedded FD hold on the matching tuples?
                            holds: miner.fd_holds_on(&members),
                            constant_rhs: miner.constant_rhs(&members),
                            lhs_pattern,
                        })
                    })
                    .collect()
            });
        // Sequential merge in canonical candidate order.  The cap breaks
        // only the *current* condition set's candidates — exactly the
        // sequential loop's behaviour (its cap check sat in the inner
        // group loop), so later condition sets of the level still emit.
        for (cond_positions, candidates) in position_sets.iter().zip(per_set) {
            for candidate in candidates {
                if accepted
                    .iter()
                    .any(|a| lhs_more_general(&a.lhs, &candidate.lhs_pattern))
                {
                    continue;
                }
                if !candidate.holds {
                    continue;
                }
                // Upgrade the RHS to constants when every matching tuple
                // agrees on it (the `city = EDI` shape of cfd2/cfd3).
                let rhs_pattern: Vec<PatternValue> = match candidate.constant_rhs {
                    Some(first_rhs) if !cond_positions.is_empty() => {
                        first_rhs.into_iter().map(PatternValue::Const).collect()
                    }
                    _ => vec![PatternValue::Any; rhs.len()],
                };
                accepted.push(PatternTuple::new(candidate.lhs_pattern, rhs_pattern));
                if accepted.len() >= config.max_tableau {
                    break;
                }
            }
        }
    }

    if accepted.is_empty() {
        return None;
    }
    accepted.sort_by_key(|tp| format!("{tp}"));
    accepted.dedup();
    Cfd::from_indices(&schema, lhs, rhs, accepted).ok()
}

/// Full CFD discovery: exact FDs (reported as all-wildcard CFDs), conditional
/// tableaux for approximate FDs, and constant CFDs.
pub fn discover_cfds(instance: &RelationInstance, config: &CfdDiscoveryConfig) -> DiscoveredCfds {
    discover_cfds_with_pool(instance, config, &Arc::new(IndexPool::new()))
}

/// [`discover_cfds`] over a shared [`IndexPool`]: FD discovery, the `g3`
/// conditioning filter, tableau mining and constant-pattern mining all draw
/// their groupings from the same pooled interned indexes, so each distinct
/// attribute set is encoded once for the entire run.
pub fn discover_cfds_with_pool(
    instance: &RelationInstance,
    config: &CfdDiscoveryConfig,
    pool: &Arc<IndexPool>,
) -> DiscoveredCfds {
    let _span = dq_obs::span!("discover.cfd", arity = instance.schema().arity());
    let mut candidates_checked = 0usize;

    // Exact FDs become traditional (all-wildcard) CFDs.
    let exact = discover_fds_with_pool(
        instance,
        &FdDiscoveryConfig {
            max_lhs: config.max_lhs,
            max_g3: 0.0,
            exclude: config.exclude.clone(),
            use_interned: config.use_interned,
            threads: config.threads,
        },
        pool,
    );
    candidates_checked += exact.candidates_checked;
    let mut variable_cfds: Vec<Cfd> = exact.fds.iter().map(Cfd::from_fd).collect();
    let mut level_ms = exact.level_ms.clone();

    // Approximate FDs (hold after removing at most `max_candidate_g3` of the
    // tuples but not exactly) are conditioning candidates: mine a tableau.
    let approx = discover_fds_with_pool(
        instance,
        &FdDiscoveryConfig {
            max_lhs: config.max_lhs,
            max_g3: config.max_candidate_g3,
            exclude: config.exclude.clone(),
            use_interned: config.use_interned,
            threads: config.threads,
        },
        pool,
    );
    candidates_checked += approx.candidates_checked;
    add_level_ms(&mut level_ms, &approx.level_ms);
    // The per-FD tableau mines are independent — each conditions its own
    // embedded FD against the frozen exact set — so they fan out across the
    // pool.  Each worker gets an inner budget of the thread pool for its
    // per-condition-set fan-out, keeping the total scoped-worker count at
    // `threads` instead of `threads²`.  `parallel_map` preserves input
    // order, so the mined CFDs and `candidates_checked` are byte-identical
    // to the sequential loop at any thread count.
    let tableau_fds: Vec<&dq_core::fd::Fd> = approx
        .fds
        .iter()
        .filter(|fd| {
            !exact
                .fds
                .iter()
                .any(|e| e.lhs() == fd.lhs() && e.rhs() == fd.rhs())
        })
        .collect();
    let threads = resolve_threads(config.threads);
    let outer = threads.min(tableau_fds.len()).max(1);
    let inner = (threads / outer).max(1);
    struct FdOutcome {
        checked: bool,
        cfd: Option<Cfd>,
    }
    let outcomes: Vec<FdOutcome> = parallel_map(&tableau_fds, threads, |fd| {
        // Only condition on FDs that genuinely fail globally.
        let fd_g3 = if config.use_interned {
            let index = pool.interned_for(instance, fd.lhs(), 1);
            g3_error_interned(&index, instance, fd.rhs())
        } else {
            g3_error(instance, fd.lhs(), fd.rhs())
        };
        if fd_g3 == 0.0 {
            return FdOutcome {
                checked: false,
                cfd: None,
            };
        }
        FdOutcome {
            checked: true,
            cfd: discover_tableau_for_fd_with_pool_threads(instance, fd, config, pool, inner),
        }
    });
    for outcome in outcomes {
        if !outcome.checked {
            continue;
        }
        candidates_checked += 1;
        if let Some(cfd) = outcome.cfd {
            // A tableau consisting solely of the all-wildcard pattern adds
            // nothing beyond the (failing) traditional FD.
            if !cfd.tableau().iter().all(PatternTuple::is_all_wildcards) {
                variable_cfds.push(cfd);
            }
        }
    }

    let (constant_cfds, constant_level_ms) =
        discover_constant_cfds_with_pool_timed(instance, config, pool);
    add_level_ms(&mut level_ms, &constant_level_ms);
    let mut discovered = DiscoveredCfds {
        variable_cfds,
        constant_cfds,
        candidates_checked,
        level_ms,
        cover_dropped: 0,
    };

    // Opt-in static-analysis post-pass: replace the mined set with its
    // canonical minimal cover, so redundant (implied) fragments never reach
    // detection or repair.  The cover works on normalized single-pattern
    // fragments, which are re-classified by shape.
    if config.minimal_cover {
        let all = discovered.all();
        let normalized: usize = all.iter().map(|c| c.normalize().len()).sum();
        let cover = cfd_minimal_cover(&all);
        discovered.cover_dropped = normalized.saturating_sub(cover.len());
        let (constant, variable) = cover.into_iter().partition(Cfd::is_constant);
        discovered.constant_cfds = constant;
        discovered.variable_cfds = variable;
        dq_obs::add(
            "discover.cfd.cover_dropped",
            discovered.cover_dropped as u64,
        );
    }
    discovered
}

/// Element-wise sum of per-level timings, growing `total` as needed (the
/// lattice sweeps and constant mining may stop at different depths).
fn add_level_ms(total: &mut Vec<f64>, levels: &[f64]) {
    if total.len() < levels.len() {
        total.resize(levels.len(), 0.0);
    }
    for (t, l) in total.iter_mut().zip(levels) {
        *t += l;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::detect::detect_cfd_violations;
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    /// A miniature customer-like schema: country, area code, city, street.
    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "cust",
            vec![
                ("cc", Domain::Int),
                ("ac", Domain::Int),
                ("city", Domain::Text),
                ("zip", Domain::Text),
                ("street", Domain::Text),
            ],
        ))
    }

    fn row(inst: &mut RelationInstance, cc: i64, ac: i64, city: &str, zip: &str, street: &str) {
        inst.insert_values(vec![
            Value::int(cc),
            Value::int(ac),
            Value::str(city),
            Value::str(zip),
            Value::str(street),
        ])
        .unwrap();
    }

    /// UK rows obey zip → street; US rows deliberately break it.
    fn uk_us_instance() -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for i in 0..6 {
            row(
                &mut inst,
                44,
                131,
                "EDI",
                &format!("EH{}", i / 2),
                &format!("S{}", i / 2),
            );
        }
        // US: same zip, different streets.
        row(&mut inst, 1, 908, "MH", "07974", "Mtn Ave");
        row(&mut inst, 1, 908, "MH", "07974", "Main St");
        row(&mut inst, 1, 212, "NYC", "10001", "5th Ave");
        row(&mut inst, 1, 212, "NYC", "10001", "Broadway");
        inst
    }

    #[test]
    fn constant_cfds_find_area_code_city_pattern() {
        let inst = uk_us_instance();
        let config = CfdDiscoveryConfig {
            min_support: 2,
            max_lhs: 2,
            ..CfdDiscoveryConfig::default()
        };
        let cfds = discover_constant_cfds(&inst, &config);
        // ac = 131 → city = EDI must be found (as a minimal, single-attribute
        // condition; the redundant {cc = 44, ac = 131} version must not be).
        let found = cfds.iter().any(|c| {
            c.lhs() == [1]
                && c.rhs() == [2]
                && c.tableau().iter().any(|tp| {
                    tp.lhs == [PatternValue::Const(Value::int(131))]
                        && tp.rhs == [PatternValue::Const(Value::str("EDI"))]
                })
        });
        assert!(found, "expected ac=131 → city=EDI, got {cfds:?}");
        let redundant = cfds.iter().any(|c| c.lhs() == [0, 1] && c.rhs() == [2]);
        assert!(
            !redundant,
            "two-attribute condition should be pruned as non-minimal"
        );
    }

    #[test]
    fn constant_cfds_hold_on_the_instance() {
        let inst = uk_us_instance();
        let cfds = discover_constant_cfds(&inst, &CfdDiscoveryConfig::default());
        assert!(!cfds.is_empty());
        let report = detect_cfd_violations(&inst, &cfds);
        assert!(
            report.is_clean(),
            "discovered constant CFDs must hold on the data"
        );
    }

    #[test]
    fn tableau_mining_recovers_uk_condition() {
        let inst = uk_us_instance();
        // zip → street fails globally (US rows), holds for cc = 44.
        let fd = Fd::new(&schema(), &["cc", "zip"], &["street"]);
        let cfd = discover_tableau_for_fd(&inst, &fd, &CfdDiscoveryConfig::default())
            .expect("a conditional tableau exists");
        assert!(cfd.holds_on(&inst));
        let has_uk_pattern = cfd
            .tableau()
            .iter()
            .any(|tp| tp.lhs.first() == Some(&PatternValue::Const(Value::int(44))));
        assert!(
            has_uk_pattern,
            "expected a (44, _) pattern, got {:?}",
            cfd.tableau()
        );
    }

    #[test]
    fn tableau_mining_returns_none_without_support() {
        let mut inst = RelationInstance::new(schema());
        // Two tuples that violate zip → street and share no usable condition.
        row(&mut inst, 1, 212, "NYC", "10001", "5th Ave");
        row(&mut inst, 1, 212, "NYC", "10001", "Broadway");
        let fd = Fd::new(&schema(), &["zip"], &["street"]);
        let config = CfdDiscoveryConfig {
            min_support: 2,
            ..CfdDiscoveryConfig::default()
        };
        assert!(discover_tableau_for_fd(&inst, &fd, &config).is_none());
    }

    #[test]
    fn exact_fd_becomes_all_wildcard_tableau() {
        let mut inst = RelationInstance::new(schema());
        row(&mut inst, 44, 131, "EDI", "EH1", "S1");
        row(&mut inst, 44, 131, "EDI", "EH1", "S1");
        row(&mut inst, 44, 141, "GLA", "G1", "S2");
        let fd = Fd::new(&schema(), &["zip"], &["street"]);
        let cfd = discover_tableau_for_fd(&inst, &fd, &CfdDiscoveryConfig::default()).unwrap();
        assert!(cfd.tableau().iter().any(PatternTuple::is_all_wildcards));
    }

    #[test]
    fn full_discovery_output_is_consistent_with_the_data() {
        let inst = uk_us_instance();
        let discovered = discover_cfds(&inst, &CfdDiscoveryConfig::default());
        assert!(!discovered.is_empty());
        let report = detect_cfd_violations(&inst, &discovered.all());
        assert!(
            report.is_clean(),
            "every discovered CFD must hold on the instance it was mined from"
        );
    }

    #[test]
    fn fan_out_is_byte_identical_to_sequential_mining() {
        let inst = uk_us_instance();
        for use_interned in [false, true] {
            let config = |threads| CfdDiscoveryConfig {
                threads,
                use_interned,
                min_support: 2,
                max_lhs: 2,
                ..CfdDiscoveryConfig::default()
            };
            let sequential = discover_cfds(&inst, &config(1));
            for threads in [2, 8] {
                let parallel = discover_cfds(&inst, &config(threads));
                assert_eq!(
                    parallel.variable_cfds, sequential.variable_cfds,
                    "threads {threads}"
                );
                assert_eq!(parallel.constant_cfds, sequential.constant_cfds);
                assert_eq!(parallel.candidates_checked, sequential.candidates_checked);
            }
        }
    }

    #[test]
    fn discovery_respects_exclusions() {
        let inst = uk_us_instance();
        let config = CfdDiscoveryConfig {
            exclude: vec![4],
            ..CfdDiscoveryConfig::default()
        };
        let discovered = discover_cfds(&inst, &config);
        for cfd in discovered.all() {
            assert!(!cfd.lhs().contains(&4));
            assert!(!cfd.rhs().contains(&4));
        }
    }
}
