//! Stripped partitions and partition-based error measures.
//!
//! A partition `π_X` of a relation instance groups tuples by their values on
//! an attribute list `X`.  The *stripped* partition drops singleton classes —
//! they can never witness an FD violation and dropping them keeps products
//! cheap.  Partitions are the workhorse of level-wise dependency discovery
//! (TANE and its conditional descendants): an FD `X → A` holds exactly when
//! `π_X` and `π_{X ∪ {A}}` have the same error, and the `g3` error of a
//! candidate FD is the minimum number of tuples that must be removed for it
//! to hold, which doubles as an approximation measure.

use dq_relation::{
    Column, FxHashMap, InternedIndex, KeyCodec, ProjectionKey, RelationInstance, ShardSource,
    TupleId, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A stripped partition: the equivalence classes of size ≥ 2 of a relation
/// instance under "agrees on `X`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Equivalence classes with at least two members, each sorted by tuple id.
    classes: Vec<Vec<TupleId>>,
    /// Number of tuples in the underlying instance.
    total: usize,
}

impl StrippedPartition {
    /// Builds the stripped partition of `instance` on the attribute list
    /// `attrs`.  The partition on the empty list has a single class holding
    /// every tuple (if there are at least two).
    pub fn build(instance: &RelationInstance, attrs: &[usize]) -> Self {
        let mut groups: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        // Project into a reused buffer; a key vector is allocated only the
        // first time a projection is seen, not once per tuple.
        let mut buffer: Vec<Value> = Vec::with_capacity(attrs.len());
        for (id, tuple) in instance.iter() {
            buffer.clear();
            buffer.extend(attrs.iter().map(|&a| tuple.get(a).clone()));
            match groups.get_mut(buffer.as_slice()) {
                Some(class) => class.push(id),
                None => {
                    groups.insert(buffer.clone(), vec![id]);
                }
            }
        }
        let mut classes: Vec<Vec<TupleId>> = groups
            .into_values()
            .filter(|class| class.len() >= 2)
            .collect();
        for class in &mut classes {
            class.sort();
        }
        classes.sort();
        StrippedPartition {
            classes,
            total: instance.len(),
        }
    }

    /// Derives the stripped partition directly from the CSR postings of an
    /// interned index on the same attribute list: every group of size ≥ 2
    /// *is* an equivalence class (group keys never need decoding), and row
    /// numbers translate to ascending tuple ids for free.  Produces exactly
    /// [`build`](Self::build)'s partition without materializing a single
    /// `Vec<Value>` key.
    pub fn from_interned(index: &InternedIndex) -> Self {
        let mut classes: Vec<Vec<TupleId>> = index
            .group_rows_iter()
            .filter(|rows| rows.len() >= 2)
            // Rows ascend within a CSR group and tuple ids ascend with row
            // numbers, so each class arrives pre-sorted.
            .map(|rows| rows.iter().map(|&r| index.tuple_id(r)).collect())
            .collect();
        classes.sort();
        StrippedPartition {
            classes,
            total: index.store().len(),
        }
    }

    /// Builds the stripped partition over a shard source — an in-RAM
    /// snapshot or a memory-mapped relation — with a two-scan count→collect
    /// pass: the first scan counts packed keys, the second collects tuple
    /// ids only for keys seen at least twice, so singleton projections
    /// (typically the bulk) never allocate a class.  Produces exactly
    /// [`build`](Self::build)'s partition; resident memory is bounded by
    /// the dictionaries, the key tallies and the surviving classes.
    pub fn from_shards(source: &dyn ShardSource, attrs: &[usize]) -> Self {
        let cols: Vec<Arc<Column>> = attrs.iter().map(|&a| source.column(a)).collect();
        let codec = KeyCodec::new(cols);
        let mut counts: FxHashMap<ProjectionKey, u32> = FxHashMap::default();
        for shard in 0..source.shard_count() {
            for row in source.shard_range(shard) {
                *counts.entry(codec.pack_row(row)).or_insert(0) += 1;
            }
        }
        let mut groups: FxHashMap<ProjectionKey, Vec<TupleId>> = FxHashMap::default();
        for shard in 0..source.shard_count() {
            for row in source.shard_range(shard) {
                let key = codec.pack_row(row);
                if counts.get(&key).copied().unwrap_or(0) >= 2 {
                    groups.entry(key).or_default().push(source.tuple_id(row));
                }
            }
            source.release_shard(shard);
        }
        // Rows ascend within the scan and tuple ids ascend with row numbers,
        // so each class arrives pre-sorted; only the class list needs a sort.
        let mut classes: Vec<Vec<TupleId>> = groups.into_values().collect();
        classes.sort();
        StrippedPartition {
            classes,
            total: source.len(),
        }
    }

    /// Constructs a partition directly from classes (used by [`product`]).
    ///
    /// [`product`]: StrippedPartition::product
    fn from_classes(mut classes: Vec<Vec<TupleId>>, total: usize) -> Self {
        for class in &mut classes {
            class.sort();
        }
        classes.retain(|c| c.len() >= 2);
        classes.sort();
        StrippedPartition { classes, total }
    }

    /// The equivalence classes of size ≥ 2.
    pub fn classes(&self) -> &[Vec<TupleId>] {
        &self.classes
    }

    /// Number of non-singleton classes, `|π|` in TANE notation (singletons
    /// stripped).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// `‖π‖`: the number of tuples that live in a non-singleton class.
    pub fn size(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Number of tuples in the underlying instance.
    pub fn total_tuples(&self) -> usize {
        self.total
    }

    /// The TANE error `e(π) = ‖π‖ − |π|`: the minimum number of tuples that
    /// must be removed so that every remaining class is a singleton — i.e.
    /// so that `X` becomes a key of the non-singleton part.
    pub fn error(&self) -> usize {
        self.size() - self.class_count()
    }

    /// Whether `X` (this partition's attribute list) is a superkey: every
    /// class is a singleton, so the stripped partition is empty.
    pub fn is_superkey(&self) -> bool {
        self.classes.is_empty()
    }

    /// The product `π_X · π_Y = π_{X ∪ Y}`: refines this partition by
    /// `other`, splitting every class of `self` by the class (or singleton)
    /// of `other` each member belongs to.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        self.product_with(other, &mut PartitionProber::new())
    }

    /// [`product`](Self::product) over a caller-owned [`PartitionProber`]:
    /// the tuple → class probe table and the per-class gather buckets are
    /// reused across calls, so the inner loop of level-wise discovery (one
    /// product per candidate) allocates nothing once warm.
    pub fn product_with(
        &self,
        other: &StrippedPartition,
        prober: &mut PartitionProber,
    ) -> StrippedPartition {
        // Stamp every tuple of a non-singleton class of `other` with its
        // class index; tuples outside are singletons there and stay
        // singletons in the product.
        let epoch = prober.begin(other.classes.len());
        for (idx, class) in other.classes.iter().enumerate() {
            for &id in class {
                prober.stamp(id, idx as u32, epoch);
            }
        }
        let mut out: Vec<Vec<TupleId>> = Vec::new();
        for class in &self.classes {
            for &id in class {
                if let Some(idx) = prober.class_of(id, epoch) {
                    let bucket = &mut prober.buckets[idx as usize];
                    if bucket.is_empty() {
                        prober.touched.push(idx);
                    }
                    bucket.push(id);
                }
            }
            for &idx in &prober.touched {
                let bucket = &mut prober.buckets[idx as usize];
                if bucket.len() >= 2 {
                    out.push(bucket.clone());
                }
                bucket.clear();
            }
            prober.touched.clear();
        }
        StrippedPartition::from_classes(out, self.total)
    }

    /// Whether the FD `X → Y` holds, where `self` is `π_X` and `with_rhs` is
    /// `π_{X ∪ Y}`: the FD holds iff refining by `Y` does not split any
    /// class, i.e. the two partitions have the same error.
    pub fn implies_with(&self, with_rhs: &StrippedPartition) -> bool {
        self.error() == with_rhs.error()
    }
}

/// Reusable scratch for [`StrippedPartition::product_with`]: an
/// epoch-stamped tuple-id → class probe table (no clearing between
/// products) plus the per-class gather buckets.  One prober serves an
/// entire discovery run.
#[derive(Debug, Default)]
pub struct PartitionProber {
    /// Class index of each tuple id in the current `other` partition.
    class_of: Vec<u32>,
    /// Epoch at which `class_of` was last written per tuple; stale stamps
    /// mean "singleton in `other`".
    stamps: Vec<u32>,
    epoch: u32,
    /// One gather bucket per class of `other`, cleared after each class of
    /// `self` (capacity is retained across products).
    buckets: Vec<Vec<TupleId>>,
    /// Bucket indexes touched while splitting the current class.
    touched: Vec<u32>,
}

impl PartitionProber {
    /// A fresh prober.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new product: advances the epoch (resetting all stamps on
    /// the rare wrap-around) and ensures at least `classes` buckets exist.
    fn begin(&mut self, classes: usize) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        if self.buckets.len() < classes {
            self.buckets.resize_with(classes, Vec::new);
        }
        self.epoch
    }

    #[inline]
    fn stamp(&mut self, id: TupleId, class: u32, epoch: u32) {
        if self.class_of.len() <= id.0 {
            self.class_of.resize(id.0 + 1, 0);
            self.stamps.resize(id.0 + 1, 0);
        }
        self.class_of[id.0] = class;
        self.stamps[id.0] = epoch;
    }

    #[inline]
    fn class_of(&self, id: TupleId, epoch: u32) -> Option<u32> {
        match self.stamps.get(id.0) {
            Some(&stamp) if stamp == epoch => Some(self.class_of[id.0]),
            _ => None,
        }
    }
}

/// The `g1` error of the FD `X → Y` on `instance`: the fraction of tuple
/// *pairs* that violate the FD (agree on `X` but disagree on `Y`), over all
/// ordered pairs of distinct tuples.  `0.0` means the FD holds exactly.
pub fn g1_error(instance: &RelationInstance, lhs: &[usize], rhs: &[usize]) -> f64 {
    let n = instance.len();
    if n < 2 {
        return 0.0;
    }
    let mut groups: HashMap<Vec<Value>, HashMap<Vec<Value>, usize>> = HashMap::new();
    for (_, tuple) in instance.iter() {
        *groups
            .entry(tuple.project(lhs))
            .or_default()
            .entry(tuple.project(rhs))
            .or_default() += 1;
    }
    let mut violating_pairs = 0usize;
    for rhs_counts in groups.values() {
        let group_size: usize = rhs_counts.values().sum();
        let same_rhs_pairs: usize = rhs_counts.values().map(|c| c * (c - 1)).sum();
        violating_pairs += group_size * (group_size - 1) - same_rhs_pairs;
    }
    violating_pairs as f64 / (n * (n - 1)) as f64
}

/// [`g3_error`] over an interned LHS index: group sizes come straight from
/// the CSR layout and the per-group `Y` tallies count packed id keys
/// (machine words) instead of materialized `Vec<Value>` projections.  The
/// arithmetic is identical, so the returned error is bit-identical to the
/// naive measure's.
pub fn g3_error_interned(index: &InternedIndex, instance: &RelationInstance, rhs: &[usize]) -> f64 {
    let n = index.store().len();
    if n == 0 {
        return 0.0;
    }
    let store = index.store();
    let rhs_cols: Vec<Arc<Column>> = rhs.iter().map(|&a| store.column(instance, a)).collect();
    let codec = KeyCodec::new(rhs_cols);
    let mut removed = 0usize;
    let mut counts: FxHashMap<ProjectionKey, usize> = FxHashMap::default();
    // Singleton groups keep their lone tuple, so only multi-row groups can
    // force removals.
    for rows in index.group_rows_iter().filter(|rows| rows.len() >= 2) {
        counts.clear();
        for &row in rows {
            *counts.entry(codec.pack_row(row as usize)).or_insert(0) += 1;
        }
        let keep = counts.values().copied().max().unwrap_or(0);
        removed += rows.len() - keep;
    }
    removed as f64 / n as f64
}

/// [`g3_error`] over a shard source: a count scan finds the multi-row
/// `X`-groups, then a second scan tallies packed `Y`-keys per such group.
/// Singleton groups force no removals, so skipping them changes nothing —
/// the arithmetic is identical to [`g3_error`] and [`g3_error_interned`].
pub fn g3_error_from_shards(source: &dyn ShardSource, lhs: &[usize], rhs: &[usize]) -> f64 {
    let n = source.len();
    if n == 0 {
        return 0.0;
    }
    let lhs_codec = KeyCodec::new(lhs.iter().map(|&a| source.column(a)).collect());
    let rhs_codec = KeyCodec::new(rhs.iter().map(|&a| source.column(a)).collect());
    let mut counts: FxHashMap<ProjectionKey, u32> = FxHashMap::default();
    for shard in 0..source.shard_count() {
        for row in source.shard_range(shard) {
            *counts.entry(lhs_codec.pack_row(row)).or_insert(0) += 1;
        }
    }
    let mut tallies: FxHashMap<ProjectionKey, FxHashMap<ProjectionKey, usize>> =
        FxHashMap::default();
    for shard in 0..source.shard_count() {
        for row in source.shard_range(shard) {
            let key = lhs_codec.pack_row(row);
            if counts.get(&key).copied().unwrap_or(0) >= 2 {
                *tallies
                    .entry(key)
                    .or_default()
                    .entry(rhs_codec.pack_row(row))
                    .or_insert(0) += 1;
            }
        }
        source.release_shard(shard);
    }
    let mut removed = 0usize;
    for rhs_counts in tallies.values() {
        let group_size: usize = rhs_counts.values().sum();
        let keep = rhs_counts.values().copied().max().unwrap_or(0);
        removed += group_size - keep;
    }
    removed as f64 / n as f64
}

/// The `g3` error of the FD `X → Y` on `instance`: the minimum fraction of
/// tuples that must be deleted for the FD to hold.  Within every `X`-group
/// all tuples except those carrying the most frequent `Y`-value must go.
pub fn g3_error(instance: &RelationInstance, lhs: &[usize], rhs: &[usize]) -> f64 {
    let n = instance.len();
    if n == 0 {
        return 0.0;
    }
    let mut groups: HashMap<Vec<Value>, HashMap<Vec<Value>, usize>> = HashMap::new();
    for (_, tuple) in instance.iter() {
        *groups
            .entry(tuple.project(lhs))
            .or_default()
            .entry(tuple.project(rhs))
            .or_default() += 1;
    }
    let mut removed = 0usize;
    for rhs_counts in groups.values() {
        let group_size: usize = rhs_counts.values().sum();
        let keep = rhs_counts.values().copied().max().unwrap_or(0);
        removed += group_size - keep;
    }
    removed as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            vec![("a", Domain::Text), ("b", Domain::Text), ("c", Domain::Int)],
        ))
    }

    fn instance(rows: &[(&str, &str, i64)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b, c) in rows {
            inst.insert_values(vec![Value::str(*a), Value::str(*b), Value::int(*c)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn build_groups_by_projection() {
        let inst = instance(&[("x", "p", 1), ("x", "q", 2), ("y", "p", 3)]);
        let pa = StrippedPartition::build(&inst, &[0]);
        assert_eq!(pa.class_count(), 1);
        assert_eq!(pa.size(), 2);
        assert_eq!(pa.error(), 1);
        let pb = StrippedPartition::build(&inst, &[1]);
        assert_eq!(pb.class_count(), 1);
        let pc = StrippedPartition::build(&inst, &[2]);
        assert!(pc.is_superkey());
    }

    #[test]
    fn empty_attribute_list_is_one_class() {
        let inst = instance(&[("x", "p", 1), ("y", "q", 2), ("z", "r", 3)]);
        let p = StrippedPartition::build(&inst, &[]);
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.size(), 3);
        assert_eq!(p.error(), 2);
    }

    #[test]
    fn product_equals_direct_build() {
        let inst = instance(&[
            ("x", "p", 1),
            ("x", "p", 1),
            ("x", "q", 1),
            ("y", "p", 2),
            ("y", "p", 2),
        ]);
        let pa = StrippedPartition::build(&inst, &[0]);
        let pb = StrippedPartition::build(&inst, &[1]);
        let product = pa.product(&pb);
        let direct = StrippedPartition::build(&inst, &[0, 1]);
        assert_eq!(product, direct);
    }

    #[test]
    fn product_is_commutative() {
        let inst = instance(&[
            ("x", "p", 1),
            ("x", "q", 2),
            ("x", "q", 3),
            ("y", "q", 4),
            ("y", "q", 5),
            ("y", "p", 6),
        ]);
        let pa = StrippedPartition::build(&inst, &[0]);
        let pb = StrippedPartition::build(&inst, &[1]);
        assert_eq!(pa.product(&pb), pb.product(&pa));
    }

    #[test]
    fn fd_detection_via_error_equality() {
        // a -> b holds; b -> a does not.
        let inst = instance(&[("x", "p", 1), ("x", "p", 2), ("y", "p", 3), ("z", "q", 4)]);
        let pa = StrippedPartition::build(&inst, &[0]);
        let pab = StrippedPartition::build(&inst, &[0, 1]);
        assert!(pa.implies_with(&pab));
        let pb = StrippedPartition::build(&inst, &[1]);
        let pba = StrippedPartition::build(&inst, &[1, 0]);
        assert!(!pb.implies_with(&pba));
    }

    #[test]
    fn g1_zero_iff_fd_holds() {
        let holds = instance(&[("x", "p", 1), ("x", "p", 2), ("y", "q", 3)]);
        assert_eq!(g1_error(&holds, &[0], &[1]), 0.0);
        let fails = instance(&[("x", "p", 1), ("x", "q", 2)]);
        assert!(g1_error(&fails, &[0], &[1]) > 0.0);
    }

    #[test]
    fn g3_counts_minimum_removals() {
        // Group "x" has b-values p,p,q: one removal fixes it.  4 tuples total.
        let inst = instance(&[("x", "p", 1), ("x", "p", 2), ("x", "q", 3), ("y", "r", 4)]);
        let g3 = g3_error(&inst, &[0], &[1]);
        assert!((g3 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn g3_zero_on_empty_and_satisfying() {
        let empty = RelationInstance::new(schema());
        assert_eq!(g3_error(&empty, &[0], &[1]), 0.0);
        let holds = instance(&[("x", "p", 1), ("y", "q", 2)]);
        assert_eq!(g3_error(&holds, &[0], &[1]), 0.0);
    }

    #[test]
    fn from_shards_matches_build() {
        let inst = instance(&[
            ("x", "p", 1),
            ("x", "p", 1),
            ("x", "q", 1),
            ("y", "p", 2),
            ("y", "p", 2),
            ("z", "q", 3),
        ]);
        let source = dq_relation::StoreShardSource::new(&inst);
        for attrs in [&[0usize][..], &[1], &[2], &[0, 1], &[0, 1, 2], &[]] {
            assert_eq!(
                StrippedPartition::from_shards(&source, attrs),
                StrippedPartition::build(&inst, attrs),
                "attrs {attrs:?}"
            );
        }
    }

    #[test]
    fn g3_from_shards_matches_naive() {
        let inst = instance(&[("x", "p", 1), ("x", "p", 2), ("x", "q", 3), ("y", "r", 4)]);
        let source = dq_relation::StoreShardSource::new(&inst);
        for (lhs, rhs) in [
            (&[0usize][..], &[1usize][..]),
            (&[1], &[0]),
            (&[0, 1], &[2]),
            (&[2], &[0]),
        ] {
            assert_eq!(
                g3_error_from_shards(&source, lhs, rhs),
                g3_error(&inst, lhs, rhs),
                "{lhs:?} -> {rhs:?}"
            );
        }
    }

    #[test]
    fn superkey_partition_has_no_classes() {
        let inst = instance(&[("x", "p", 1), ("y", "p", 2), ("z", "p", 3)]);
        let p = StrippedPartition::build(&inst, &[0]);
        assert!(p.is_superkey());
        assert_eq!(p.error(), 0);
    }
}
