//! Stripped partitions and partition-based error measures.
//!
//! A partition `π_X` of a relation instance groups tuples by their values on
//! an attribute list `X`.  The *stripped* partition drops singleton classes —
//! they can never witness an FD violation and dropping them keeps products
//! cheap.  Partitions are the workhorse of level-wise dependency discovery
//! (TANE and its conditional descendants): an FD `X → A` holds exactly when
//! `π_X` and `π_{X ∪ {A}}` have the same error, and the `g3` error of a
//! candidate FD is the minimum number of tuples that must be removed for it
//! to hold, which doubles as an approximation measure.

use dq_relation::{RelationInstance, TupleId, Value};
use std::collections::HashMap;

/// A stripped partition: the equivalence classes of size ≥ 2 of a relation
/// instance under "agrees on `X`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Equivalence classes with at least two members, each sorted by tuple id.
    classes: Vec<Vec<TupleId>>,
    /// Number of tuples in the underlying instance.
    total: usize,
}

impl StrippedPartition {
    /// Builds the stripped partition of `instance` on the attribute list
    /// `attrs`.  The partition on the empty list has a single class holding
    /// every tuple (if there are at least two).
    pub fn build(instance: &RelationInstance, attrs: &[usize]) -> Self {
        let mut groups: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        for (id, tuple) in instance.iter() {
            groups.entry(tuple.project(attrs)).or_default().push(id);
        }
        let mut classes: Vec<Vec<TupleId>> = groups
            .into_values()
            .filter(|class| class.len() >= 2)
            .collect();
        for class in &mut classes {
            class.sort();
        }
        classes.sort();
        StrippedPartition {
            classes,
            total: instance.len(),
        }
    }

    /// Constructs a partition directly from classes (used by [`product`]).
    ///
    /// [`product`]: StrippedPartition::product
    fn from_classes(mut classes: Vec<Vec<TupleId>>, total: usize) -> Self {
        for class in &mut classes {
            class.sort();
        }
        classes.retain(|c| c.len() >= 2);
        classes.sort();
        StrippedPartition { classes, total }
    }

    /// The equivalence classes of size ≥ 2.
    pub fn classes(&self) -> &[Vec<TupleId>] {
        &self.classes
    }

    /// Number of non-singleton classes, `|π|` in TANE notation (singletons
    /// stripped).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// `‖π‖`: the number of tuples that live in a non-singleton class.
    pub fn size(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Number of tuples in the underlying instance.
    pub fn total_tuples(&self) -> usize {
        self.total
    }

    /// The TANE error `e(π) = ‖π‖ − |π|`: the minimum number of tuples that
    /// must be removed so that every remaining class is a singleton — i.e.
    /// so that `X` becomes a key of the non-singleton part.
    pub fn error(&self) -> usize {
        self.size() - self.class_count()
    }

    /// Whether `X` (this partition's attribute list) is a superkey: every
    /// class is a singleton, so the stripped partition is empty.
    pub fn is_superkey(&self) -> bool {
        self.classes.is_empty()
    }

    /// The product `π_X · π_Y = π_{X ∪ Y}`: refines this partition by
    /// `other`, splitting every class of `self` by the class (or singleton)
    /// of `other` each member belongs to.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        // Map every tuple that appears in a non-singleton class of `other`
        // to the index of that class; tuples outside are singletons there.
        let mut other_class_of: HashMap<TupleId, usize> = HashMap::new();
        for (idx, class) in other.classes.iter().enumerate() {
            for &id in class {
                other_class_of.insert(id, idx);
            }
        }
        let mut out: Vec<Vec<TupleId>> = Vec::new();
        for class in &self.classes {
            let mut split: HashMap<Option<usize>, Vec<TupleId>> = HashMap::new();
            for &id in class {
                // A tuple that is a singleton in `other` stays a singleton in
                // the product, so only tuples mapped to some class can pair up.
                match other_class_of.get(&id) {
                    Some(&idx) => split.entry(Some(idx)).or_default().push(id),
                    None => {
                        split.entry(None).or_default();
                    }
                }
            }
            for (key, sub) in split {
                if key.is_some() && sub.len() >= 2 {
                    out.push(sub);
                }
            }
        }
        StrippedPartition::from_classes(out, self.total)
    }

    /// Whether the FD `X → Y` holds, where `self` is `π_X` and `with_rhs` is
    /// `π_{X ∪ Y}`: the FD holds iff refining by `Y` does not split any
    /// class, i.e. the two partitions have the same error.
    pub fn implies_with(&self, with_rhs: &StrippedPartition) -> bool {
        self.error() == with_rhs.error()
    }
}

/// The `g1` error of the FD `X → Y` on `instance`: the fraction of tuple
/// *pairs* that violate the FD (agree on `X` but disagree on `Y`), over all
/// ordered pairs of distinct tuples.  `0.0` means the FD holds exactly.
pub fn g1_error(instance: &RelationInstance, lhs: &[usize], rhs: &[usize]) -> f64 {
    let n = instance.len();
    if n < 2 {
        return 0.0;
    }
    let mut groups: HashMap<Vec<Value>, HashMap<Vec<Value>, usize>> = HashMap::new();
    for (_, tuple) in instance.iter() {
        *groups
            .entry(tuple.project(lhs))
            .or_default()
            .entry(tuple.project(rhs))
            .or_default() += 1;
    }
    let mut violating_pairs = 0usize;
    for rhs_counts in groups.values() {
        let group_size: usize = rhs_counts.values().sum();
        let same_rhs_pairs: usize = rhs_counts.values().map(|c| c * (c - 1)).sum();
        violating_pairs += group_size * (group_size - 1) - same_rhs_pairs;
    }
    violating_pairs as f64 / (n * (n - 1)) as f64
}

/// The `g3` error of the FD `X → Y` on `instance`: the minimum fraction of
/// tuples that must be deleted for the FD to hold.  Within every `X`-group
/// all tuples except those carrying the most frequent `Y`-value must go.
pub fn g3_error(instance: &RelationInstance, lhs: &[usize], rhs: &[usize]) -> f64 {
    let n = instance.len();
    if n == 0 {
        return 0.0;
    }
    let mut groups: HashMap<Vec<Value>, HashMap<Vec<Value>, usize>> = HashMap::new();
    for (_, tuple) in instance.iter() {
        *groups
            .entry(tuple.project(lhs))
            .or_default()
            .entry(tuple.project(rhs))
            .or_default() += 1;
    }
    let mut removed = 0usize;
    for rhs_counts in groups.values() {
        let group_size: usize = rhs_counts.values().sum();
        let keep = rhs_counts.values().copied().max().unwrap_or(0);
        removed += group_size - keep;
    }
    removed as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            vec![("a", Domain::Text), ("b", Domain::Text), ("c", Domain::Int)],
        ))
    }

    fn instance(rows: &[(&str, &str, i64)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b, c) in rows {
            inst.insert_values(vec![Value::str(*a), Value::str(*b), Value::int(*c)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn build_groups_by_projection() {
        let inst = instance(&[("x", "p", 1), ("x", "q", 2), ("y", "p", 3)]);
        let pa = StrippedPartition::build(&inst, &[0]);
        assert_eq!(pa.class_count(), 1);
        assert_eq!(pa.size(), 2);
        assert_eq!(pa.error(), 1);
        let pb = StrippedPartition::build(&inst, &[1]);
        assert_eq!(pb.class_count(), 1);
        let pc = StrippedPartition::build(&inst, &[2]);
        assert!(pc.is_superkey());
    }

    #[test]
    fn empty_attribute_list_is_one_class() {
        let inst = instance(&[("x", "p", 1), ("y", "q", 2), ("z", "r", 3)]);
        let p = StrippedPartition::build(&inst, &[]);
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.size(), 3);
        assert_eq!(p.error(), 2);
    }

    #[test]
    fn product_equals_direct_build() {
        let inst = instance(&[
            ("x", "p", 1),
            ("x", "p", 1),
            ("x", "q", 1),
            ("y", "p", 2),
            ("y", "p", 2),
        ]);
        let pa = StrippedPartition::build(&inst, &[0]);
        let pb = StrippedPartition::build(&inst, &[1]);
        let product = pa.product(&pb);
        let direct = StrippedPartition::build(&inst, &[0, 1]);
        assert_eq!(product, direct);
    }

    #[test]
    fn product_is_commutative() {
        let inst = instance(&[
            ("x", "p", 1),
            ("x", "q", 2),
            ("x", "q", 3),
            ("y", "q", 4),
            ("y", "q", 5),
            ("y", "p", 6),
        ]);
        let pa = StrippedPartition::build(&inst, &[0]);
        let pb = StrippedPartition::build(&inst, &[1]);
        assert_eq!(pa.product(&pb), pb.product(&pa));
    }

    #[test]
    fn fd_detection_via_error_equality() {
        // a -> b holds; b -> a does not.
        let inst = instance(&[("x", "p", 1), ("x", "p", 2), ("y", "p", 3), ("z", "q", 4)]);
        let pa = StrippedPartition::build(&inst, &[0]);
        let pab = StrippedPartition::build(&inst, &[0, 1]);
        assert!(pa.implies_with(&pab));
        let pb = StrippedPartition::build(&inst, &[1]);
        let pba = StrippedPartition::build(&inst, &[1, 0]);
        assert!(!pb.implies_with(&pba));
    }

    #[test]
    fn g1_zero_iff_fd_holds() {
        let holds = instance(&[("x", "p", 1), ("x", "p", 2), ("y", "q", 3)]);
        assert_eq!(g1_error(&holds, &[0], &[1]), 0.0);
        let fails = instance(&[("x", "p", 1), ("x", "q", 2)]);
        assert!(g1_error(&fails, &[0], &[1]) > 0.0);
    }

    #[test]
    fn g3_counts_minimum_removals() {
        // Group "x" has b-values p,p,q: one removal fixes it.  4 tuples total.
        let inst = instance(&[("x", "p", 1), ("x", "p", 2), ("x", "q", 3), ("y", "r", 4)]);
        let g3 = g3_error(&inst, &[0], &[1]);
        assert!((g3 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn g3_zero_on_empty_and_satisfying() {
        let empty = RelationInstance::new(schema());
        assert_eq!(g3_error(&empty, &[0], &[1]), 0.0);
        let holds = instance(&[("x", "p", 1), ("y", "q", 2)]);
        assert_eq!(g3_error(&holds, &[0], &[1]), 0.0);
    }

    #[test]
    fn superkey_partition_has_no_classes() {
        let inst = instance(&[("x", "p", 1), ("y", "p", 2), ("z", "p", 3)]);
        let p = StrippedPartition::build(&inst, &[0]);
        assert!(p.is_superkey());
        assert_eq!(p.error(), 0);
    }
}
