//! Level-wise (TANE-style) discovery of minimal functional dependencies.
//!
//! The search walks the lattice of attribute sets level by level.  A
//! candidate `X → A` is checked with stripped partitions: the FD holds
//! exactly when `e(π_X) = e(π_{X ∪ {A}})`.  Only *minimal* FDs are reported —
//! a candidate is skipped when some already-discovered FD `Y → A` with
//! `Y ⊂ X` makes it redundant.  Setting [`FdDiscoveryConfig::max_g3`] above
//! zero switches the validator to the `g3` error measure and discovers
//! approximate FDs, the raw material for CFD tableau mining
//! ([`crate::cfd_discovery`]).
//!
//! Within one lattice level the candidates are independent: both pruning
//! rules (minimality and the superkey skip) only ever fire on facts from
//! *strictly smaller* LHS sets — a same-size subset is the set itself — so
//! the sweep freezes the discovered state at each level boundary, fans the
//! level's surviving LHS sets out across a thread pool
//! ([`dq_core::engine::parallel_map`]) over one shared concurrent
//! [`PartitionSource`], and merges the per-LHS verdicts back in canonical
//! candidate order.  The discovered FDs, candidate counts and partition
//! tallies are byte-identical to a sequential sweep at any thread count.

use crate::source::{resolve_threads, PartitionSource};
use dq_core::engine::parallel_map;
use dq_core::fd::Fd;
use dq_relation::{IndexPool, RelationInstance, RelationSchema, ShardSource};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of FD discovery.
#[derive(Clone, Debug)]
pub struct FdDiscoveryConfig {
    /// Maximum size of the left-hand side to explore.
    pub max_lhs: usize,
    /// Maximum admissible `g3` error (fraction of tuples to delete for the
    /// FD to hold).  `0.0` discovers exact FDs only.
    pub max_g3: f64,
    /// Attributes to exclude from both sides (e.g. surrogate identifiers).
    pub exclude: Vec<usize>,
    /// Validate candidates over partitions derived from pooled interned
    /// indexes and id-based partition products (the fast path).  `false`
    /// keeps the legacy `Vec<Value>`-keyed partition builds — same results,
    /// kept for equivalence tests and the `--discovery-bench` comparison.
    pub use_interned: bool,
    /// Worker threads for the per-level candidate fan-out (and for cold
    /// pooled index builds on the interned path).  `0` sizes the pool to
    /// the machine; `1` validates sequentially.  The discovered output is
    /// identical at every thread count.
    pub threads: usize,
}

impl Default for FdDiscoveryConfig {
    fn default() -> Self {
        FdDiscoveryConfig {
            max_lhs: 3,
            max_g3: 0.0,
            exclude: Vec::new(),
            use_interned: true,
            threads: 0,
        }
    }
}

/// The result of a discovery run.
#[derive(Clone, Debug)]
pub struct DiscoveredFds {
    /// Minimal FDs found, each with a single right-hand-side attribute.
    pub fds: Vec<Fd>,
    /// Number of candidate FDs validated against the data.
    pub candidates_checked: usize,
    /// Number of partitions materialised.
    pub partitions_built: usize,
    /// Wall-clock milliseconds spent per lattice level (index 0 = LHS size
    /// 1), recorded around each level's candidate fan-out; the bench
    /// harness tracks these to show where level-parallelism pays.
    pub level_ms: Vec<f64>,
}

impl DiscoveredFds {
    /// Whether an FD with the given LHS/RHS attribute indices was found.
    pub fn contains(&self, lhs: &[usize], rhs: usize) -> bool {
        let lhs_set: BTreeSet<usize> = lhs.iter().copied().collect();
        self.fds.iter().any(|fd| {
            fd.rhs() == [rhs] && fd.lhs().iter().copied().collect::<BTreeSet<_>>() == lhs_set
        })
    }
}

/// Discovers minimal (approximate) functional dependencies on `instance`
/// with a private index pool.
pub fn discover_fds(instance: &RelationInstance, config: &FdDiscoveryConfig) -> DiscoveredFds {
    discover_fds_with_pool(instance, config, &Arc::new(IndexPool::new()))
}

/// [`discover_fds`] over a shared [`IndexPool`]: the interned indexes built
/// for single-attribute partitions (and for `g3` grouping) are served from
/// — and stay in — `pool`, so CFD mining, profiling and detection over the
/// same instance rebuild nothing.
pub fn discover_fds_with_pool(
    instance: &RelationInstance,
    config: &FdDiscoveryConfig,
    pool: &Arc<IndexPool>,
) -> DiscoveredFds {
    let _span = dq_obs::span!("discover.fd", arity = instance.schema().arity());
    let threads = resolve_threads(config.threads);
    let source = if config.use_interned {
        PartitionSource::interned(instance, Arc::clone(pool), threads)
    } else {
        PartitionSource::naive(instance)
    };
    level_sweep(&source, instance.schema(), config, threads)
}

/// [`discover_fds`] over a shard source — an in-RAM snapshot or a
/// memory-mapped on-disk relation.  Single-attribute partitions and `g3`
/// tallies come from sequential shard scans; the lattice walk, pruning
/// rules and per-level fan-out are the same code as the instance path, so
/// the discovered FDs and candidate counts are byte-identical to
/// [`discover_fds`] over the same logical relation.  `use_interned` is
/// ignored (there is no row store to fall back to).
pub fn discover_fds_from_shards(
    shards: &dyn ShardSource,
    config: &FdDiscoveryConfig,
) -> DiscoveredFds {
    let _span = dq_obs::span!("discover.fd.stream", arity = shards.schema().arity());
    let threads = resolve_threads(config.threads);
    let source = PartitionSource::from_shards(shards, threads);
    level_sweep(&source, shards.schema(), config, threads)
}

/// The level-wise lattice walk shared by every backend.
fn level_sweep(
    source: &PartitionSource<'_>,
    schema: &Arc<RelationSchema>,
    config: &FdDiscoveryConfig,
    threads: usize,
) -> DiscoveredFds {
    let schema = schema.clone();
    let arity = schema.arity();
    let attrs: Vec<usize> = (0..arity).filter(|a| !config.exclude.contains(a)).collect();

    // Warm the single-attribute indexes before fanning out: the big cold
    // builds shard internally when there are fewer attributes than
    // workers, and the per-level fan-out below then never nests parallel
    // builds (its cold builds run single-threaded — the level is the
    // parallel axis).
    source.warm_singles(&attrs);

    let mut found: Vec<(BTreeSet<usize>, usize)> = Vec::new();
    let mut candidates_checked = 0usize;
    // Attribute sets that are superkeys: any proper extension is redundant.
    let mut superkeys: Vec<BTreeSet<usize>> = Vec::new();
    let mut level_ms: Vec<f64> = Vec::new();

    /// One LHS's verdicts, computed independently of its level siblings.
    struct LhsVerdict {
        checked: usize,
        holds_for: Vec<usize>,
        superkey: bool,
    }

    let max_lhs = config.max_lhs.min(attrs.len().saturating_sub(1)).max(1);
    for level in 1..=max_lhs {
        // The level span doubles as the level clock: `finish_ms` returns
        // real elapsed time even while recording is disabled, so
        // `level_ms` is reported identically in both modes.
        let level_span = dq_obs::span_owned(format!("level{level}"));
        // Both pruning rules only fire on facts from strictly smaller LHS
        // sets (a same-size subset is the set itself), so `found` and
        // `superkeys` are frozen for the whole level and the surviving LHS
        // sets validate independently.
        let lhs_sets: Vec<(Vec<usize>, BTreeSet<usize>)> = subsets_of_size(&attrs, level)
            .into_iter()
            .map(|lhs| {
                let lhs_set: BTreeSet<usize> = lhs.iter().copied().collect();
                (lhs, lhs_set)
            })
            // A superset of a superkey trivially determines everything.
            .filter(|(_, lhs_set)| {
                !superkeys
                    .iter()
                    .any(|k| k.is_subset(lhs_set) && k != lhs_set)
            })
            .collect();
        let verdicts: Vec<LhsVerdict> = parallel_map(&lhs_sets, threads, |(lhs, lhs_set)| {
            let lhs_partition = source.partition(lhs);
            let mut checked = 0usize;
            let mut holds_for: Vec<usize> = Vec::new();
            for &rhs in &attrs {
                if lhs_set.contains(&rhs) {
                    continue;
                }
                // Minimality: skip if a subset of X already determines A.
                if found.iter().any(|(l, r)| *r == rhs && l.is_subset(lhs_set)) {
                    continue;
                }
                checked += 1;
                let holds = if config.max_g3 <= 0.0 {
                    let mut with_rhs = lhs.clone();
                    with_rhs.push(rhs);
                    let rhs_partition = source.partition(&with_rhs);
                    lhs_partition.implies_with(&rhs_partition)
                } else {
                    source.g3(lhs, &[rhs]) <= config.max_g3
                };
                if holds {
                    holds_for.push(rhs);
                }
            }
            LhsVerdict {
                checked,
                holds_for,
                superkey: lhs_partition.is_superkey(),
            }
        });
        // Merge in canonical candidate order: `parallel_map` preserves
        // input order, so the discovered list (and every counter) is
        // byte-identical to the sequential sweep.
        for ((_, lhs_set), verdict) in lhs_sets.into_iter().zip(verdicts) {
            candidates_checked += verdict.checked;
            for rhs in verdict.holds_for {
                found.push((lhs_set.clone(), rhs));
            }
            if verdict.superkey {
                superkeys.push(lhs_set);
            }
        }
        level_ms.push(level_span.finish_ms());
    }

    let fds = found
        .into_iter()
        .map(|(lhs, rhs)| Fd::from_indices(&schema, lhs.into_iter().collect(), vec![rhs]))
        .collect();
    DiscoveredFds {
        fds,
        candidates_checked,
        partitions_built: source.partitions_built(),
        level_ms,
    }
}

/// All subsets of `attrs` with exactly `size` elements, in lexicographic
/// order of positions.
pub(crate) fn subsets_of_size(attrs: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size == 0 || size > attrs.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.iter().map(|&i| attrs[i]).collect());
        // Advance the combination.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + attrs.len() - size {
                idx[i] += 1;
                for j in i + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationSchema, Value};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            vec![
                ("a", Domain::Text),
                ("b", Domain::Text),
                ("c", Domain::Text),
            ],
        ))
    }

    fn instance(rows: &[(&str, &str, &str)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b, c) in rows {
            inst.insert_values(vec![Value::str(*a), Value::str(*b), Value::str(*c)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(
            subsets_of_size(&[0, 1, 2], 2),
            vec![vec![0, 1], vec![0, 2], vec![1, 2]]
        );
        assert_eq!(subsets_of_size(&[0, 1], 0), Vec::<Vec<usize>>::new());
        assert_eq!(subsets_of_size(&[0], 2), Vec::<Vec<usize>>::new());
        assert_eq!(subsets_of_size(&[3, 7], 1), vec![vec![3], vec![7]]);
    }

    #[test]
    fn discovers_simple_fd() {
        // a -> b everywhere, b does not determine a.
        let inst = instance(&[
            ("x", "p", "1"),
            ("x", "p", "2"),
            ("y", "p", "3"),
            ("z", "q", "4"),
        ]);
        let found = discover_fds(&inst, &FdDiscoveryConfig::default());
        assert!(found.contains(&[0], 1));
        assert!(!found.contains(&[1], 0));
    }

    #[test]
    fn reports_only_minimal_fds() {
        // a -> b holds, therefore {a, c} -> b must not be reported.
        let inst = instance(&[
            ("x", "p", "1"),
            ("x", "p", "2"),
            ("y", "q", "1"),
            ("y", "q", "2"),
        ]);
        let found = discover_fds(&inst, &FdDiscoveryConfig::default());
        assert!(found.contains(&[0], 1));
        assert!(!found.contains(&[0, 2], 1));
    }

    #[test]
    fn excluded_attributes_never_appear() {
        let inst = instance(&[("x", "p", "1"), ("x", "p", "2"), ("y", "q", "3")]);
        let config = FdDiscoveryConfig {
            exclude: vec![2],
            ..FdDiscoveryConfig::default()
        };
        let found = discover_fds(&inst, &config);
        for fd in &found.fds {
            assert!(!fd.lhs().contains(&2));
            assert_ne!(fd.rhs(), [2]);
        }
    }

    #[test]
    fn approximate_discovery_tolerates_noise() {
        // a -> b holds on 9 of 10 tuples of the "x" group.
        let mut rows: Vec<(&str, &str, &str)> = vec![("x", "p", "c"); 9];
        rows.push(("x", "q", "d"));
        rows.push(("y", "r", "e"));
        let inst = instance(&rows);
        let exact = discover_fds(&inst, &FdDiscoveryConfig::default());
        assert!(!exact.contains(&[0], 1));
        let approx = discover_fds(
            &inst,
            &FdDiscoveryConfig {
                max_g3: 0.15,
                ..FdDiscoveryConfig::default()
            },
        );
        assert!(approx.contains(&[0], 1));
    }

    #[test]
    fn discovered_fds_hold_on_the_instance() {
        let inst = instance(&[
            ("x", "p", "1"),
            ("x", "p", "1"),
            ("y", "q", "1"),
            ("z", "q", "2"),
            ("w", "r", "2"),
        ]);
        let found = discover_fds(&inst, &FdDiscoveryConfig::default());
        assert!(!found.fds.is_empty());
        for fd in &found.fds {
            assert!(fd.holds_on(&inst), "discovered FD {fd:?} does not hold");
        }
    }

    #[test]
    fn fan_out_is_byte_identical_to_sequential_sweep() {
        let inst = instance(&[
            ("x", "p", "1"),
            ("x", "p", "2"),
            ("y", "p", "3"),
            ("y", "q", "3"),
            ("z", "q", "4"),
            ("z", "q", "4"),
        ]);
        for use_interned in [false, true] {
            for max_g3 in [0.0, 0.2] {
                let config = |threads| FdDiscoveryConfig {
                    threads,
                    use_interned,
                    max_g3,
                    ..FdDiscoveryConfig::default()
                };
                let sequential = discover_fds(&inst, &config(1));
                for threads in [2, 8] {
                    let parallel = discover_fds(&inst, &config(threads));
                    assert_eq!(parallel.fds, sequential.fds, "threads {threads}");
                    assert_eq!(parallel.candidates_checked, sequential.candidates_checked);
                    assert_eq!(parallel.partitions_built, sequential.partitions_built);
                }
            }
        }
    }

    #[test]
    fn shard_source_discovery_matches_instance_discovery() {
        let inst = instance(&[
            ("x", "p", "1"),
            ("x", "p", "2"),
            ("y", "p", "3"),
            ("y", "q", "3"),
            ("z", "q", "4"),
            ("z", "q", "4"),
        ]);
        for max_g3 in [0.0, 0.2] {
            let config = |threads| FdDiscoveryConfig {
                threads,
                max_g3,
                ..FdDiscoveryConfig::default()
            };
            let reference = discover_fds(&inst, &config(1));
            let source = dq_relation::StoreShardSource::new(&inst);
            for threads in [1, 2, 8] {
                let streamed = discover_fds_from_shards(&source, &config(threads));
                assert_eq!(streamed.fds, reference.fds, "threads {threads}");
                assert_eq!(streamed.candidates_checked, reference.candidates_checked);
            }
        }
    }

    #[test]
    fn empty_instance_yields_everything_trivially() {
        let inst = RelationInstance::new(schema());
        let found = discover_fds(&inst, &FdDiscoveryConfig::default());
        // Every candidate holds vacuously; all single-attribute LHS FDs appear.
        assert!(found.contains(&[0], 1));
        assert!(found.contains(&[1], 0));
    }
}
