//! # dq-discovery
//!
//! Dependency discovery and data profiling.
//!
//! The paper's introduction argues that "inference systems, analysis
//! algorithms and *profiling methods* for dependencies have shown promise as
//! a systematic method for reasoning about the semantics of the data, and for
//! deducing and *discovering rules* for cleaning the data" (Section 1).  The
//! companion line of work the survey builds on (CFDs [36], CINDs [20])
//! assumes that a set of conditional dependencies is available; in practice
//! those dependencies are *profiled from data*.  This crate supplies that
//! missing substrate:
//!
//! * [`partition`] — stripped partitions (position-list indexes), partition
//!   products and the `g1`/`g3` error measures that underpin all
//!   partition-based dependency discovery;
//! * [`fd_discovery`] — level-wise (TANE-style) discovery of minimal
//!   functional dependencies and approximate FDs;
//! * [`cfd_discovery`] — discovery of constant CFDs (CFDMiner-style frequent
//!   closed patterns) and of pattern tableaux for embedded FDs that do not
//!   hold globally (CTANE-style conditioning);
//! * [`ind_discovery`] — unary/compound IND discovery across a database and
//!   CIND condition mining for INDs that hold only on a selection;
//! * [`md_discovery`] — learning matching rules (relative keys) from
//!   labelled match examples over a declared comparison space (Section 3.1's
//!   "discovered via learning" route);
//! * [`profile`] — per-column and per-relation profiling (distinct counts,
//!   inferred finite domains, key candidates) used to seed discovery.
//!
//! Everything operates on the `dq-relation` substrate, so discovered
//! dependencies are ordinary [`dq_core::Cfd`] / [`dq_core::Cind`] values that
//! feed directly into detection ([`dq_core::detect`]), repair and the rest of
//! the cleaning stack.

pub mod cfd_discovery;
pub mod fd_discovery;
pub mod ind_discovery;
pub mod md_discovery;
pub mod partition;
pub mod profile;
pub mod source;

/// Frequently used items.
pub mod prelude {
    pub use crate::cfd_discovery::{
        discover_cfds, discover_cfds_with_pool, discover_constant_cfds,
        discover_constant_cfds_with_pool, discover_tableau_for_fd,
        discover_tableau_for_fd_with_pool, CfdDiscoveryConfig, DiscoveredCfds,
    };
    pub use crate::fd_discovery::{
        discover_fds, discover_fds_from_shards, discover_fds_with_pool, DiscoveredFds,
        FdDiscoveryConfig,
    };
    pub use crate::ind_discovery::{
        discover_cind_conditions, discover_cind_conditions_with_pool, discover_inds,
        discover_inds_with_pool, DiscoveredInds, IndDiscoveryConfig,
    };
    pub use crate::md_discovery::{
        learn_relative_keys, LearnedRule, LearnedRuleSet, RuleLearningConfig,
    };
    pub use crate::partition::{
        g1_error, g3_error, g3_error_from_shards, g3_error_interned, PartitionProber,
        StrippedPartition,
    };
    pub use crate::profile::{
        profile_database, profile_relation, profile_relation_pooled, profile_relation_with,
        ColumnProfile, RelationProfile,
    };
    pub use crate::source::PartitionSource;
}

pub use prelude::*;
