//! Discovery of inclusion dependencies and CIND conditions.
//!
//! Section 2.2's running example is exactly the situation this module
//! automates: the IND `order(title, price) ⊆ book(title, price)` does not
//! hold on the whole `order` relation, but it does hold on the selection
//! `type = 'book'` — which is the CIND `cind1`.  Discovery proceeds in two
//! steps:
//!
//! 1. [`discover_inds`] enumerates attribute lists with compatible domains
//!    between pairs of relations and keeps those whose value sets are
//!    included (standard unary / compound IND discovery);
//! 2. [`discover_cind_conditions`] takes an IND candidate that does *not*
//!    hold and searches for a selection on a finite-ish LHS attribute under
//!    which it does, optionally also requiring a constant pattern on the RHS
//!    side — producing [`Cind`] values.
//!
//! Both run, by default, on the interned columnar store: candidate inclusion
//! reduces to probes of pooled [`DistinctSet`]s (distinct packed-key
//! projections, translated between the two relations' dictionaries once per
//! dictionary entry instead of hashing a `Vec<Value>` per tuple), condition
//! mining reads its candidate-value groups straight from pooled CSR
//! postings, and independent (LHS relation, RHS relation) candidate pairs
//! fan out across a thread pool.  The legacy row-oriented path is kept
//! behind [`IndDiscoveryConfig::use_interned`] `= false` and produces
//! byte-identical output on well-typed columns
//! (`tests/discovery_equivalence.rs`; see the `use_interned` doc for the
//! mixed-numeric `Ord`-vs-`Eq` caveat shared with profiling).

use dq_core::cind::{Cind, CindPattern};
use dq_core::engine::{parallel_map, try_parallel_map};
use dq_core::ind::Ind;
use dq_relation::{
    Column, Database, DqResult, FxHashSet, IdTranslation, IndexPool, RelationInstance, Value,
    ValueId,
};
use std::collections::{BTreeSet, HashSet};
use std::num::NonZeroUsize;
use std::sync::Arc;

/// Configuration of IND / CIND discovery.
#[derive(Clone, Debug)]
pub struct IndDiscoveryConfig {
    /// Maximum arity of discovered INDs (1 = unary only).
    pub max_arity: usize,
    /// Minimum number of distinct LHS values for an IND to be interesting
    /// (inclusion of a near-empty column is noise).
    pub min_distinct: usize,
    /// Minimum number of tuples a CIND condition must select.
    pub min_support: usize,
    /// Maximum number of distinct values a condition attribute may have for
    /// it to be used as a CIND condition (keeps conditions categorical).
    pub max_condition_values: usize,
    /// SQL-style IND semantics: LHS projections with a `NULL` component are
    /// exempt from the inclusion requirement (and not counted toward
    /// `min_distinct`); in condition mining, such rows never disqualify a
    /// condition value and a dependency that holds under these semantics
    /// yields no conditions.  Off by default — the paper's set semantics
    /// treat `NULL` as an ordinary constant, under which a single null LHS
    /// cell falsifies every IND over that attribute.
    pub ignore_nulls: bool,
    /// Validate candidates over pooled distinct-projection sets and CSR
    /// postings of the interned columnar store, fanning relation pairs out
    /// across a thread pool (the fast path).  `false` keeps the legacy
    /// row-oriented `BTreeSet<Value>` / `HashSet<Vec<Value>>` projections —
    /// same results, kept for equivalence tests and the `--ind-bench`
    /// comparison.  (Caveat, shared with profiling: the legacy paths dedup
    /// and select through `Value`'s mixed-numeric `Ord` — the unary
    /// `active_domain` sets and the condition-value `BTreeSet` — while the
    /// interned paths work through `Eq`; on a column mixing `Int(k)` with
    /// `Real(k.0)` the two can disagree on distinct counts and condition
    /// candidates.  Well-typed columns are unaffected.)
    pub use_interned: bool,
}

impl Default for IndDiscoveryConfig {
    fn default() -> Self {
        IndDiscoveryConfig {
            max_arity: 2,
            min_distinct: 1,
            min_support: 1,
            max_condition_values: 16,
            ignore_nulls: false,
            use_interned: true,
        }
    }
}

impl IndDiscoveryConfig {
    fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// The result of [`discover_inds`].
#[derive(Clone, Debug)]
pub struct DiscoveredInds {
    /// INDs that hold on the database.
    pub inds: Vec<Ind>,
    /// Candidate INDs that were checked.
    pub candidates_checked: usize,
}

/// Discovers unary (and, up to [`IndDiscoveryConfig::max_arity`], compound)
/// inclusion dependencies between distinct relations of `db`.
pub fn discover_inds(db: &Database, config: &IndDiscoveryConfig) -> DqResult<DiscoveredInds> {
    if config.use_interned {
        discover_inds_with_pool(
            db,
            config,
            &IndexPool::new(),
            IndDiscoveryConfig::default_threads(),
        )
    } else {
        discover_inds_naive(db, config)
    }
}

/// [`discover_inds`] over a shared [`IndexPool`]: every candidate's
/// inclusion check probes pooled [`DistinctSet`]s (built at most once per
/// `(relation, attribute list)` and extended in place after append-only
/// growth), and independent (LHS relation, RHS relation) candidate pairs fan
/// out across up to `threads` workers.  Output — order included — equals the
/// legacy row-oriented path.
pub fn discover_inds_with_pool(
    db: &Database,
    config: &IndDiscoveryConfig,
    pool: &IndexPool,
    threads: usize,
) -> DqResult<DiscoveredInds> {
    let _span = dq_obs::span!("discover.ind", relations = db.iter().count());
    let relations: Vec<(&str, &RelationInstance)> = db.iter().collect();
    // Warm the column dictionaries once, in parallel: unary candidates are
    // decided on the dictionaries alone (a column's dictionary *is* its
    // distinct unary projection), and the binary distinct sets pack ids
    // from these same columns.
    let warm: Vec<(&RelationInstance, usize)> = relations
        .iter()
        .flat_map(|(_, inst)| (0..inst.schema().arity()).map(move |a| (*inst, a)))
        .collect();
    parallel_map(&warm, threads, |(inst, attr)| {
        let store = inst.columnar();
        store.column(inst, *attr);
    });
    // Candidate pairs in the same (lhs-outer, rhs-inner) order as the naive
    // sweep, validated in parallel; concatenating the per-pair results in
    // input order reproduces the naive output exactly.
    let mut pairs: Vec<(&RelationInstance, &RelationInstance)> = Vec::new();
    for (lhs_name, lhs_inst) in &relations {
        for (rhs_name, rhs_inst) in &relations {
            if lhs_name != rhs_name {
                pairs.push((lhs_inst, rhs_inst));
            }
        }
    }
    let per_pair = parallel_map(&pairs, threads, |(lhs_inst, rhs_inst)| {
        pair_inds_interned(lhs_inst, rhs_inst, config, pool)
    });
    let mut inds = Vec::new();
    let mut candidates_checked = 0usize;
    for (pair_inds, checked) in per_pair {
        inds.extend(pair_inds);
        candidates_checked += checked;
    }
    Ok(DiscoveredInds {
        inds,
        candidates_checked,
    })
}

/// Validates every candidate between one ordered relation pair over pooled
/// distinct-projection sets.
fn pair_inds_interned(
    lhs_inst: &RelationInstance,
    rhs_inst: &RelationInstance,
    config: &IndDiscoveryConfig,
    pool: &IndexPool,
) -> (Vec<Ind>, usize) {
    let mut inds = Vec::new();
    let mut checked = 0usize;
    let lhs_store = lhs_inst.columnar();
    let rhs_store = rhs_inst.columnar();
    let mut unary: Vec<(usize, usize)> = Vec::new();
    for la in 0..lhs_inst.schema().arity() {
        for ra in 0..rhs_inst.schema().arity() {
            if !lhs_inst
                .schema()
                .domain(la)
                .compatible_with(rhs_inst.schema().domain(ra))
            {
                continue;
            }
            checked += 1;
            // A column's dictionary is exactly its distinct unary
            // projection, so unary candidates are decided on the (warmed,
            // shared) dictionaries alone — no key set is materialized.
            let lhs_col = lhs_store.column(lhs_inst, la);
            let rhs_col = rhs_store.column(rhs_inst, ra);
            if unary_included_interned(&lhs_col, &rhs_col, config) {
                unary.push((la, ra));
                inds.push(Ind::from_indices(
                    lhs_inst.schema().name(),
                    vec![la],
                    rhs_inst.schema().name(),
                    vec![ra],
                ));
            }
        }
    }
    if config.max_arity < 2 {
        return (inds, checked);
    }
    // Binary INDs built from pairs of unary ones over distinct attributes
    // on both sides.
    for i in 0..unary.len() {
        for j in 0..unary.len() {
            let (l1, r1) = unary[i];
            let (l2, r2) = unary[j];
            if l1 >= l2 || r1 == r2 {
                continue;
            }
            checked += 1;
            let lhs_set = pool.distinct_for(lhs_inst, &[l1, l2], 1);
            let rhs_set = pool.distinct_for(rhs_inst, &[r1, r2], 1);
            if lhs_set.key_count(config.ignore_nulls) >= config.min_distinct
                && lhs_set.included_in(&rhs_set, config.ignore_nulls)
            {
                inds.push(Ind::from_indices(
                    lhs_inst.schema().name(),
                    vec![l1, l2],
                    rhs_inst.schema().name(),
                    vec![r1, r2],
                ));
            }
        }
    }
    (inds, checked)
}

/// Does attribute `attr` take more than `cap` distinct values?  Stops
/// scanning as soon as the bound is exceeded, so key-like columns answer in
/// a handful of rows.
fn distinct_exceeds(instance: &RelationInstance, attr: usize, cap: usize) -> bool {
    let mut seen: FxHashSet<&Value> = FxHashSet::default();
    for (_, tuple) in instance.iter() {
        if seen.insert(tuple.get(attr)) && seen.len() > cap {
            return true;
        }
    }
    false
}

/// Unary inclusion on the column dictionaries: every (non-null, when
/// `ignore_nulls`) distinct LHS value must exist in the RHS dictionary,
/// after the `min_distinct` floor and a counting pre-check (more distinct
/// LHS values than RHS values cannot be included).
fn unary_included_interned(lhs: &Column, rhs: &Column, config: &IndDiscoveryConfig) -> bool {
    let lhs_has_null = lhs.interner().lookup(&Value::Null).is_some();
    let count = lhs.distinct() - usize::from(config.ignore_nulls && lhs_has_null);
    if count < config.min_distinct || count > rhs.distinct() {
        return false;
    }
    lhs.interner()
        .values()
        .iter()
        .all(|v| (config.ignore_nulls && v.is_null()) || rhs.interner().lookup(v).is_some())
}

/// The legacy row-oriented sweep (`BTreeSet<Value>` / `HashSet<Vec<Value>>`
/// projections rebuilt per candidate), kept for equivalence testing and the
/// `--ind-bench` comparison.
fn discover_inds_naive(db: &Database, config: &IndDiscoveryConfig) -> DqResult<DiscoveredInds> {
    let mut inds = Vec::new();
    let mut candidates_checked = 0usize;
    let relations: Vec<(&str, &RelationInstance)> = db.iter().collect();

    for (lhs_name, lhs_inst) in &relations {
        for (rhs_name, rhs_inst) in &relations {
            if lhs_name == rhs_name {
                continue;
            }
            // Unary INDs first; they seed the compound candidates.
            let mut unary: Vec<(usize, usize)> = Vec::new();
            for la in 0..lhs_inst.schema().arity() {
                for ra in 0..rhs_inst.schema().arity() {
                    if !lhs_inst
                        .schema()
                        .domain(la)
                        .compatible_with(rhs_inst.schema().domain(ra))
                    {
                        continue;
                    }
                    candidates_checked += 1;
                    if unary_included(
                        lhs_inst,
                        la,
                        rhs_inst,
                        ra,
                        config.min_distinct,
                        config.ignore_nulls,
                    ) {
                        unary.push((la, ra));
                        inds.push(Ind::from_indices(
                            lhs_inst.schema().name(),
                            vec![la],
                            rhs_inst.schema().name(),
                            vec![ra],
                        ));
                    }
                }
            }
            if config.max_arity < 2 {
                continue;
            }
            // Binary INDs built from pairs of unary ones over distinct
            // attributes on both sides.
            for i in 0..unary.len() {
                for j in 0..unary.len() {
                    let (l1, r1) = unary[i];
                    let (l2, r2) = unary[j];
                    if l1 >= l2 || r1 == r2 {
                        continue;
                    }
                    candidates_checked += 1;
                    let lhs_proj: HashSet<Vec<Value>> = lhs_inst
                        .iter()
                        .map(|(_, t)| t.project(&[l1, l2]))
                        .filter(|key| !config.ignore_nulls || !key.iter().any(Value::is_null))
                        .collect();
                    let rhs_proj: HashSet<Vec<Value>> =
                        rhs_inst.iter().map(|(_, t)| t.project(&[r1, r2])).collect();
                    if lhs_proj.len() >= config.min_distinct && lhs_proj.is_subset(&rhs_proj) {
                        inds.push(Ind::from_indices(
                            lhs_inst.schema().name(),
                            vec![l1, l2],
                            rhs_inst.schema().name(),
                            vec![r1, r2],
                        ));
                    }
                }
            }
        }
    }
    Ok(DiscoveredInds {
        inds,
        candidates_checked,
    })
}

fn unary_included(
    lhs: &RelationInstance,
    la: usize,
    rhs: &RelationInstance,
    ra: usize,
    min_distinct: usize,
    ignore_nulls: bool,
) -> bool {
    let mut lhs_values = lhs.active_domain(la);
    if ignore_nulls {
        lhs_values.remove(&Value::Null);
    }
    if lhs_values.len() < min_distinct {
        return false;
    }
    let rhs_values = rhs.active_domain(ra);
    lhs_values.is_subset(&rhs_values)
}

/// Given an embedded IND `R1[X] ⊆ R2[Y]` that does not hold on `db`, searches
/// for CIND conditions that make it hold: a condition attribute `B` of `R1`
/// (categorical, outside `X`) and a constant `b` such that
/// `(R1[X; B = b] ⊆ R2[Y])` is satisfied with at least
/// [`IndDiscoveryConfig::min_support`] selected tuples.
///
/// When the embedded IND already holds unconditionally, the answer is empty:
/// no condition is needed, and every condition would be vacuous.  (This
/// check is up front; a per-attribute `patterns == all values` guard used to
/// miss the case where `min_support > 1` filtered some value out, reporting
/// a vacuous CIND.)
///
/// The returned CINDs have an empty RHS pattern (`Yp = []`), matching the
/// shape of `cind1` / `cind2` in Fig. 4.
pub fn discover_cind_conditions(
    db: &Database,
    embedded: &Ind,
    config: &IndDiscoveryConfig,
) -> DqResult<Vec<Cind>> {
    if config.use_interned {
        discover_cind_conditions_with_pool(
            db,
            embedded,
            config,
            &IndexPool::new(),
            IndDiscoveryConfig::default_threads(),
        )
    } else {
        discover_cind_conditions_naive(db, embedded, config)
    }
}

/// [`discover_cind_conditions`] over a shared [`IndexPool`]: the embedded
/// IND's per-tuple inclusion verdicts are computed once — LHS cells
/// translated into the RHS dictionaries via [`IdTranslation`] and probed
/// against the pooled RHS [`DistinctSet`] — and every condition attribute
/// then reads its candidate-value groups straight from the CSR postings of
/// a pooled single-attribute interned index, in parallel across condition
/// attributes.  Output equals the legacy per-value re-scan.
pub fn discover_cind_conditions_with_pool(
    db: &Database,
    embedded: &Ind,
    config: &IndDiscoveryConfig,
    pool: &IndexPool,
    threads: usize,
) -> DqResult<Vec<Cind>> {
    let _span = dq_obs::span("discover.cind");
    let lhs_inst = db.require_relation(embedded.lhs_relation())?;
    let rhs_inst = db.require_relation(embedded.rhs_relation())?;
    // Warm the correspondence columns of both sides in parallel first — the
    // dictionary encoding is the dominant cold cost at scale, and the
    // columns are independent.  Condition attributes are *not* warmed:
    // high-cardinality ones are rejected by a bounded probe below without
    // ever interning their dictionaries.
    let warm: Vec<(&RelationInstance, usize)> = embedded
        .lhs_attrs()
        .iter()
        .map(|&a| (lhs_inst, a))
        .chain(embedded.rhs_attrs().iter().map(|&a| (rhs_inst, a)))
        .collect();
    parallel_map(&warm, threads, |(inst, attr)| {
        let store = inst.columnar();
        store.column(inst, *attr);
    });
    let rhs_set = pool.distinct_for(rhs_inst, embedded.rhs_attrs(), threads);
    let store = lhs_inst.columnar();
    let x_columns: Vec<Arc<Column>> = embedded
        .lhs_attrs()
        .iter()
        .map(|&a| store.column(lhs_inst, a))
        .collect();
    let translation = IdTranslation::new(&x_columns, rhs_set.columns());
    // One inclusion verdict per LHS row, shared by every condition group;
    // under SQL-style semantics a row with a null `X` component is exempt
    // (counts as included).  Rows are independent, so the pass shards
    // across the thread pool.
    let x_nulls: Vec<Option<ValueId>> = x_columns
        .iter()
        .map(|c| c.interner().lookup(&Value::Null))
        .collect();
    let n_rows = store.len();
    let chunk_rows = n_rows.div_ceil(threads.max(1)).max(1);
    let chunks: Vec<std::ops::Range<usize>> = (0..n_rows)
        .step_by(chunk_rows)
        .map(|start| start..(start + chunk_rows).min(n_rows))
        .collect();
    let included: Vec<bool> = parallel_map(&chunks, threads, |range| {
        let mut translated: Vec<ValueId> = Vec::with_capacity(x_columns.len());
        range
            .clone()
            .map(|row| {
                (config.ignore_nulls
                    && x_columns
                        .iter()
                        .zip(&x_nulls)
                        .any(|(col, null)| Some(col.id_at(row)) == *null))
                    || (translation.translate_row(&x_columns, row, &mut translated)
                        && rhs_set.contains_ids(&translated))
            })
            .collect::<Vec<bool>>()
    })
    .concat();
    // Vacuous-condition guard: an IND that already holds needs no CIND.
    if included.iter().all(|&b| b) {
        return Ok(Vec::new());
    }
    let cond_attrs: Vec<usize> = (0..lhs_inst.schema().arity())
        .filter(|a| !embedded.lhs_attrs().contains(a))
        .collect();
    let per_attr: Vec<Option<Cind>> = try_parallel_map(&cond_attrs, threads, |&cond_attr| {
        // Bounded distinct probe: stops at `max_condition_values + 1`
        // distinct cells, so a high-cardinality attribute (a key-like
        // column) is rejected after a handful of rows — without interning
        // its dictionary or building any index for it.
        if config.max_condition_values == 0
            || distinct_exceeds(lhs_inst, cond_attr, config.max_condition_values)
        {
            return Ok(None);
        }
        let index = pool.interned_for(lhs_inst, &[cond_attr], 1);
        let values = index.group_count();
        if values == 0 {
            return Ok(None);
        }
        // Candidate-value groups straight from the CSR postings, sorted by
        // condition value so the mined tableau matches the legacy
        // `BTreeSet<Value>` iteration order.
        let interner = index.columns()[0].interner();
        let mut groups: Vec<(ValueId, &[u32])> =
            index.groups().map(|(ids, rows)| (ids[0], rows)).collect();
        groups.sort_unstable_by(|a, b| interner.cmp_ids(a.0, b.0));
        let mut patterns: Vec<CindPattern> = Vec::new();
        for (value_id, rows) in groups {
            if rows.len() < config.min_support {
                continue;
            }
            if rows.iter().all(|&row| included[row as usize]) {
                patterns.push(CindPattern::new(
                    vec![interner.resolve(value_id).clone()],
                    Vec::new(),
                ));
            }
        }
        if patterns.is_empty() {
            return Ok(None);
        }
        Cind::from_indices(
            lhs_inst.schema(),
            embedded.lhs_attrs().to_vec(),
            vec![cond_attr],
            rhs_inst.schema(),
            embedded.rhs_attrs().to_vec(),
            Vec::new(),
            patterns,
        )
        .map(Some)
    })?;
    Ok(per_attr.into_iter().flatten().collect())
}

/// The legacy row-oriented condition search, kept for equivalence testing
/// and the `--ind-bench` comparison.
fn discover_cind_conditions_naive(
    db: &Database,
    embedded: &Ind,
    config: &IndDiscoveryConfig,
) -> DqResult<Vec<Cind>> {
    let lhs_inst = db.require_relation(embedded.lhs_relation())?;
    let rhs_inst = db.require_relation(embedded.rhs_relation())?;
    // Vacuous-condition guard: an IND that already holds (under the
    // configured null semantics) needs no CIND.
    if embedded.holds_on_with(db, config.ignore_nulls)? {
        return Ok(Vec::new());
    }
    let rhs_proj: HashSet<Vec<Value>> = rhs_inst
        .iter()
        .map(|(_, t)| t.project(embedded.rhs_attrs()))
        .collect();

    let mut out = Vec::new();
    for cond_attr in 0..lhs_inst.schema().arity() {
        if embedded.lhs_attrs().contains(&cond_attr) {
            continue;
        }
        let values: BTreeSet<Value> = lhs_inst.active_domain(cond_attr);
        if values.is_empty() || values.len() > config.max_condition_values {
            continue;
        }
        let mut patterns: Vec<CindPattern> = Vec::new();
        for value in values {
            let selected: Vec<_> = lhs_inst
                .iter()
                .filter(|(_, t)| t.get(cond_attr) == &value)
                .collect();
            if selected.len() < config.min_support {
                continue;
            }
            let included = selected.iter().all(|(_, t)| {
                (config.ignore_nulls && embedded.lhs_attrs().iter().any(|&a| t.get(a).is_null()))
                    || rhs_proj.contains(&t.project(embedded.lhs_attrs()))
            });
            if included {
                patterns.push(CindPattern::new(vec![value], Vec::new()));
            }
        }
        if patterns.is_empty() {
            continue;
        }
        let cind = Cind::from_indices(
            lhs_inst.schema(),
            embedded.lhs_attrs().to_vec(),
            vec![cond_attr],
            rhs_inst.schema(),
            embedded.rhs_attrs().to_vec(),
            Vec::new(),
            patterns,
        )?;
        out.push(cind);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::detect::detect_cind_violations;
    use dq_gen::orders::paper_database;

    fn configs() -> [IndDiscoveryConfig; 2] {
        [
            IndDiscoveryConfig::default(),
            IndDiscoveryConfig {
                use_interned: false,
                ..IndDiscoveryConfig::default()
            },
        ]
    }

    /// The order / book / CD database of Fig. 3, extended with one more CD
    /// order ("J. Denver") that has no `book` counterpart — on the tiny
    /// published instance the (title, price) inclusion from `order` into
    /// `book` happens to hold by coincidence; the extra order restores the
    /// situation the paper describes, where it only holds for `type = book`.
    fn paper_db() -> Database {
        let mut db = paper_database();
        db.relation_mut("order")
            .unwrap()
            .insert_values([
                Value::str("a99"),
                Value::str("J. Denver"),
                Value::str("CD"),
                Value::real(7.94),
            ])
            .unwrap();
        db
    }

    #[test]
    fn unary_ind_discovery_on_paper_database() {
        let db = paper_db();
        for config in configs() {
            let found = discover_inds(&db, &config).unwrap();
            assert!(found.candidates_checked > 0);
            // Every reported IND must actually hold.
            for ind in &found.inds {
                assert!(
                    ind.holds_on(&db).unwrap(),
                    "discovered IND {ind:?} does not hold"
                );
            }
            // order(title, price) ⊆ book(title, price) does NOT hold on
            // Fig. 3 (the Snow White CD order has no book counterpart), so
            // the compound IND must not be reported unconditionally.
            let compound_bogus = found.inds.iter().any(|ind| {
                ind.lhs_relation() == "order"
                    && ind.rhs_relation() == "book"
                    && ind.lhs_attrs().len() == 2
            });
            assert!(
                !compound_bogus,
                "order(title,price) ⊆ book(title,price) must not be discovered unconditionally"
            );
        }
    }

    #[test]
    fn interned_and_naive_discovery_agree() {
        let db = paper_db();
        let [fast_config, slow_config] = configs();
        let fast = discover_inds(&db, &fast_config).unwrap();
        let slow = discover_inds(&db, &slow_config).unwrap();
        assert_eq!(fast.inds, slow.inds);
        assert_eq!(fast.candidates_checked, slow.candidates_checked);
    }

    #[test]
    fn cind_condition_mining_recovers_cind1() {
        let db = paper_db();
        let order = db.relation("order").unwrap().schema().clone();
        let book = db.relation("book").unwrap().schema().clone();
        let embedded = Ind::from_indices(
            "order",
            vec![order.attr("title"), order.attr("price")],
            "book",
            vec![book.attr("title"), book.attr("price")],
        );
        assert!(!embedded.holds_on(&db).unwrap());
        for config in configs() {
            let cinds = discover_cind_conditions(&db, &embedded, &config).unwrap();
            assert!(!cinds.is_empty(), "expected the type = 'book' condition");
            let report = detect_cind_violations(&db, &cinds).unwrap();
            assert!(
                report.is_clean(),
                "discovered CINDs must hold on the database"
            );
            let has_book_condition = cinds.iter().any(|c| {
                c.lhs_pattern_attrs() == [order.attr("type")]
                    && c.tableau().iter().any(|p| p.lhs == [Value::str("book")])
            });
            assert!(
                has_book_condition,
                "expected condition type = 'book', got {cinds:?}"
            );
        }
    }

    #[test]
    fn condition_mining_skips_high_cardinality_attributes() {
        let db = paper_db();
        let order = db.relation("order").unwrap().schema().clone();
        let book = db.relation("book").unwrap().schema().clone();
        let embedded = Ind::from_indices(
            "order",
            vec![order.attr("title"), order.attr("price")],
            "book",
            vec![book.attr("title"), book.attr("price")],
        );
        for config in configs() {
            let config = IndDiscoveryConfig {
                max_condition_values: 0,
                ..config
            };
            let cinds = discover_cind_conditions(&db, &embedded, &config).unwrap();
            assert!(cinds.is_empty());
        }
    }

    #[test]
    fn held_ind_yields_no_vacuous_cind() {
        // Regression test: with min_support > 1, values below the support
        // threshold were skipped, so the old `patterns == all values` guard
        // never fired and a CIND was reported even though the plain IND
        // holds.  The paper database (without the extra dangling order)
        // satisfies order(title, price) ⊆ book(title, price); two of the
        // three orders are books, so `type = 'book'` passes min_support = 2
        // while `type = 'CD'` does not.
        let mut db = paper_database();
        db.relation_mut("order")
            .unwrap()
            .insert_values([
                Value::str("a98"),
                Value::str("Harry Potter"),
                Value::str("book"),
                Value::real(17.99),
            ])
            .unwrap();
        let order = db.relation("order").unwrap().schema().clone();
        let book = db.relation("book").unwrap().schema().clone();
        let embedded = Ind::from_indices(
            "order",
            vec![order.attr("title"), order.attr("price")],
            "book",
            vec![book.attr("title"), book.attr("price")],
        );
        assert!(embedded.holds_on(&db).unwrap(), "precondition: IND holds");
        for config in configs() {
            let config = IndDiscoveryConfig {
                min_support: 2,
                ..config
            };
            let cinds = discover_cind_conditions(&db, &embedded, &config).unwrap();
            assert!(
                cinds.is_empty(),
                "the unconditional IND holds; any CIND is vacuous, got {cinds:?}"
            );
        }
    }

    #[test]
    fn ignore_nulls_applies_to_condition_mining_too() {
        // A null-title book order is the only thing keeping the embedded
        // IND from holding: under SQL semantics the IND holds, so mining
        // yields nothing; under set semantics the null row disqualifies
        // `type = 'book'` but the vacuous guard must not fire.
        let mut db = paper_database();
        db.relation_mut("order")
            .unwrap()
            .insert_values([
                Value::str("a99"),
                Value::Null,
                Value::str("book"),
                Value::real(5.0),
            ])
            .unwrap();
        let order = db.relation("order").unwrap().schema().clone();
        let book = db.relation("book").unwrap().schema().clone();
        let embedded = Ind::from_indices(
            "order",
            vec![order.attr("title"), order.attr("price")],
            "book",
            vec![book.attr("title"), book.attr("price")],
        );
        assert!(!embedded.holds_on(&db).unwrap());
        assert!(embedded.holds_on_with(&db, true).unwrap());
        for config in configs() {
            let strict = discover_cind_conditions(&db, &embedded, &config).unwrap();
            assert!(
                strict
                    .iter()
                    .all(|c| c.tableau().iter().all(|p| p.lhs != [Value::str("book")])),
                "set semantics: the null row disqualifies type = 'book', got {strict:?}"
            );
            let lenient = IndDiscoveryConfig {
                ignore_nulls: true,
                ..config
            };
            let found = discover_cind_conditions(&db, &embedded, &lenient).unwrap();
            assert!(
                found.is_empty(),
                "SQL semantics: the IND holds, any condition is vacuous, got {found:?}"
            );
        }
    }

    #[test]
    fn ignore_nulls_recovers_inds_killed_by_null_cells() {
        // One NULL order title kills order(title) ⊆ book(title) under set
        // semantics; SQL-style semantics exempt the null projection.
        let mut db = paper_database();
        db.relation_mut("order")
            .unwrap()
            .insert_values([
                Value::str("a99"),
                Value::Null,
                Value::str("book"),
                Value::real(5.0),
            ])
            .unwrap();
        let order = db.relation("order").unwrap().schema().clone();
        let title = order.attr("title");
        for config in configs() {
            let strict = discover_inds(&db, &config).unwrap();
            assert!(
                !strict.inds.iter().any(|ind| {
                    ind.lhs_relation() == "order"
                        && ind.rhs_relation() == "book"
                        && ind.lhs_attrs() == [title]
                }),
                "set semantics: the null projection falsifies the IND"
            );
            let lenient = IndDiscoveryConfig {
                ignore_nulls: true,
                ..config
            };
            let found = discover_inds(&db, &lenient).unwrap();
            assert!(
                found.inds.iter().any(|ind| {
                    ind.lhs_relation() == "order"
                        && ind.rhs_relation() == "book"
                        && ind.lhs_attrs() == [title]
                }),
                "SQL semantics: order(title) ⊆ book(title) holds, got {:?}",
                found.inds
            );
        }
    }
}
