//! Discovery of inclusion dependencies and CIND conditions.
//!
//! Section 2.2's running example is exactly the situation this module
//! automates: the IND `order(title, price) ⊆ book(title, price)` does not
//! hold on the whole `order` relation, but it does hold on the selection
//! `type = 'book'` — which is the CIND `cind1`.  Discovery proceeds in two
//! steps:
//!
//! 1. [`discover_inds`] enumerates attribute lists with compatible domains
//!    between pairs of relations and keeps those whose value sets are
//!    included (standard unary / compound IND discovery);
//! 2. [`discover_cind_conditions`] takes an IND candidate that does *not*
//!    hold and searches for a selection on a finite-ish LHS attribute under
//!    which it does, optionally also requiring a constant pattern on the RHS
//!    side — producing [`Cind`] values.

use dq_core::cind::{Cind, CindPattern};
use dq_core::ind::Ind;
use dq_relation::{Database, DqResult, RelationInstance, Value};
use std::collections::{BTreeSet, HashSet};

/// Configuration of IND / CIND discovery.
#[derive(Clone, Debug)]
pub struct IndDiscoveryConfig {
    /// Maximum arity of discovered INDs (1 = unary only).
    pub max_arity: usize,
    /// Minimum number of distinct LHS values for an IND to be interesting
    /// (inclusion of a near-empty column is noise).
    pub min_distinct: usize,
    /// Minimum number of tuples a CIND condition must select.
    pub min_support: usize,
    /// Maximum number of distinct values a condition attribute may have for
    /// it to be used as a CIND condition (keeps conditions categorical).
    pub max_condition_values: usize,
}

impl Default for IndDiscoveryConfig {
    fn default() -> Self {
        IndDiscoveryConfig {
            max_arity: 2,
            min_distinct: 1,
            min_support: 1,
            max_condition_values: 16,
        }
    }
}

/// The result of [`discover_inds`].
#[derive(Clone, Debug)]
pub struct DiscoveredInds {
    /// INDs that hold on the database.
    pub inds: Vec<Ind>,
    /// Candidate INDs that were checked.
    pub candidates_checked: usize,
}

/// Discovers unary (and, up to [`IndDiscoveryConfig::max_arity`], compound)
/// inclusion dependencies between distinct relations of `db`.
pub fn discover_inds(db: &Database, config: &IndDiscoveryConfig) -> DqResult<DiscoveredInds> {
    let mut inds = Vec::new();
    let mut candidates_checked = 0usize;
    let relations: Vec<(&str, &RelationInstance)> = db.iter().collect();

    for (lhs_name, lhs_inst) in &relations {
        for (rhs_name, rhs_inst) in &relations {
            if lhs_name == rhs_name {
                continue;
            }
            // Unary INDs first; they seed the compound candidates.
            let mut unary: Vec<(usize, usize)> = Vec::new();
            for la in 0..lhs_inst.schema().arity() {
                for ra in 0..rhs_inst.schema().arity() {
                    if !lhs_inst
                        .schema()
                        .domain(la)
                        .compatible_with(rhs_inst.schema().domain(ra))
                    {
                        continue;
                    }
                    candidates_checked += 1;
                    if unary_included(lhs_inst, la, rhs_inst, ra, config.min_distinct) {
                        unary.push((la, ra));
                        inds.push(Ind::from_indices(
                            lhs_inst.schema().name(),
                            vec![la],
                            rhs_inst.schema().name(),
                            vec![ra],
                        ));
                    }
                }
            }
            if config.max_arity < 2 {
                continue;
            }
            // Binary INDs built from pairs of unary ones over distinct
            // attributes on both sides.
            for i in 0..unary.len() {
                for j in 0..unary.len() {
                    let (l1, r1) = unary[i];
                    let (l2, r2) = unary[j];
                    if l1 >= l2 || r1 == r2 {
                        continue;
                    }
                    candidates_checked += 1;
                    let lhs_proj: HashSet<Vec<Value>> =
                        lhs_inst.iter().map(|(_, t)| t.project(&[l1, l2])).collect();
                    let rhs_proj: HashSet<Vec<Value>> =
                        rhs_inst.iter().map(|(_, t)| t.project(&[r1, r2])).collect();
                    if lhs_proj.len() >= config.min_distinct && lhs_proj.is_subset(&rhs_proj) {
                        inds.push(Ind::from_indices(
                            lhs_inst.schema().name(),
                            vec![l1, l2],
                            rhs_inst.schema().name(),
                            vec![r1, r2],
                        ));
                    }
                }
            }
        }
    }
    Ok(DiscoveredInds {
        inds,
        candidates_checked,
    })
}

fn unary_included(
    lhs: &RelationInstance,
    la: usize,
    rhs: &RelationInstance,
    ra: usize,
    min_distinct: usize,
) -> bool {
    let lhs_values = lhs.active_domain(la);
    if lhs_values.len() < min_distinct {
        return false;
    }
    let rhs_values = rhs.active_domain(ra);
    lhs_values.is_subset(&rhs_values)
}

/// Given an embedded IND `R1[X] ⊆ R2[Y]` that does not hold on `db`, searches
/// for CIND conditions that make it hold: a condition attribute `B` of `R1`
/// (categorical, outside `X`) and a constant `b` such that
/// `(R1[X; B = b] ⊆ R2[Y])` is satisfied with at least
/// [`IndDiscoveryConfig::min_support`] selected tuples.
///
/// The returned CINDs have an empty RHS pattern (`Yp = []`), matching the
/// shape of `cind1` / `cind2` in Fig. 4.
pub fn discover_cind_conditions(
    db: &Database,
    embedded: &Ind,
    config: &IndDiscoveryConfig,
) -> DqResult<Vec<Cind>> {
    let lhs_inst = db.require_relation(embedded.lhs_relation())?;
    let rhs_inst = db.require_relation(embedded.rhs_relation())?;
    let rhs_proj: HashSet<Vec<Value>> = rhs_inst
        .iter()
        .map(|(_, t)| t.project(embedded.rhs_attrs()))
        .collect();

    let mut out = Vec::new();
    for cond_attr in 0..lhs_inst.schema().arity() {
        if embedded.lhs_attrs().contains(&cond_attr) {
            continue;
        }
        let values: BTreeSet<Value> = lhs_inst.active_domain(cond_attr);
        if values.is_empty() || values.len() > config.max_condition_values {
            continue;
        }
        let mut patterns: Vec<CindPattern> = Vec::new();
        for value in values {
            let selected: Vec<_> = lhs_inst
                .iter()
                .filter(|(_, t)| t.get(cond_attr) == &value)
                .collect();
            if selected.len() < config.min_support {
                continue;
            }
            let included = selected
                .iter()
                .all(|(_, t)| rhs_proj.contains(&t.project(embedded.lhs_attrs())));
            if included {
                patterns.push(CindPattern::new(vec![value], Vec::new()));
            }
        }
        if patterns.is_empty() {
            continue;
        }
        // If every value of the condition attribute works, the condition is
        // vacuous — the plain IND holds and no CIND is needed.
        let all_values = lhs_inst.active_domain(cond_attr).len();
        if patterns.len() == all_values && embedded.holds_on(db)? {
            continue;
        }
        let cind = Cind::from_indices(
            lhs_inst.schema(),
            embedded.lhs_attrs().to_vec(),
            vec![cond_attr],
            rhs_inst.schema(),
            embedded.rhs_attrs().to_vec(),
            Vec::new(),
            patterns,
        )?;
        out.push(cind);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::detect::detect_cind_violations;
    use dq_gen::orders::paper_database;

    /// The order / book / CD database of Fig. 3, extended with one more CD
    /// order ("J. Denver") that has no `book` counterpart — on the tiny
    /// published instance the (title, price) inclusion from `order` into
    /// `book` happens to hold by coincidence; the extra order restores the
    /// situation the paper describes, where it only holds for `type = book`.
    fn paper_db() -> Database {
        let mut db = paper_database();
        db.relation_mut("order")
            .unwrap()
            .insert_values([
                Value::str("a99"),
                Value::str("J. Denver"),
                Value::str("CD"),
                Value::real(7.94),
            ])
            .unwrap();
        db
    }

    #[test]
    fn unary_ind_discovery_on_paper_database() {
        let db = paper_db();
        let found = discover_inds(&db, &IndDiscoveryConfig::default()).unwrap();
        assert!(found.candidates_checked > 0);
        // Every reported IND must actually hold.
        for ind in &found.inds {
            assert!(
                ind.holds_on(&db).unwrap(),
                "discovered IND {ind:?} does not hold"
            );
        }
        // order(title, price) ⊆ book(title, price) does NOT hold on Fig. 3
        // (the Snow White CD order has no book counterpart), so the compound
        // IND must not be reported unconditionally.
        let compound_bogus = found.inds.iter().any(|ind| {
            ind.lhs_relation() == "order"
                && ind.rhs_relation() == "book"
                && ind.lhs_attrs().len() == 2
        });
        assert!(
            !compound_bogus,
            "order(title,price) ⊆ book(title,price) must not be discovered unconditionally"
        );
    }

    #[test]
    fn cind_condition_mining_recovers_cind1() {
        let db = paper_db();
        let order = db.relation("order").unwrap().schema().clone();
        let book = db.relation("book").unwrap().schema().clone();
        let embedded = Ind::from_indices(
            "order",
            vec![order.attr("title"), order.attr("price")],
            "book",
            vec![book.attr("title"), book.attr("price")],
        );
        assert!(!embedded.holds_on(&db).unwrap());
        let config = IndDiscoveryConfig {
            min_support: 1,
            ..IndDiscoveryConfig::default()
        };
        let cinds = discover_cind_conditions(&db, &embedded, &config).unwrap();
        assert!(!cinds.is_empty(), "expected the type = 'book' condition");
        let report = detect_cind_violations(&db, &cinds).unwrap();
        assert!(
            report.is_clean(),
            "discovered CINDs must hold on the database"
        );
        let has_book_condition = cinds.iter().any(|c| {
            c.lhs_pattern_attrs() == [order.attr("type")]
                && c.tableau().iter().any(|p| p.lhs == [Value::str("book")])
        });
        assert!(
            has_book_condition,
            "expected condition type = 'book', got {cinds:?}"
        );
    }

    #[test]
    fn condition_mining_skips_high_cardinality_attributes() {
        let db = paper_db();
        let order = db.relation("order").unwrap().schema().clone();
        let book = db.relation("book").unwrap().schema().clone();
        let embedded = Ind::from_indices(
            "order",
            vec![order.attr("title"), order.attr("price")],
            "book",
            vec![book.attr("title"), book.attr("price")],
        );
        let config = IndDiscoveryConfig {
            max_condition_values: 0,
            ..IndDiscoveryConfig::default()
        };
        let cinds = discover_cind_conditions(&db, &embedded, &config).unwrap();
        assert!(cinds.is_empty());
    }
}
