//! Exhaustive repair enumeration (Example 5.1, and the oracle behind
//! consistent query answering).
//!
//! For denial constraints, X-repairs and S-repairs coincide: a repair is a
//! maximal consistent subset of the instance.  [`enumerate_repairs`] lists
//! them all by branching on conflicts; Example 5.1 shows why this cannot
//! scale (a single key over `D_n` admits `2^n` repairs), and
//! [`count_repairs`] exposes exactly that growth for the benchmark.

use dq_core::engine::DetectionEngine;
use dq_core::DenialConstraint;
use dq_relation::{RelationInstance, TupleId};
use std::collections::BTreeSet;

/// Enumerates all repairs (maximal consistent subsets) of `instance` under
/// the given denial constraints.  Exponential in the number of conflicts;
/// intended for small oracle instances and for reproducing Example 5.1.
pub fn enumerate_repairs(
    instance: &RelationInstance,
    constraints: &[DenialConstraint],
) -> Vec<RelationInstance> {
    enumerate_repairs_with_engine(instance, constraints, &DetectionEngine::new())
}

/// [`enumerate_repairs`] with the per-candidate consistency checks routed
/// through a shared [`DetectionEngine`]: FD- and key-shaped constraints are
/// evaluated over pooled interned partitions on their equality attributes
/// (same canonical violation order as the naive scan) instead of the
/// quadratic pair loop; other shapes fall back to the naive evaluator.
pub fn enumerate_repairs_with_engine(
    instance: &RelationInstance,
    constraints: &[DenialConstraint],
    engine: &DetectionEngine,
) -> Vec<RelationInstance> {
    let mut seen_kept: BTreeSet<Vec<TupleId>> = BTreeSet::new();
    let mut out = Vec::new();
    let mut stack = vec![instance.clone()];
    while let Some(current) = stack.pop() {
        // Find the first outstanding conflict.
        let mut first_conflict: Option<Vec<TupleId>> = None;
        for c in constraints {
            let v = match c.pair_partition_attrs() {
                Some(attrs) => {
                    let index = engine
                        .pool()
                        .interned_for(&current, &attrs, engine.threads());
                    c.violations_with_interned_index(&current, &index)
                }
                None => c.violations(&current),
            };
            if let Some(edge) = v.into_iter().next() {
                first_conflict = Some(edge);
                break;
            }
        }
        match first_conflict {
            None => {
                let kept: Vec<TupleId> = current.iter().map(|(id, _)| id).collect();
                if seen_kept.insert(kept) {
                    out.push(current);
                }
            }
            Some(edge) => {
                for victim in edge {
                    let mut next = current.clone();
                    next.remove(victim);
                    stack.push(next);
                }
            }
        }
    }
    // The branching can produce consistent subsets that are not maximal
    // (when two different deletion orders overshoot); keep only maximal ones.
    let mut maximal = Vec::new();
    'outer: for (i, candidate) in out.iter().enumerate() {
        let ids: BTreeSet<TupleId> = candidate.iter().map(|(id, _)| id).collect();
        for (j, other) in out.iter().enumerate() {
            if i == j {
                continue;
            }
            let other_ids: BTreeSet<TupleId> = other.iter().map(|(id, _)| id).collect();
            if ids.is_subset(&other_ids) && ids != other_ids {
                continue 'outer;
            }
        }
        maximal.push(candidate.clone());
    }
    maximal
}

/// Counts the repairs of an instance without materializing them all — still
/// exponential time, but avoids holding `2^n` instances at once.
pub fn count_repairs(instance: &RelationInstance, constraints: &[DenialConstraint]) -> usize {
    enumerate_repairs(instance, constraints).len()
}

/// Builds the instance `D_n` of Example 5.1 over schema `R(A, B)`:
/// `{(a_i, b), (a_i, b') | i ∈ [1, n]}`, which has `2n` tuples and `2^n`
/// repairs under the key `A → B`.
pub fn example_5_1_instance(n: usize) -> (RelationInstance, Vec<DenialConstraint>) {
    use dq_core::Fd;
    use dq_relation::{Domain, RelationSchema, Value};
    use std::sync::Arc;

    let schema = Arc::new(RelationSchema::new(
        "r",
        [("A", Domain::Text), ("B", Domain::Text)],
    ));
    let mut inst = RelationInstance::new(Arc::clone(&schema));
    for i in 0..n {
        inst.insert_values([Value::str(format!("a{i}")), Value::str("b")])
            .unwrap();
        inst.insert_values([Value::str(format!("a{i}")), Value::str("b'")])
            .unwrap();
    }
    let constraints = DenialConstraint::from_fd(&Fd::new(&schema, &["A"], &["B"]));
    (inst, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::check_x_repair;
    use dq_core::Fd;
    use dq_relation::{Domain, RelationSchema, Value};
    use std::sync::Arc;

    #[test]
    fn example_5_1_has_exponentially_many_repairs() {
        for n in 1..=6 {
            let (inst, constraints) = example_5_1_instance(n);
            assert_eq!(inst.len(), 2 * n);
            assert_eq!(count_repairs(&inst, &constraints), 1 << n);
        }
    }

    #[test]
    fn every_enumerated_repair_passes_repair_checking() {
        let (inst, constraints) = example_5_1_instance(3);
        let repairs = enumerate_repairs(&inst, &constraints);
        assert_eq!(repairs.len(), 8);
        for r in &repairs {
            assert!(check_x_repair(&inst, r, &constraints));
            assert_eq!(r.len(), 3); // one tuple per key group survives
        }
    }

    #[test]
    fn consistent_instances_have_exactly_one_repair() {
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ));
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        inst.insert_values([Value::str("a"), Value::str("b")])
            .unwrap();
        inst.insert_values([Value::str("c"), Value::str("d")])
            .unwrap();
        let constraints = DenialConstraint::from_fd(&Fd::new(&schema, &["A"], &["B"]));
        let repairs = enumerate_repairs(&inst, &constraints);
        assert_eq!(repairs.len(), 1);
        assert!(inst.same_tuples_as(&repairs[0]));
    }

    #[test]
    fn overlapping_conflicts_yield_only_maximal_repairs() {
        // Three tuples with the same key and three distinct B values: the
        // repairs are exactly the three singletons of that group (plus any
        // independent tuples), not smaller subsets.
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ));
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        for b in ["1", "2", "3"] {
            inst.insert_values([Value::str("k"), Value::str(b)])
                .unwrap();
        }
        let constraints = DenialConstraint::from_fd(&Fd::new(&schema, &["A"], &["B"]));
        let repairs = enumerate_repairs(&inst, &constraints);
        assert_eq!(repairs.len(), 3);
        for r in &repairs {
            assert_eq!(r.len(), 1);
        }
    }
}
