//! Repairing numerical attributes under denial constraints.
//!
//! Section 5.1 cites [13] ("complexity and approximation of fixing numerical
//! attributes in databases under integrity constraints") for a repair model
//! in which the *distance moved* by numeric values, not the number of changed
//! cells, is what the repair minimises.  This module implements the
//! single-tuple fragment of that model: denial constraints whose predicates
//! compare an attribute of one tuple with a constant (range constraints such
//! as `¬(salary < 0)` or `¬(age > 150 ∧ status = 'active')`).  A violating
//! tuple is fixed by moving one numeric attribute just far enough to falsify
//! one predicate of the constraint, choosing the cheapest such move.

use dq_core::denial::{DcTerm, DenialConstraint};
use dq_relation::instance::CellRef;
use dq_relation::query::CompOp;
use dq_relation::{Domain, RelationInstance, TupleId, Value};

/// Configuration of the numeric repair.
#[derive(Clone, Debug)]
pub struct NumericRepairConfig {
    /// How far past a strict bound a real-valued attribute is moved (for
    /// integer attributes the step is always 1).
    pub real_step: f64,
    /// Maximum number of passes over the constraints (a pass may expose new
    /// violations when constraints overlap).
    pub max_rounds: usize,
}

impl Default for NumericRepairConfig {
    fn default() -> Self {
        NumericRepairConfig {
            real_step: 0.01,
            max_rounds: 8,
        }
    }
}

/// The outcome of a numeric repair.
#[derive(Clone, Debug)]
pub struct NumericRepairOutcome {
    /// The repaired instance.
    pub repaired: RelationInstance,
    /// Cell changes: `(tuple, attribute, old, new)`.
    pub changes: Vec<(TupleId, usize, Value, Value)>,
    /// Total distance moved, `Σ |new − old|`.
    pub total_shift: f64,
    /// Whether the result satisfies every input constraint.
    pub consistent: bool,
    /// Rounds used.
    pub rounds: usize,
}

/// A candidate single-attribute move that falsifies one predicate.
struct Move {
    attr: usize,
    new_value: Value,
    shift: f64,
}

fn as_numeric(v: &Value) -> Option<f64> {
    v.as_int().map(|i| i as f64).or_else(|| v.as_real())
}

/// The cheapest move falsifying `left op right` for the single tuple bound to
/// variable 0, or `None` when the predicate does not have the
/// attribute-vs-constant shape (or is not numeric).
fn falsifying_move(
    instance: &RelationInstance,
    id: TupleId,
    predicate: &dq_core::denial::DcPredicate,
    real_step: f64,
) -> Option<Move> {
    let (attr, constant, op) = match (&predicate.left, &predicate.right) {
        (DcTerm::Attr { var: 0, attr }, DcTerm::Const(c)) => (*attr, c.clone(), predicate.op),
        // `c op t[A]` is mirrored into `t[A] op' c`.
        (DcTerm::Const(c), DcTerm::Attr { var: 0, attr }) => {
            let mirrored = match predicate.op {
                CompOp::Lt => CompOp::Gt,
                CompOp::Le => CompOp::Ge,
                CompOp::Gt => CompOp::Lt,
                CompOp::Ge => CompOp::Le,
                other => other,
            };
            (*attr, c.clone(), mirrored)
        }
        _ => return None,
    };
    let tuple = instance.tuple(id)?;
    let current = as_numeric(tuple.get(attr))?;
    let bound = as_numeric(&constant)?;
    let is_int =
        matches!(instance.schema().domain(attr), Domain::Int) || tuple.get(attr).as_int().is_some();
    let step = if is_int { 1.0 } else { real_step };

    // The predicate currently holds (that is why the constraint fired); find
    // the nearest value at which it stops holding.
    let target = match op {
        // t[A] > c  → move down to c.
        CompOp::Gt => bound,
        // t[A] >= c → move strictly below c.
        CompOp::Ge => bound - step,
        // t[A] < c  → move up to c.
        CompOp::Lt => bound,
        // t[A] <= c → move strictly above c.
        CompOp::Le => bound + step,
        // t[A] = c  → move off the constant by one step.
        CompOp::Eq => {
            if current <= bound {
                bound - step
            } else {
                bound + step
            }
        }
        // t[A] ≠ c  → move onto the constant.
        CompOp::Ne => bound,
    };
    let new_value = if is_int {
        Value::int(target.round() as i64)
    } else {
        Value::real(target)
    };
    Some(Move {
        attr,
        new_value,
        shift: (target - current).abs(),
    })
}

/// Repairs `instance` against single-tuple numeric denial constraints by
/// moving attribute values minimally.  Constraints with two tuple variables
/// or non-numeric predicates are left to the other repair algorithms and
/// simply reported as unresolved (via `consistent = false`) if they remain
/// violated.
pub fn repair_numeric_violations(
    instance: &RelationInstance,
    constraints: &[DenialConstraint],
    config: &NumericRepairConfig,
) -> NumericRepairOutcome {
    let mut repaired = instance.clone();
    let mut changes = Vec::new();
    let mut total_shift = 0.0;
    let mut rounds = 0;

    while rounds < config.max_rounds {
        rounds += 1;
        let mut changed = false;
        for constraint in constraints {
            if constraint.vars != 1 {
                continue;
            }
            for violation in constraint.violations(&repaired) {
                let &[id] = violation.as_slice() else {
                    continue;
                };
                // Re-check: an earlier fix this round may already cover it.
                let still_violated = constraint
                    .violations(&repaired)
                    .iter()
                    .any(|v| v.as_slice() == [id]);
                if !still_violated {
                    continue;
                }
                // Cheapest single-predicate falsification.
                let best = constraint
                    .predicates
                    .iter()
                    .filter_map(|p| falsifying_move(&repaired, id, p, config.real_step))
                    .min_by(|a, b| a.shift.partial_cmp(&b.shift).expect("finite shifts"));
                let Some(mv) = best else { continue };
                let old = repaired
                    .tuple(id)
                    .expect("violating tuple is live")
                    .get(mv.attr)
                    .clone();
                repaired
                    .update_cell(CellRef::new(id, mv.attr), mv.new_value.clone())
                    .expect("numeric moves stay inside the attribute domain");
                changes.push((id, mv.attr, old, mv.new_value));
                total_shift += mv.shift;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let consistent = constraints.iter().all(|c| c.holds_on(&repaired));
    NumericRepairOutcome {
        repaired,
        changes,
        total_shift,
        consistent,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::denial::DcPredicate;
    use dq_relation::RelationSchema;
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "emp",
            [
                ("name", Domain::Text),
                ("age", Domain::Int),
                ("salary", Domain::Real),
            ],
        ))
    }

    fn instance(rows: &[(&str, i64, f64)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (n, a, s) in rows {
            inst.insert_values([Value::str(*n), Value::int(*a), Value::real(*s)])
                .unwrap();
        }
        inst
    }

    /// ¬(age > 150): ages above 150 are impossible.
    fn age_cap() -> DenialConstraint {
        DenialConstraint::new(
            "emp",
            1,
            vec![DcPredicate::new(
                DcTerm::attr(0, 1),
                CompOp::Gt,
                DcTerm::val(150i64),
            )],
        )
    }

    /// ¬(salary < 0): salaries are non-negative.
    fn salary_floor() -> DenialConstraint {
        DenialConstraint::new(
            "emp",
            1,
            vec![DcPredicate::new(
                DcTerm::attr(0, 2),
                CompOp::Lt,
                DcTerm::val(0.0),
            )],
        )
    }

    #[test]
    fn clamps_values_to_the_nearest_bound() {
        let inst = instance(&[("ann", 999, 100.0), ("bob", 40, -50.0), ("eve", 30, 10.0)]);
        let outcome = repair_numeric_violations(
            &inst,
            &[age_cap(), salary_floor()],
            &NumericRepairConfig::default(),
        );
        assert!(outcome.consistent);
        assert_eq!(outcome.changes.len(), 2);
        let ann_age = outcome
            .repaired
            .tuple(TupleId(0))
            .unwrap()
            .get(1)
            .as_int()
            .unwrap();
        assert_eq!(
            ann_age, 150,
            "age moves to the boundary, not some arbitrary value"
        );
        let bob_salary = outcome
            .repaired
            .tuple(TupleId(1))
            .unwrap()
            .get(2)
            .as_real()
            .unwrap();
        assert_eq!(bob_salary, 0.0);
        assert!((outcome.total_shift - (849.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn clean_instance_is_untouched() {
        let inst = instance(&[("ann", 33, 100.0)]);
        let outcome = repair_numeric_violations(
            &inst,
            &[age_cap(), salary_floor()],
            &NumericRepairConfig::default(),
        );
        assert!(outcome.consistent);
        assert!(outcome.changes.is_empty());
        assert_eq!(outcome.total_shift, 0.0);
        assert!(outcome.repaired.same_tuples_as(&inst));
    }

    #[test]
    fn conjunction_is_falsified_by_the_cheapest_predicate() {
        // ¬(age > 60 ∧ salary > 1000): either lowering age below/to 60 or
        // salary to 1000 fixes it; the cheaper move must be chosen.
        let dc = DenialConstraint::new(
            "emp",
            1,
            vec![
                DcPredicate::new(DcTerm::attr(0, 1), CompOp::Gt, DcTerm::val(60i64)),
                DcPredicate::new(DcTerm::attr(0, 2), CompOp::Gt, DcTerm::val(1000.0)),
            ],
        );
        let inst = instance(&[("ann", 61, 5000.0)]);
        let outcome = repair_numeric_violations(&inst, &[dc], &NumericRepairConfig::default());
        assert!(outcome.consistent);
        assert_eq!(outcome.changes.len(), 1);
        let (_, attr, _, new) = &outcome.changes[0];
        assert_eq!(
            *attr, 1,
            "moving age by 1 is cheaper than moving salary by 4000"
        );
        assert_eq!(new.as_int(), Some(60));
        assert!((outcome.total_shift - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strict_and_non_strict_bounds() {
        // ¬(age >= 100) needs age to go to 99; ¬(salary <= 0) needs a step up.
        let dc_age = DenialConstraint::new(
            "emp",
            1,
            vec![DcPredicate::new(
                DcTerm::attr(0, 1),
                CompOp::Ge,
                DcTerm::val(100i64),
            )],
        );
        let dc_sal = DenialConstraint::new(
            "emp",
            1,
            vec![DcPredicate::new(
                DcTerm::attr(0, 2),
                CompOp::Le,
                DcTerm::val(0.0),
            )],
        );
        let inst = instance(&[("ann", 100, 0.0)]);
        let outcome =
            repair_numeric_violations(&inst, &[dc_age, dc_sal], &NumericRepairConfig::default());
        assert!(outcome.consistent);
        let t = outcome.repaired.tuple(TupleId(0)).unwrap();
        assert_eq!(t.get(1).as_int(), Some(99));
        assert!(t.get(2).as_real().unwrap() > 0.0);
    }

    #[test]
    fn two_variable_constraints_are_out_of_scope() {
        // An FD-shaped constraint is ignored (and reported as inconsistent).
        let fd = dq_core::fd::Fd::new(&schema(), &["name"], &["age"]);
        let dcs = DenialConstraint::from_fd(&fd);
        let inst = instance(&[("ann", 30, 1.0), ("ann", 40, 1.0)]);
        let outcome = repair_numeric_violations(&inst, &dcs, &NumericRepairConfig::default());
        assert!(!outcome.consistent);
        assert!(outcome.changes.is_empty());
        assert!(outcome.repaired.same_tuples_as(&inst));
    }

    #[test]
    fn constant_on_the_left_is_handled() {
        // ¬(0 > salary) is the mirrored form of ¬(salary < 0).
        let dc = DenialConstraint::new(
            "emp",
            1,
            vec![DcPredicate::new(
                DcTerm::val(0.0),
                CompOp::Gt,
                DcTerm::attr(0, 2),
            )],
        );
        let inst = instance(&[("ann", 30, -5.0)]);
        let outcome = repair_numeric_violations(&inst, &[dc], &NumericRepairConfig::default());
        assert!(outcome.consistent);
        assert_eq!(
            outcome.repaired.tuple(TupleId(0)).unwrap().get(2).as_real(),
            Some(0.0)
        );
    }
}
