//! Heuristic U-repair for (C)FDs by value modification (Section 5.1).
//!
//! Follows the equivalence-class approach of [16]/[28]: constant (single-
//! tuple) violations are resolved by writing the pattern constant into the
//! offending cell, and variable (pair) violations are resolved by merging the
//! RHS cells of tuples that agree on the LHS into an equivalence class and
//! assigning the whole class the value that minimizes the weighted repair
//! cost (a confidence-weighted plurality vote).  Fixes can expose new
//! violations, so the procedure iterates to a fixpoint, with a round bound as
//! a safety net (finding a *minimum-cost* repair is NP-complete, Theorem 5.1;
//! the heuristic trades optimality for termination).

use crate::model::{RepairCost, RepairLog};
use dq_core::analysis::ensure_consistent;
use dq_core::engine::DetectionEngine;
use dq_core::{detect_cfd_violations, Cfd, CfdViolation, PatternValue};
use dq_relation::{DqResult, HashIndex, RelationInstance, TupleId, Value};
use std::collections::BTreeMap;

/// Configuration of the heuristic repair.
#[derive(Clone, Debug)]
pub struct RepairConfig {
    /// Maximum number of fixpoint rounds before giving up.
    pub max_rounds: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig { max_rounds: 25 }
    }
}

/// Outcome of the heuristic repair.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repaired instance.
    pub repaired: RelationInstance,
    /// The changes made.
    pub log: RepairLog,
    /// Whether the result satisfies every input CFD (the heuristic can fail
    /// to converge when the CFD set is inconsistent or the bound is hit).
    pub consistent: bool,
    /// Number of rounds used.
    pub rounds: usize,
}

/// Repairs `instance` against `cfds` by value modification, carrying a
/// private [`DetectionEngine`] through the fixpoint loop.
///
/// Refuses an inconsistent CFD set up front with
/// [`DqError::InconsistentConstraints`](dq_relation::DqError) carrying a
/// minimal conflicting core — no repair of a nonempty instance could ever
/// satisfy such a set, so the fixpoint loop would burn its round budget for
/// nothing.
pub fn repair_cfd_violations(
    instance: &RelationInstance,
    cfds: &[Cfd],
    cost: &RepairCost,
    config: &RepairConfig,
) -> DqResult<RepairOutcome> {
    repair_cfd_violations_with_engine(instance, cfds, cost, config, &DetectionEngine::new())
}

/// [`repair_cfd_violations`] over a caller-owned engine.
///
/// Every consistency check of the loop runs on the engine: phase-1
/// violations and the final verdict come from the engine's interned
/// detection, and phase-2 equivalence classes are read off the same pooled
/// [interned indexes](dq_relation::InternedIndex) instead of building a
/// fresh `Vec<Value>`-keyed [`HashIndex`] per CFD per round.  Within one
/// round the normalized fragments share each distinct-LHS index through the
/// pool (version-tagged, so reuse survives exactly as long as no cell was
/// rewritten), and because the repair loop only *updates* cells the final
/// check never pays for more than the loop already built.  The outcome —
/// repaired cells, log order, cost, rounds — is byte-identical to
/// [`repair_cfd_violations_naive`].
///
/// Like [`repair_cfd_violations`], refuses inconsistent rule sets up front.
pub fn repair_cfd_violations_with_engine(
    instance: &RelationInstance,
    cfds: &[Cfd],
    cost: &RepairCost,
    config: &RepairConfig,
    engine: &DetectionEngine,
) -> DqResult<RepairOutcome> {
    ensure_consistent(cfds)?;
    let _span = dq_obs::span!("repair.urepair", deps = cfds.len());
    let mut repaired = instance.clone();
    let mut log = RepairLog::default();
    let normalized: Vec<Cfd> = cfds.iter().flat_map(|c| c.normalize()).collect();
    let mut rounds = 0;

    while rounds < config.max_rounds {
        rounds += 1;
        // Per-round fixpoint cost: how many cells this round rewrote and
        // what it charged, so the profile shows convergence behaviour.
        let round_span = dq_obs::span("round");
        let (cells_before, cost_before) = (log.modified.len(), log.cost);
        let mut changed = false;

        // Phase 1: constant violations — write the required constant.
        for cfd in &normalized {
            let tp = &cfd.tableau()[0];
            let b = cfd.rhs()[0];
            let PatternValue::Const(required) = &tp.rhs[0] else {
                continue;
            };
            let index = engine
                .pool()
                .interned_for(&repaired, cfd.lhs(), engine.threads());
            let violating: Vec<TupleId> = cfd
                .violations_with_interned(&repaired, &index)
                .into_iter()
                .filter_map(|v| match v {
                    CfdViolation::SingleTuple { tuple, .. } => Some(tuple),
                    CfdViolation::TuplePair { .. } => None,
                })
                .collect();
            for id in violating {
                let old = repaired
                    .tuple(id)
                    .expect("violating tuple is live")
                    .get(b)
                    .clone();
                if &old == required {
                    continue;
                }
                repaired
                    .update_cell(dq_relation::instance::CellRef::new(id, b), required.clone())
                    .expect("repair writes stay in-domain");
                log.cost += cost.cell_cost(id, b, &old, required);
                log.modified.push((id, b, old, required.clone()));
                changed = true;
            }
        }

        // Phase 2: variable violations — equivalence classes per LHS group,
        // read off the pooled interned index (group keys resolve to values
        // only for the few multi-tuple groups the patterns must inspect).
        for cfd in &normalized {
            let tp = &cfd.tableau()[0];
            let b = cfd.rhs()[0];
            if !tp.rhs[0].is_any() {
                continue; // constant case handled above
            }
            let index = engine
                .pool()
                .interned_for(&repaired, cfd.lhs(), engine.threads());
            let b_column = index.store().column(&repaired, b);
            // Collect target assignments first, then apply, to avoid holding
            // borrows across mutations.
            let mut assignments: Vec<(TupleId, Value)> = Vec::new();
            for (key_ids, rows) in index.multi_groups() {
                let matches_pattern = tp
                    .lhs
                    .iter()
                    .zip(key_ids.iter().zip(index.columns()))
                    .all(|(p, (&id, col))| p.matches(col.interner().resolve(id)));
                if !matches_pattern || rows.len() < 2 {
                    continue;
                }
                // Confidence-weighted vote over the current B values of the
                // class: keeping the value held by high-confidence cells
                // minimizes the cost of rewriting the others.
                let mut votes: BTreeMap<Value, f64> = BTreeMap::new();
                for &row in rows {
                    let id = index.tuple_id(row);
                    let v = b_column.interner().resolve(b_column.id_at(row as usize));
                    *votes.entry(v.clone()).or_insert(0.0) += cost.weight(id, b);
                }
                if votes.len() <= 1 {
                    continue;
                }
                let target = votes
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(v, _)| v.clone())
                    .expect("non-empty vote");
                for &row in rows {
                    let current = b_column.interner().resolve(b_column.id_at(row as usize));
                    if current != &target {
                        assignments.push((index.tuple_id(row), target.clone()));
                    }
                }
            }
            apply_assignments(&mut repaired, &mut log, cost, b, assignments, &mut changed);
        }

        drop(round_span);
        dq_obs::inc("repair.rounds");
        dq_obs::record(
            "repair.round_changes",
            (log.modified.len() - cells_before) as u64,
        );
        dq_obs::record(
            "repair.round_cost_milli",
            ((log.cost - cost_before) * 1e3).max(0.0) as u64,
        );
        if !changed {
            break;
        }
    }

    let consistent = engine.detect_cfd_violations(&repaired, cfds).is_clean();
    Ok(RepairOutcome {
        repaired,
        log,
        consistent,
        rounds,
    })
}

/// The legacy implementation: one fresh `Vec<Value>`-keyed [`HashIndex`]
/// per CFD per round and naive detection for every consistency check.
/// Kept as the reference the engine-carried path is property-tested
/// against (`tests/discovery_equivalence.rs`) and benchmarked over.
pub fn repair_cfd_violations_naive(
    instance: &RelationInstance,
    cfds: &[Cfd],
    cost: &RepairCost,
    config: &RepairConfig,
) -> RepairOutcome {
    let mut repaired = instance.clone();
    let mut log = RepairLog::default();
    let normalized: Vec<Cfd> = cfds.iter().flat_map(|c| c.normalize()).collect();
    let mut rounds = 0;

    while rounds < config.max_rounds {
        rounds += 1;
        let mut changed = false;

        // Phase 1: constant violations — write the required constant.
        for cfd in &normalized {
            let tp = &cfd.tableau()[0];
            let b = cfd.rhs()[0];
            let PatternValue::Const(required) = &tp.rhs[0] else {
                continue;
            };
            let violating: Vec<TupleId> = cfd
                .violations(&repaired)
                .into_iter()
                .filter_map(|v| match v {
                    CfdViolation::SingleTuple { tuple, .. } => Some(tuple),
                    CfdViolation::TuplePair { .. } => None,
                })
                .collect();
            for id in violating {
                let old = repaired
                    .tuple(id)
                    .expect("violating tuple is live")
                    .get(b)
                    .clone();
                if &old == required {
                    continue;
                }
                repaired
                    .update_cell(dq_relation::instance::CellRef::new(id, b), required.clone())
                    .expect("repair writes stay in-domain");
                log.cost += cost.cell_cost(id, b, &old, required);
                log.modified.push((id, b, old, required.clone()));
                changed = true;
            }
        }

        // Phase 2: variable violations — equivalence classes per LHS group.
        for cfd in &normalized {
            let tp = &cfd.tableau()[0];
            let b = cfd.rhs()[0];
            if !tp.rhs[0].is_any() {
                continue; // constant case handled above
            }
            let index = HashIndex::build(&repaired, cfd.lhs());
            // Collect target assignments first, then apply, to avoid holding
            // borrows across mutations.
            let mut assignments: Vec<(TupleId, Value)> = Vec::new();
            for (key, group) in index.multi_groups() {
                let matches_pattern = tp.lhs.iter().zip(key.iter()).all(|(p, v)| p.matches(v));
                if !matches_pattern || group.len() < 2 {
                    continue;
                }
                // Confidence-weighted vote over the current B values of the
                // class: keeping the value held by high-confidence cells
                // minimizes the cost of rewriting the others.
                let mut votes: BTreeMap<Value, f64> = BTreeMap::new();
                for &id in group {
                    let v = repaired.tuple(id).expect("live tuple").get(b).clone();
                    *votes.entry(v).or_insert(0.0) += cost.weight(id, b);
                }
                if votes.len() <= 1 {
                    continue;
                }
                let target = votes
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(v, _)| v.clone())
                    .expect("non-empty vote");
                for &id in group {
                    let current = repaired.tuple(id).expect("live tuple").get(b).clone();
                    if current != target {
                        assignments.push((id, target.clone()));
                    }
                }
            }
            apply_assignments(&mut repaired, &mut log, cost, b, assignments, &mut changed);
        }

        if !changed {
            break;
        }
    }

    let consistent = detect_cfd_violations(&repaired, cfds).is_clean();
    RepairOutcome {
        repaired,
        log,
        consistent,
        rounds,
    }
}

/// Applies one phase-2 batch in ascending tuple order.  Groups are disjoint
/// (each tuple gets at most one assignment per CFD pass), so sorting fixes
/// the log order and the floating-point cost accumulation to a canonical
/// sequence — the hash-map group order of either index representation never
/// leaks into the outcome.
fn apply_assignments(
    repaired: &mut RelationInstance,
    log: &mut RepairLog,
    cost: &RepairCost,
    b: usize,
    mut assignments: Vec<(TupleId, Value)>,
    changed: &mut bool,
) {
    assignments.sort_by_key(|x| x.0);
    for (id, target) in assignments {
        let old = repaired.tuple(id).expect("live tuple").get(b).clone();
        repaired
            .update_cell(dq_relation::instance::CellRef::new(id, b), target.clone())
            .expect("repair writes stay in-domain");
        log.cost += cost.cell_cost(id, b, &old, &target);
        log.modified.push((id, b, old, target));
        *changed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::check_u_repair;
    use dq_core::{cst, wild, Fd, PatternTuple};
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    fn customer_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("phn", Domain::Int),
                ("street", Domain::Text),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    fn d0(schema: &Arc<RelationSchema>) -> RelationInstance {
        let mut inst = RelationInstance::new(Arc::clone(schema));
        for (cc, ac, phn, street, city, zip) in [
            (44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE"),
            (44, 131, 3456789, "Crichton", "NYC", "EH4 8LE"),
            (1, 908, 3456789, "Mtn Ave", "NYC", "07974"),
        ] {
            inst.insert_values([
                Value::int(cc),
                Value::int(ac),
                Value::int(phn),
                Value::str(street),
                Value::str(city),
                Value::str(zip),
            ])
            .unwrap();
        }
        inst
    }

    fn paper_cfds(schema: &Arc<RelationSchema>) -> Vec<Cfd> {
        vec![
            Cfd::new(
                schema,
                &["CC", "zip"],
                &["street"],
                vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
            )
            .unwrap(),
            Cfd::new(
                schema,
                &["CC", "AC", "phn"],
                &["street", "city", "zip"],
                vec![
                    PatternTuple::all_wildcards(3, 3),
                    PatternTuple::new(
                        vec![cst(44), cst(131), wild()],
                        vec![wild(), cst("EDI"), wild()],
                    ),
                    PatternTuple::new(
                        vec![cst(1), cst(908), wild()],
                        vec![wild(), cst("MH"), wild()],
                    ),
                ],
            )
            .unwrap(),
            Cfd::new(
                schema,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::all_wildcards(2, 1)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn repairs_the_paper_instance_to_consistency() {
        let s = customer_schema();
        let dirty = d0(&s);
        let cfds = paper_cfds(&s);
        assert!(!detect_cfd_violations(&dirty, &cfds).is_clean());
        let outcome = repair_cfd_violations(
            &dirty,
            &cfds,
            &RepairCost::uniform(),
            &RepairConfig::default(),
        )
        .expect("consistent rule set");
        assert!(outcome.consistent, "repair did not converge");
        assert!(check_u_repair(&dirty, &outcome.repaired, &cfds));
        assert!(outcome.log.change_count() > 0);
        assert!(outcome.log.cost > 0.0);
        // The cities have been corrected to the pattern constants.
        let city = s.attr("city");
        assert_eq!(
            outcome.repaired.tuple(TupleId(0)).unwrap().get(city),
            &Value::str("EDI")
        );
        assert_eq!(
            outcome.repaired.tuple(TupleId(2)).unwrap().get(city),
            &Value::str("MH")
        );
    }

    #[test]
    fn clean_instances_are_untouched() {
        let s = customer_schema();
        let mut clean = RelationInstance::new(Arc::clone(&s));
        clean
            .insert_values([
                Value::int(44),
                Value::int(131),
                Value::int(1),
                Value::str("Mayfield"),
                Value::str("EDI"),
                Value::str("EH4"),
            ])
            .unwrap();
        let cfds = paper_cfds(&s);
        let outcome = repair_cfd_violations(
            &clean,
            &cfds,
            &RepairCost::uniform(),
            &RepairConfig::default(),
        )
        .expect("consistent rule set");
        assert!(outcome.consistent);
        assert_eq!(outcome.log.change_count(), 0);
        assert!(clean.same_tuples_as(&outcome.repaired));
    }

    #[test]
    fn variable_violations_are_resolved_by_plurality() {
        let s = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ));
        let fd = Cfd::from_fd(&Fd::new(&s, &["A"], &["B"]));
        let mut inst = RelationInstance::new(Arc::clone(&s));
        for b in ["x", "x", "y"] {
            inst.insert_values([Value::str("k"), Value::str(b)])
                .unwrap();
        }
        let outcome = repair_cfd_violations(
            &inst,
            std::slice::from_ref(&fd),
            &RepairCost::uniform(),
            &RepairConfig::default(),
        )
        .expect("consistent rule set");
        assert!(outcome.consistent);
        // The minority value is rewritten to the plurality value.
        for (_, t) in outcome.repaired.iter() {
            assert_eq!(t.get(1), &Value::str("x"));
        }
        assert_eq!(outcome.log.change_count(), 1);
    }

    #[test]
    fn repair_loop_patches_pooled_indexes_instead_of_rebuilding() {
        let s = customer_schema();
        let dirty = d0(&s);
        let cfds = paper_cfds(&s);
        let engine = DetectionEngine::new();
        let outcome = repair_cfd_violations_with_engine(
            &dirty,
            &cfds,
            &RepairCost::uniform(),
            &RepairConfig::default(),
            &engine,
        )
        .expect("consistent rule set");
        let naive = repair_cfd_violations_naive(
            &dirty,
            &cfds,
            &RepairCost::uniform(),
            &RepairConfig::default(),
        );
        // Byte-identical outcome first: the patch path must not change what
        // the repair computes, only what it costs.
        assert_eq!(outcome.consistent, naive.consistent);
        assert_eq!(outcome.rounds, naive.rounds);
        assert_eq!(outcome.log.modified, naive.log.modified);
        assert_eq!(outcome.log.deleted, naive.log.deleted);
        assert_eq!(outcome.log.cost, naive.log.cost);
        assert!(outcome.repaired.same_tuples_as(&naive.repaired));
        let stats = engine.pool_stats();
        assert!(stats.patches > 0, "repair writes must patch, not rebuild");
        // Zero full rebuilds after round 1: each distinct LHS is built cold
        // exactly once, and every later miss is served incrementally (the
        // loop only updates cells, so appends stay 0 and races can't happen
        // single-threaded within one artifact cache).
        let distinct_lhs: std::collections::BTreeSet<Vec<usize>> = cfds
            .iter()
            .flat_map(|c| c.normalize())
            .map(|c| c.lhs().to_vec())
            .collect();
        assert_eq!(
            stats.misses,
            distinct_lhs.len() as u64 + stats.appends + stats.patches + stats.races,
            "no full index rebuild after the cold start"
        );
    }

    #[test]
    fn inconsistent_cfd_sets_are_refused_up_front() {
        // Two CFDs forcing different constants on the same attribute for the
        // same tuples: no repair can ever satisfy both, so the static
        // analysis rejects the set before the fixpoint loop starts, naming a
        // minimal conflicting core.
        let s = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ));
        let c1 = Cfd::new(
            &s,
            &["A"],
            &["B"],
            vec![PatternTuple::new(vec![wild()], vec![cst("p")])],
        )
        .unwrap();
        let c2 = Cfd::new(
            &s,
            &["A"],
            &["B"],
            vec![PatternTuple::new(vec![wild()], vec![cst("q")])],
        )
        .unwrap();
        let mut inst = RelationInstance::new(Arc::clone(&s));
        inst.insert_values([Value::str("k"), Value::str("p")])
            .unwrap();
        let config = RepairConfig { max_rounds: 5 };
        let err = repair_cfd_violations(&inst, &[c1, c2], &RepairCost::uniform(), &config)
            .expect_err("inconsistent rule set must be refused");
        match err {
            dq_relation::DqError::InconsistentConstraints { core } => {
                // Both rules are needed for the conflict, so both are in the
                // minimal core.
                assert_eq!(core.len(), 2);
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}
