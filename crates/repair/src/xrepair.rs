//! X-repair by tuple deletion (Section 5.1).
//!
//! For denial constraints (which include FDs and keys), tuple insertions
//! never help, so X-repairs and S-repairs coincide; a repair is a maximal
//! consistent subset.  The violations of a denial-constraint set form a
//! *conflict hypergraph* whose vertices are tuples and whose hyperedges are
//! violating tuple combinations; a repair is the complement of a minimal
//! vertex cover.  Finding a minimum cover is NP-hard, so [`repair_by_deletion`]
//! uses the standard greedy heuristic (repeatedly delete the tuple involved
//! in the most outstanding conflicts), which yields a maximal consistent
//! subset.

use crate::model::RepairLog;
use dq_core::DenialConstraint;
use dq_relation::{RelationInstance, TupleId};
use std::collections::{BTreeMap, BTreeSet};

/// The conflict hypergraph of an instance w.r.t. a set of denial constraints.
#[derive(Clone, Debug, Default)]
pub struct ConflictHypergraph {
    /// Hyperedges: sets of tuples that jointly violate some constraint.
    pub edges: Vec<BTreeSet<TupleId>>,
}

impl ConflictHypergraph {
    /// Builds the hypergraph.
    pub fn build(instance: &RelationInstance, constraints: &[DenialConstraint]) -> Self {
        let mut edges = Vec::new();
        for constraint in constraints {
            for violation in constraint.violations(instance) {
                edges.push(violation.into_iter().collect());
            }
        }
        ConflictHypergraph { edges }
    }

    /// Number of conflicts.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Is the instance conflict-free?
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Tuples involved in at least one conflict.
    pub fn conflicting_tuples(&self) -> BTreeSet<TupleId> {
        self.edges.iter().flatten().copied().collect()
    }
}

/// Outcome of the deletion-based repair.
#[derive(Clone, Debug)]
pub struct DeletionOutcome {
    /// The repaired (sub-)instance.
    pub repaired: RelationInstance,
    /// The changes made (deletions only).
    pub log: RepairLog,
}

/// Repairs the instance by greedily deleting tuples until no denial
/// constraint is violated.  The result is always consistent and is a maximal
/// consistent subset (no deleted tuple could be re-added), i.e. an X-repair.
pub fn repair_by_deletion(
    instance: &RelationInstance,
    constraints: &[DenialConstraint],
) -> DeletionOutcome {
    let mut repaired = instance.clone();
    let mut log = RepairLog::default();
    loop {
        let graph = ConflictHypergraph::build(&repaired, constraints);
        if graph.is_empty() {
            break;
        }
        // Greedy: delete the tuple covering the most conflicts.
        let mut counts: BTreeMap<TupleId, usize> = BTreeMap::new();
        for edge in &graph.edges {
            for &id in edge {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let (&victim, _) = counts
            .iter()
            .max_by_key(|(id, count)| (**count, std::cmp::Reverse(id.0)))
            .expect("non-empty conflict graph");
        repaired.remove(victim);
        log.deleted.push(victim);
    }
    // Maximality pass: try to re-add deleted tuples that no longer conflict.
    let mut still_deleted = Vec::new();
    for &id in &log.deleted {
        let tuple = instance.tuple(id).expect("deleted tuple existed").clone();
        let mut candidate = repaired.clone();
        candidate
            .insert(tuple.clone())
            .expect("original tuple is well-typed");
        if constraints.iter().all(|c| c.holds_on(&candidate)) {
            // Safe to keep after all — re-add it with a fresh id.
            repaired
                .insert(tuple)
                .expect("original tuple is well-typed");
        } else {
            still_deleted.push(id);
        }
    }
    log.deleted = still_deleted;
    DeletionOutcome { repaired, log }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::Fd;
    use dq_relation::{Domain, RelationSchema, Value};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ))
    }

    fn instance(rows: &[(&str, &str)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b) in rows {
            inst.insert_values([Value::str(*a), Value::str(*b)])
                .unwrap();
        }
        inst
    }

    fn key_constraints() -> Vec<DenialConstraint> {
        DenialConstraint::from_fd(&Fd::new(&schema(), &["A"], &["B"]))
    }

    #[test]
    fn conflict_hypergraph_reflects_violations() {
        let inst = instance(&[("k", "1"), ("k", "2"), ("z", "3")]);
        let graph = ConflictHypergraph::build(&inst, &key_constraints());
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.conflicting_tuples().len(), 2);
        let clean = instance(&[("k", "1"), ("z", "3")]);
        assert!(ConflictHypergraph::build(&clean, &key_constraints()).is_empty());
    }

    #[test]
    fn greedy_deletion_produces_a_consistent_maximal_subset() {
        let inst = instance(&[("k", "1"), ("k", "2"), ("k", "3"), ("z", "4")]);
        let constraints = key_constraints();
        let outcome = repair_by_deletion(&inst, &constraints);
        assert!(constraints.iter().all(|c| c.holds_on(&outcome.repaired)));
        // Exactly one of the three conflicting tuples survives, plus ("z", 4).
        assert_eq!(outcome.repaired.len(), 2);
        assert_eq!(outcome.log.deleted.len(), 2);
        // The untouched tuple is never deleted.
        assert!(!outcome.log.deleted.contains(&TupleId(3)));
    }

    #[test]
    fn consistent_instances_are_returned_unchanged() {
        let inst = instance(&[("k", "1"), ("z", "2")]);
        let outcome = repair_by_deletion(&inst, &key_constraints());
        assert!(outcome.log.deleted.is_empty());
        assert!(inst.same_tuples_as(&outcome.repaired));
    }

    #[test]
    fn greedy_prefers_tuples_covering_many_conflicts() {
        // One "hub" tuple conflicts with three others (same A, different B);
        // the three others are pairwise conflicting too, but a single
        // deletion cannot fix everything; the greedy starts with a
        // max-degree vertex and ends with exactly one survivor per key group.
        let inst = instance(&[("k", "1"), ("k", "2"), ("k", "2"), ("w", "9")]);
        let constraints = key_constraints();
        let outcome = repair_by_deletion(&inst, &constraints);
        assert!(constraints.iter().all(|c| c.holds_on(&outcome.repaired)));
        // The two ("k", "2") duplicates do not conflict with each other, so
        // the repair keeps both of them and deletes ("k", "1").
        assert_eq!(outcome.repaired.len(), 3);
        assert_eq!(outcome.log.deleted, vec![TupleId(0)]);
    }
}
