//! Repair quality: precision and recall of the fixes (Section 5.3 remarks).
//!
//! The paper notes that repairing algorithms cannot come with guaranteed
//! precision ("the ratio of the number of errors correctly fixed to the
//! total number of changes made") and recall ("the ratio of the number of
//! errors correctly fixed to the total number of errors"); the benchmark
//! therefore *measures* them on synthetic workloads where the ground truth
//! is known (a clean instance plus injected errors).

use dq_relation::{RelationInstance, TupleId};
use std::collections::BTreeSet;

/// Precision / recall / F1 of a repair against the known-clean instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepairQuality {
    /// Cells whose repaired value equals the clean value, over all changed
    /// cells.
    pub precision: f64,
    /// Errors (cells where dirty differs from clean) restored to the clean
    /// value, over all errors.
    pub recall: f64,
    /// Harmonic mean of the two.
    pub f1: f64,
    /// Number of injected errors.
    pub errors: usize,
    /// Number of cells the repair changed.
    pub changes: usize,
}

/// Cells `(tuple, attr)` where the two instances differ (tuples aligned by
/// id; tuples missing from either side are ignored).
pub fn differing_cells(a: &RelationInstance, b: &RelationInstance) -> BTreeSet<(TupleId, usize)> {
    let mut out = BTreeSet::new();
    for (id, ta) in a.iter() {
        if let Some(tb) = b.tuple(id) {
            for attr in 0..ta.arity() {
                if ta.get(attr) != tb.get(attr) {
                    out.insert((id, attr));
                }
            }
        }
    }
    out
}

/// Scores a repair: `clean` is the ground truth, `dirty` the instance with
/// injected errors, `repaired` the algorithm's output.
pub fn score_repair(
    clean: &RelationInstance,
    dirty: &RelationInstance,
    repaired: &RelationInstance,
) -> RepairQuality {
    let errors = differing_cells(clean, dirty);
    let changes = differing_cells(dirty, repaired);
    let correctly_fixed: usize = changes
        .iter()
        .filter(|(id, attr)| {
            let truth = clean.tuple(*id).map(|t| t.get(*attr));
            let fixed = repaired.tuple(*id).map(|t| t.get(*attr));
            truth.is_some() && truth == fixed
        })
        .count();
    let precision = if changes.is_empty() {
        1.0
    } else {
        correctly_fixed as f64 / changes.len() as f64
    };
    let recall = if errors.is_empty() {
        1.0
    } else {
        correctly_fixed as f64 / errors.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    RepairQuality {
        precision,
        recall,
        f1,
        errors: errors.len(),
        changes: changes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationSchema, Value};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ))
    }

    fn instance(rows: &[(&str, &str)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b) in rows {
            inst.insert_values([Value::str(*a), Value::str(*b)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn perfect_repair_scores_one() {
        let clean = instance(&[("k", "x"), ("z", "y")]);
        let dirty = instance(&[("k", "BAD"), ("z", "y")]);
        let repaired = clean.clone();
        let q = score_repair(&clean, &dirty, &repaired);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.errors, 1);
        assert_eq!(q.changes, 1);
    }

    #[test]
    fn wrong_fixes_lower_precision_unfixed_errors_lower_recall() {
        let clean = instance(&[("k", "x"), ("z", "y"), ("w", "v")]);
        // Two errors.
        let dirty = instance(&[("k", "BAD"), ("z", "ALSO BAD"), ("w", "v")]);
        // Repair fixes the first error correctly, leaves the second, and
        // gratuitously changes a correct cell.
        let repaired = instance(&[("k", "x"), ("z", "ALSO BAD"), ("w", "WRONG")]);
        let q = score_repair(&clean, &dirty, &repaired);
        assert_eq!(q.errors, 2);
        assert_eq!(q.changes, 2);
        assert!((q.precision - 0.5).abs() < 1e-9);
        assert!((q.recall - 0.5).abs() < 1e-9);
        assert!(q.f1 > 0.0 && q.f1 < 1.0);
    }

    #[test]
    fn no_changes_on_clean_data_is_perfect() {
        let clean = instance(&[("k", "x")]);
        let q = score_repair(&clean, &clean, &clean);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.errors, 0);
        assert_eq!(q.changes, 0);
    }

    #[test]
    fn differing_cells_alignment() {
        let a = instance(&[("k", "x"), ("z", "y")]);
        let b = instance(&[("k", "x"), ("z", "CHANGED")]);
        let d = differing_cells(&a, &b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&(TupleId(1), 1)));
    }
}
