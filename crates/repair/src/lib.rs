//! # dq-repair
//!
//! Dependency-based data repairing (Section 5.1 of Fan, PODS 2008).
//!
//! * [`model`] — the X-/S-/U-repair models, the weight × distance cost
//!   metric, repair logging and repair checking (Theorem 5.1);
//! * [`urepair`] — the equivalence-class heuristic that repairs (C)FD
//!   violations by value modification;
//! * [`xrepair`] — the conflict hypergraph and greedy deletion repair for
//!   denial constraints;
//! * [`enumerate`] — exhaustive repair enumeration (Example 5.1 and the
//!   oracle used by consistent query answering);
//! * [`quality`] — precision/recall of repairs against injected errors;
//! * [`numeric`] — minimal-shift repair of numerical attributes under
//!   single-tuple denial constraints (the model of [13]);
//! * [`insertion`] — S-repair-style insertion chase for CIND violations
//!   (dangling tuples get their required counterparts).

pub mod enumerate;
pub mod insertion;
pub mod model;
pub mod numeric;
pub mod quality;
pub mod urepair;
pub mod xrepair;

/// Frequently used items.
pub mod prelude {
    pub use crate::enumerate::{
        count_repairs, enumerate_repairs, enumerate_repairs_with_engine, example_5_1_instance,
    };
    pub use crate::insertion::{
        repair_cind_violations_by_insertion, repair_cind_violations_by_insertion_with_engine,
        InsertionOutcome, InsertionRepairConfig,
    };
    pub use crate::model::{
        check_u_repair, check_u_repair_with, check_x_repair, RepairCost, RepairLog, RepairModel,
        Weights,
    };
    pub use crate::numeric::{
        repair_numeric_violations, NumericRepairConfig, NumericRepairOutcome,
    };
    pub use crate::quality::{differing_cells, score_repair, RepairQuality};
    pub use crate::urepair::{
        repair_cfd_violations, repair_cfd_violations_naive, repair_cfd_violations_with_engine,
        RepairConfig, RepairOutcome,
    };
    pub use crate::xrepair::{repair_by_deletion, ConflictHypergraph, DeletionOutcome};
}

pub use prelude::*;
