//! Repair models, the cost metric and repair checking (Section 5.1,
//! Theorem 5.1).
//!
//! * **X-repair** — a maximal consistent subset of the instance (tuple
//!   deletions only);
//! * **S-repair** — a consistent instance whose symmetric difference with
//!   the original is minimal (deletions and insertions);
//! * **U-repair** — a consistent instance obtained by attribute-value
//!   modifications, minimizing `cost(D, D') = Σ w(t, A) · dis(v, v')`.
//!
//! The [`RepairCost`] type implements the weight × distance metric the paper
//! presents (after [40, 69, 16]); [`repair check`](check_x_repair) functions
//! implement the decision problem of Theorem 5.1 for the tractable cases.

use dq_core::{detect_cfd_violations, Cfd, DenialConstraint};
use dq_relation::{value_distance, RelationInstance, TupleId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// The repair model in use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairModel {
    /// Tuple deletions only, maximal consistent subset.
    XRepair,
    /// Deletions and insertions, minimal symmetric difference.
    SRepair,
    /// Attribute-value modifications, minimal cost.
    URepair,
}

/// Per-cell confidence weights `w(t, A)` (defaulting to 1.0), as placed by
/// the user or propagated by provenance analysis.
#[derive(Clone, Debug, Default)]
pub struct Weights {
    weights: BTreeMap<(TupleId, usize), f64>,
    default: f64,
}

impl Weights {
    /// Uniform weights of 1.0.
    pub fn uniform() -> Self {
        Weights {
            weights: BTreeMap::new(),
            default: 1.0,
        }
    }

    /// Sets the weight of a cell.
    pub fn set(&mut self, tuple: TupleId, attr: usize, weight: f64) {
        self.weights.insert((tuple, attr), weight);
    }

    /// The weight of a cell.
    pub fn get(&self, tuple: TupleId, attr: usize) -> f64 {
        self.weights
            .get(&(tuple, attr))
            .copied()
            .unwrap_or(self.default)
    }
}

/// The repair cost metric of Section 5.1.
#[derive(Clone, Debug)]
pub struct RepairCost {
    weights: Weights,
}

impl RepairCost {
    /// Cost with uniform weights.
    pub fn uniform() -> Self {
        RepairCost {
            weights: Weights::uniform(),
        }
    }

    /// Cost with explicit weights.
    pub fn with_weights(weights: Weights) -> Self {
        RepairCost { weights }
    }

    /// Mutable access to the weights.
    pub fn weights_mut(&mut self) -> &mut Weights {
        &mut self.weights
    }

    /// The confidence weight `w(t, A)` of a cell.
    pub fn weight(&self, tuple: TupleId, attr: usize) -> f64 {
        self.weights.get(tuple, attr)
    }

    /// `cost(v, v') = w(t, A) · dis(v, v')` for a single cell change.
    pub fn cell_cost(&self, tuple: TupleId, attr: usize, old: &Value, new: &Value) -> f64 {
        self.weights.get(tuple, attr) * value_distance(old, new)
    }

    /// Total cost of transforming `original` into `repaired` by value
    /// modifications (tuple sets must be aligned by id).
    pub fn instance_cost(&self, original: &RelationInstance, repaired: &RelationInstance) -> f64 {
        let mut total = 0.0;
        for (id, t) in original.iter() {
            if let Some(r) = repaired.tuple(id) {
                for attr in 0..t.arity() {
                    if t.get(attr) != r.get(attr) {
                        total += self.cell_cost(id, attr, t.get(attr), r.get(attr));
                    }
                }
            }
        }
        total
    }
}

/// A record of the changes a repair made, for reporting and for quality
/// scoring against injected errors.
#[derive(Clone, Debug, Default)]
pub struct RepairLog {
    /// Cells modified: `(tuple, attr, old value, new value)`.
    pub modified: Vec<(TupleId, usize, Value, Value)>,
    /// Tuples deleted.
    pub deleted: Vec<TupleId>,
    /// Total cost of the modifications under the cost metric in use.
    pub cost: f64,
}

impl RepairLog {
    /// The set of cells that were modified.
    pub fn modified_cells(&self) -> BTreeSet<(TupleId, usize)> {
        self.modified.iter().map(|(t, a, _, _)| (*t, *a)).collect()
    }

    /// Number of changes (modifications plus deletions).
    pub fn change_count(&self) -> usize {
        self.modified.len() + self.deleted.len()
    }
}

/// Is `candidate` an X-repair of `original` w.r.t. the denial constraints?
/// That is: a subset, consistent, and maximal (no deleted tuple can be added
/// back without breaking consistency).  PTIME (Theorem 5.1 lists the
/// tractable cases; denial constraints are among them).
pub fn check_x_repair(
    original: &RelationInstance,
    candidate: &RelationInstance,
    constraints: &[DenialConstraint],
) -> bool {
    // Subset check: every candidate tuple appears in the original (by id).
    let candidate_ids: BTreeSet<TupleId> = candidate.iter().map(|(id, _)| id).collect();
    for (id, t) in candidate.iter() {
        match original.tuple(id) {
            Some(o) if o == t => {}
            _ => return false,
        }
    }
    // Consistency.
    if constraints.iter().any(|d| !d.holds_on(candidate)) {
        return false;
    }
    // Maximality: adding any deleted tuple back must violate something.
    for (id, t) in original.iter() {
        if candidate_ids.contains(&id) {
            continue;
        }
        let mut extended = candidate.clone();
        extended
            .insert(t.clone())
            .expect("tuple from the original instance is well-typed");
        if constraints.iter().all(|d| d.holds_on(&extended)) {
            return false;
        }
    }
    true
}

/// Is `candidate` a U-repair of `original` w.r.t. the CFDs: same tuple ids,
/// consistent, and only attribute values changed?  (Cost-minimality is an
/// optimization criterion, not part of the check — finding minimum-cost
/// repairs is NP-complete, Theorem 5.1.)
pub fn check_u_repair(
    original: &RelationInstance,
    candidate: &RelationInstance,
    cfds: &[Cfd],
) -> bool {
    preserves_tuple_identities(original, candidate)
        && detect_cfd_violations(candidate, cfds).is_clean()
}

/// [`check_u_repair`] with the consistency verdict computed by a shared
/// [`DetectionEngine`](dq_core::engine::DetectionEngine) — callers that
/// check many candidate repairs of the same instance reuse its pooled
/// interned indexes instead of rebuilding one `HashIndex` per CFD per
/// candidate.
pub fn check_u_repair_with(
    engine: &dq_core::engine::DetectionEngine,
    original: &RelationInstance,
    candidate: &RelationInstance,
    cfds: &[Cfd],
) -> bool {
    preserves_tuple_identities(original, candidate)
        && engine.detect_cfd_violations(candidate, cfds).is_clean()
}

/// The structural half of U-repair checking: the candidate keeps exactly
/// the original's tuple ids (only attribute values may differ).
fn preserves_tuple_identities(original: &RelationInstance, candidate: &RelationInstance) -> bool {
    original.len() == candidate.len()
        && original.iter().all(|(id, _)| candidate.tuple(id).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::Fd;
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text)],
        ))
    }

    fn instance(rows: &[(&str, &str)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (a, b) in rows {
            inst.insert_values([Value::str(*a), Value::str(*b)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn cell_cost_scales_with_weight_and_distance() {
        let mut cost = RepairCost::uniform();
        let near = cost.cell_cost(TupleId(0), 0, &Value::str("EDI"), &Value::str("EDIN"));
        let far = cost.cell_cost(TupleId(0), 0, &Value::str("EDI"), &Value::str("NYC"));
        assert!(near < far);
        cost.weights_mut().set(TupleId(0), 0, 10.0);
        let weighted = cost.cell_cost(TupleId(0), 0, &Value::str("EDI"), &Value::str("NYC"));
        assert!((weighted - 10.0 * far).abs() < 1e-9);
    }

    #[test]
    fn instance_cost_sums_changed_cells_only() {
        let cost = RepairCost::uniform();
        let original = instance(&[("x", "p"), ("y", "q")]);
        let mut repaired = original.clone();
        repaired
            .update_cell(
                dq_relation::instance::CellRef::new(TupleId(0), 1),
                Value::str("r"),
            )
            .unwrap();
        let c = cost.instance_cost(&original, &repaired);
        assert!(c > 0.0);
        assert_eq!(cost.instance_cost(&original, &original), 0.0);
    }

    #[test]
    fn x_repair_checking_subset_consistency_and_maximality() {
        let s = schema();
        let fd = Fd::new(&s, &["A"], &["B"]);
        let constraints = DenialConstraint::from_fd(&fd);
        // Original: two conflicting tuples plus one independent one.
        let original = instance(&[("k", "1"), ("k", "2"), ("z", "3")]);
        // Deleting one side of the conflict is a repair.
        let mut repair = original.clone();
        repair.remove(TupleId(1));
        assert!(check_x_repair(&original, &repair, &constraints));
        // Deleting both conflict tuples is consistent but not maximal.
        let mut not_maximal = original.clone();
        not_maximal.remove(TupleId(0));
        not_maximal.remove(TupleId(1));
        assert!(!check_x_repair(&original, &not_maximal, &constraints));
        // Keeping both conflict tuples is not consistent.
        assert!(!check_x_repair(&original, &original, &constraints));
        // A "repair" with a modified tuple is not a subset.
        let mut tampered = original.clone();
        tampered.remove(TupleId(1));
        tampered
            .update_cell(
                dq_relation::instance::CellRef::new(TupleId(0), 1),
                Value::str("9"),
            )
            .unwrap();
        assert!(!check_x_repair(&original, &tampered, &constraints));
    }

    #[test]
    fn u_repair_checking_requires_same_tuples_and_consistency() {
        let s = schema();
        let cfd = Cfd::from_fd(&Fd::new(&s, &["A"], &["B"]));
        let original = instance(&[("k", "1"), ("k", "2")]);
        // Harmonizing the B values is a U-repair.
        let mut fixed = original.clone();
        fixed
            .update_cell(
                dq_relation::instance::CellRef::new(TupleId(1), 1),
                Value::str("1"),
            )
            .unwrap();
        assert!(check_u_repair(
            &original,
            &fixed,
            std::slice::from_ref(&cfd)
        ));
        // The original itself is inconsistent.
        assert!(!check_u_repair(
            &original,
            &original,
            std::slice::from_ref(&cfd)
        ));
        // Deleting a tuple is outside the U-repair model.
        let mut deleted = original.clone();
        deleted.remove(TupleId(1));
        assert!(!check_u_repair(&original, &deleted, &[cfd]));
    }

    #[test]
    fn repair_log_bookkeeping() {
        let mut log = RepairLog::default();
        log.modified
            .push((TupleId(0), 1, Value::str("a"), Value::str("b")));
        log.deleted.push(TupleId(2));
        assert_eq!(log.change_count(), 2);
        assert!(log.modified_cells().contains(&(TupleId(0), 1)));
    }
}
