//! Insertion-based repair of CIND violations (the S-repair side).
//!
//! The S-repair model of [7] (Section 5.1) assumes the database is "neither
//! consistent nor complete" and allows tuple insertions as well as deletions.
//! Deletions never help against inclusion dependencies defined *into* a
//! relation other than the one being edited; the natural fix for a dangling
//! tuple is to insert the required counterpart — exactly the TGD chase step.
//! This module implements that chase for CINDs: for every violating LHS tuple
//! a new RHS tuple is created carrying the corresponding values on `Y`, the
//! required constants on `Yp`, and labelled-null placeholders (`Value::Null`)
//! everywhere else.

use dq_core::cind::Cind;
use dq_core::engine::DetectionEngine;
use dq_relation::{Database, DqResult, Tuple, TupleId, Value};

/// Configuration of the insertion chase.
#[derive(Clone, Debug)]
pub struct InsertionRepairConfig {
    /// Maximum number of chase rounds.  With acyclic CINDs the chase
    /// terminates on its own; the bound guards against cyclic sets (whose
    /// consistency problem is undecidable, Theorem 4.1).
    pub max_rounds: usize,
    /// Maximum number of tuples the chase may insert overall.
    pub max_insertions: usize,
}

impl Default for InsertionRepairConfig {
    fn default() -> Self {
        InsertionRepairConfig {
            max_rounds: 16,
            max_insertions: 100_000,
        }
    }
}

/// The outcome of the insertion repair.
#[derive(Clone, Debug)]
pub struct InsertionOutcome {
    /// The repaired database (the original plus the inserted tuples).
    pub repaired: Database,
    /// Inserted tuples: `(relation, tuple id)` in insertion order.
    pub inserted: Vec<(String, TupleId)>,
    /// Whether the result satisfies every input CIND.
    pub consistent: bool,
    /// Chase rounds used.
    pub rounds: usize,
}

impl InsertionOutcome {
    /// Number of inserted tuples.
    pub fn insertion_count(&self) -> usize {
        self.inserted.len()
    }
}

/// Repairs CIND violations by inserting the missing right-hand-side tuples
/// (a bounded TGD-style chase).
pub fn repair_cind_violations_by_insertion(
    db: &Database,
    cinds: &[Cind],
    config: &InsertionRepairConfig,
) -> DqResult<InsertionOutcome> {
    repair_cind_violations_by_insertion_impl(db, cinds, config, None)
}

/// [`repair_cind_violations_by_insertion`] detecting through a shared
/// [`DetectionEngine`]: every chase round probes the pooled interned RHS
/// index instead of building a fresh `HashMap<Vec<Value>, _>` per CIND per
/// round — and since the chase only *inserts*, each round's detection
/// extends the previous round's indexes in place (the append-only pool fast
/// path) rather than rebuilding them.  Outcome is identical to the naive
/// chase, round for round and insertion for insertion.
pub fn repair_cind_violations_by_insertion_with_engine(
    db: &Database,
    cinds: &[Cind],
    config: &InsertionRepairConfig,
    engine: &DetectionEngine,
) -> DqResult<InsertionOutcome> {
    repair_cind_violations_by_insertion_impl(db, cinds, config, Some(engine))
}

fn repair_cind_violations_by_insertion_impl(
    db: &Database,
    cinds: &[Cind],
    config: &InsertionRepairConfig,
    engine: Option<&DetectionEngine>,
) -> DqResult<InsertionOutcome> {
    // Per-CIND detection inside the round (not one batched report up
    // front): an insertion made for one CIND can already satisfy — or
    // newly violate — the next one, and the naive chase sees that.
    let detect = |db: &Database, cind: &Cind| -> DqResult<Vec<dq_core::cind::CindViolation>> {
        match engine {
            Some(engine) => Ok(engine
                .detect_cind_violations(db, std::slice::from_ref(cind))?
                .of(0)
                .to_vec()),
            None => cind.violations(db),
        }
    };
    let mut repaired = db.clone();
    let mut inserted = Vec::new();
    let mut rounds = 0;

    'chase: while rounds < config.max_rounds {
        rounds += 1;
        let mut changed = false;
        for cind in cinds {
            let violations = detect(&repaired, cind)?;
            if violations.is_empty() {
                continue;
            }
            let rhs_schema = cind.rhs_schema().clone();
            let rhs_relation = rhs_schema.name().to_string();
            for violation in violations {
                if inserted.len() >= config.max_insertions {
                    break 'chase;
                }
                // The dangling LHS tuple and the pattern row it matched.
                let lhs_instance = repaired.require_relation(cind.lhs_schema().name())?;
                let Some(lhs_tuple) = lhs_instance.tuple(violation.tuple) else {
                    continue;
                };
                let pattern = &cind.tableau()[violation.pattern];

                // Build the required RHS tuple: Y ← t[X], Yp ← pattern
                // constants, everything else a labelled null.
                let mut values = vec![Value::Null; rhs_schema.arity()];
                for (x, y) in cind.lhs_attrs().iter().zip(cind.rhs_attrs()) {
                    values[*y] = lhs_tuple.get(*x).clone();
                }
                for (constant, yp) in pattern.rhs.iter().zip(cind.rhs_pattern_attrs()) {
                    values[*yp] = constant.clone();
                }
                let target = repaired.relation_mut(&rhs_relation).ok_or_else(|| {
                    dq_relation::DqError::UnknownRelation {
                        relation: rhs_relation.clone(),
                    }
                })?;
                let id = target.insert(Tuple::new(values))?;
                inserted.push((rhs_relation.clone(), id));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut consistent = true;
    for cind in cinds {
        if !detect(&repaired, cind)?.is_empty() {
            consistent = false;
            break;
        }
    }
    Ok(InsertionOutcome {
        repaired,
        inserted,
        consistent,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::cind::CindPattern;
    use dq_relation::{Domain, RelationInstance, RelationSchema};
    use std::sync::Arc;

    fn source_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "src",
            [("k", Domain::Text), ("kind", Domain::Text)],
        ))
    }

    fn target_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "dst",
            [
                ("k", Domain::Text),
                ("label", Domain::Text),
                ("extra", Domain::Int),
            ],
        ))
    }

    /// `src[k; kind = 'a'] ⊆ dst[k; label = 'A']`.
    fn cind() -> Cind {
        Cind::new(
            &source_schema(),
            &["k"],
            &["kind"],
            &target_schema(),
            &["k"],
            &["label"],
            vec![CindPattern::new(
                vec![Value::str("a")],
                vec![Value::str("A")],
            )],
        )
        .unwrap()
    }

    fn database(src_rows: &[(&str, &str)], dst_rows: &[(&str, &str, i64)]) -> Database {
        let mut src = RelationInstance::new(source_schema());
        for (k, kind) in src_rows {
            src.insert_values([Value::str(*k), Value::str(*kind)])
                .unwrap();
        }
        let mut dst = RelationInstance::new(target_schema());
        for (k, label, extra) in dst_rows {
            dst.insert_values([Value::str(*k), Value::str(*label), Value::int(*extra)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_relation(src);
        db.add_relation(dst);
        db
    }

    #[test]
    fn inserts_exactly_the_missing_counterparts() {
        let db = database(&[("x", "a"), ("y", "a"), ("z", "b")], &[("x", "A", 1)]);
        let cind = cind();
        assert!(!cind.holds_on(&db).unwrap());
        let outcome = repair_cind_violations_by_insertion(
            &db,
            std::slice::from_ref(&cind),
            &InsertionRepairConfig::default(),
        )
        .unwrap();
        assert!(outcome.consistent);
        assert_eq!(outcome.insertion_count(), 1, "only `y` was dangling");
        let dst = outcome.repaired.relation("dst").unwrap();
        assert_eq!(dst.len(), 2);
        let inserted = dst.tuple(outcome.inserted[0].1).unwrap();
        assert_eq!(inserted.get(0), &Value::str("y"));
        assert_eq!(inserted.get(1), &Value::str("A"));
        assert!(
            inserted.get(2).is_null(),
            "unconstrained attributes stay null"
        );
        // The source relation is untouched (no deletions in this model).
        assert_eq!(outcome.repaired.relation("src").unwrap().len(), 3);
    }

    #[test]
    fn consistent_database_is_untouched() {
        let db = database(&[("x", "a"), ("z", "b")], &[("x", "A", 1)]);
        let outcome =
            repair_cind_violations_by_insertion(&db, &[cind()], &InsertionRepairConfig::default())
                .unwrap();
        assert!(outcome.consistent);
        assert_eq!(outcome.insertion_count(), 0);
        assert_eq!(outcome.rounds, 1);
    }

    #[test]
    fn cascading_cinds_chase_to_completion() {
        // src ⊆ dst (as above) and dst[k; label='A'] ⊆ archive[k].
        let archive_schema = Arc::new(RelationSchema::new("archive", [("k", Domain::Text)]));
        let second = Cind::new(
            &target_schema(),
            &["k"],
            &["label"],
            &archive_schema,
            &["k"],
            &[],
            vec![CindPattern::new(vec![Value::str("A")], vec![])],
        )
        .unwrap();
        let mut db = database(&[("x", "a")], &[]);
        db.add_relation(RelationInstance::new(archive_schema));
        let outcome = repair_cind_violations_by_insertion(
            &db,
            &[cind(), second],
            &InsertionRepairConfig::default(),
        )
        .unwrap();
        assert!(outcome.consistent);
        // One dst tuple for x, then one archive tuple for that dst tuple.
        assert_eq!(outcome.insertion_count(), 2);
        assert_eq!(outcome.repaired.relation("archive").unwrap().len(), 1);
        assert!(outcome.rounds >= 2);
    }

    #[test]
    fn insertion_budget_bounds_cyclic_sets() {
        // A cyclic pair: src[k;kind='a'] ⊆ dst[k;label='A'] and
        // dst[k;label='A'] ⊆ src[k;kind='b'] — each inserted dst row demands a
        // `b`-kind src row, which is harmless, but make the second one demand
        // kind='a' instead and the chase would run forever without the bound.
        let back = Cind::new(
            &target_schema(),
            &["label"],
            &["label"],
            &source_schema(),
            &["kind"],
            &["kind"],
            vec![CindPattern::new(
                vec![Value::str("A")],
                vec![Value::str("a")],
            )],
        )
        .unwrap();
        let db = database(&[("x", "a")], &[]);
        let config = InsertionRepairConfig {
            max_rounds: 4,
            max_insertions: 10,
        };
        let outcome = repair_cind_violations_by_insertion(&db, &[cind(), back], &config).unwrap();
        assert!(outcome.insertion_count() <= 10);
        assert!(outcome.rounds <= 4);
    }

    #[test]
    fn engine_carried_chase_equals_naive_chase() {
        let archive_schema = Arc::new(RelationSchema::new("archive", [("k", Domain::Text)]));
        let second = Cind::new(
            &target_schema(),
            &["k"],
            &["label"],
            &archive_schema,
            &["k"],
            &[],
            vec![CindPattern::new(vec![Value::str("A")], vec![])],
        )
        .unwrap();
        let mut db = database(&[("x", "a"), ("y", "a"), ("z", "b")], &[("x", "A", 1)]);
        db.add_relation(RelationInstance::new(archive_schema));
        let cinds = [cind(), second];
        let config = InsertionRepairConfig::default();
        let engine = DetectionEngine::new();
        let fast =
            repair_cind_violations_by_insertion_with_engine(&db, &cinds, &config, &engine).unwrap();
        let slow = repair_cind_violations_by_insertion(&db, &cinds, &config).unwrap();
        assert_eq!(fast.inserted, slow.inserted);
        assert_eq!(fast.rounds, slow.rounds);
        assert_eq!(fast.consistent, slow.consistent);
        for name in ["src", "dst", "archive"] {
            assert!(fast
                .repaired
                .relation(name)
                .unwrap()
                .same_tuples_as(slow.repaired.relation(name).unwrap()));
        }
        assert!(
            engine.pool_stats().appends > 0,
            "insert-only chase rounds must extend pooled indexes, not rebuild"
        );
    }

    #[test]
    fn paper_cind3_is_repaired_by_inserting_the_audio_edition() {
        // Fig. 3 / cind3: the audio-book CD t9 has no audio edition in book;
        // insertion repair adds it.
        let db = dq_gen::orders::paper_database();
        let cinds = dq_gen::orders::paper_cinds();
        assert!(!cinds[2].holds_on(&db).unwrap());
        let outcome =
            repair_cind_violations_by_insertion(&db, &cinds, &InsertionRepairConfig::default())
                .unwrap();
        assert!(outcome.consistent);
        assert_eq!(outcome.insertion_count(), 1);
        let book = outcome.repaired.relation("book").unwrap();
        let added = book.tuple(outcome.inserted[0].1).unwrap();
        let title = book.schema().attr("title");
        let format = book.schema().attr("format");
        assert_eq!(added.get(title), &Value::str("Snow White"));
        assert_eq!(added.get(format), &Value::str("audio"));
    }
}
