//! The metric recorder: sharded atomic cells behind striped name
//! registries, with a process-wide instance and cheap pre-registered
//! handles for hot paths.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, SpanSnapshot};

/// Shards per counter cell.  Each shard sits on its own cache line so
/// concurrent increments from the worker pool don't bounce one line.
const COUNTER_SHARDS: usize = 8;

/// Stripes per name registry.
const REGISTRY_STRIPES: usize = 8;

/// Bounded capacity of the verbose event ring.
const EVENT_CAPACITY: usize = 256;

#[repr(align(64))]
struct PaddedU64(AtomicU64);

thread_local! {
    /// This thread's counter shard, assigned round-robin at first use.
    static THREAD_SHARD: usize = {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        SEQ.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS
    };
}

/// A cell type that can live in a [`Registry`].
pub(crate) trait MetricCell {
    fn new() -> Self;
    fn reset(&self);
}

/// A monotonic counter: one padded atomic per shard, summed on read.
pub(crate) struct CounterCell {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl CounterCell {
    #[inline]
    pub(crate) fn add(&self, delta: u64) {
        let shard = THREAD_SHARD.with(|s| *s);
        self.shards[shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl MetricCell for CounterCell {
    fn new() -> Self {
        CounterCell {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value-wins signed gauge.
pub(crate) struct GaugeCell(AtomicI64);

impl GaugeCell {
    #[inline]
    pub(crate) fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl MetricCell for GaugeCell {
    fn new() -> Self {
        GaugeCell(AtomicI64::new(0))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Power-of-two latency buckets: bucket 0 holds the value 0, bucket
/// `b >= 1` holds values in `[2^(b-1), 2^b)`, and the last bucket
/// absorbs everything above.
pub(crate) const HISTOGRAM_BUCKETS: usize = 44;

#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The upper bound of a bucket, used as the quantile estimate.
fn bucket_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        (1u64 << bucket) - 1
    }
}

/// A histogram: power-of-two buckets plus sharded count/sum and a max.
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: CounterCell,
    sum: CounterCell,
    max: AtomicU64,
}

impl HistogramCell {
    #[inline]
    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.add(1);
        self.sum.add(value);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (0..=1) from `counts`: the upper bound
    /// of the bucket the rank lands in, clamped to the observed max.
    fn quantile(counts: &[u64], total: u64, max: u64, q: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bucket, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(bucket).min(max);
            }
        }
        max
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.value();
        let max = self.max.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.value(),
            max,
            p50: Self::quantile(&counts, count, max, 0.50),
            p90: Self::quantile(&counts, count, max, 0.90),
            p99: Self::quantile(&counts, count, max, 0.99),
        }
    }
}

impl MetricCell for HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: CounterCell::new(),
            sum: CounterCell::new(),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.reset();
        self.sum.reset();
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Aggregated timing of one span path: completions and total wall-clock.
pub(crate) struct SpanCell {
    count: CounterCell,
    total_ns: CounterCell,
}

impl SpanCell {
    #[inline]
    pub(crate) fn record(&self, elapsed_ns: u64) {
        self.count.add(1);
        self.total_ns.add(elapsed_ns);
    }

    pub(crate) fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count.value(),
            total_ns: self.total_ns.value(),
        }
    }
}

impl MetricCell for SpanCell {
    fn new() -> Self {
        SpanCell {
            count: CounterCell::new(),
            total_ns: CounterCell::new(),
        }
    }

    fn reset(&self) {
        self.count.reset();
        self.total_ns.reset();
    }
}

/// A lock-striped name → cell map.  Registration takes a write lock on
/// one stripe; steady-state lookups take a read lock, and hot paths
/// avoid even that by holding a pre-registered handle.
pub(crate) struct Registry<T> {
    stripes: [RwLock<HashMap<String, Arc<T>>>; REGISTRY_STRIPES],
}

fn stripe_of(name: &str) -> usize {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % REGISTRY_STRIPES
}

impl<T: MetricCell> Registry<T> {
    fn new() -> Self {
        Registry {
            stripes: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    pub(crate) fn get_or_register(&self, name: &str) -> Arc<T> {
        let stripe = &self.stripes[stripe_of(name)];
        if let Some(cell) = stripe.read().unwrap().get(name) {
            return Arc::clone(cell);
        }
        let mut stripe = stripe.write().unwrap();
        Arc::clone(
            stripe
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(T::new())),
        )
    }

    fn for_each(&self, mut f: impl FnMut(&str, &T)) {
        for stripe in &self.stripes {
            let stripe = stripe.read().unwrap();
            for (name, cell) in stripe.iter() {
                f(name, cell);
            }
        }
    }

    /// Zeroes every cell but keeps registrations, so pre-registered
    /// handles stay live across resets.
    fn reset(&self) {
        self.for_each(|_, cell| cell.reset());
    }
}

/// The metric recorder: a runtime-toggleable set of named counters,
/// gauges, histograms and span timings.
///
/// One process-wide instance lives behind [`recorder`]; tests may build
/// private instances with [`Recorder::new`].  All recording operations
/// first check the enabled flag (one relaxed atomic load) and are
/// compiled out entirely under the `off` feature.
pub struct Recorder {
    enabled: Arc<AtomicBool>,
    verbose: AtomicBool,
    pub(crate) counters: Registry<CounterCell>,
    pub(crate) gauges: Registry<GaugeCell>,
    pub(crate) histograms: Registry<HistogramCell>,
    pub(crate) spans: Registry<SpanCell>,
    events: Mutex<VecDeque<String>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Recorder {
            enabled: Arc::new(AtomicBool::new(false)),
            verbose: AtomicBool::new(false),
            counters: Registry::new(),
            gauges: Registry::new(),
            histograms: Registry::new(),
            spans: Registry::new(),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Is recording live?  Always `false` under the `off` feature.
    #[inline]
    pub fn enabled(&self) -> bool {
        !cfg!(feature = "off") && self.enabled.load(Ordering::Relaxed)
    }

    /// Toggles recording at runtime.  A no-op under the `off` feature.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Should `span!` field events be captured?
    #[inline]
    pub fn verbose(&self) -> bool {
        self.enabled() && self.verbose.load(Ordering::Relaxed)
    }

    /// Toggles capture of `span!` field events into the bounded ring.
    pub fn set_verbose(&self, on: bool) {
        self.verbose.store(on, Ordering::Relaxed);
    }

    /// A pre-registered counter handle for hot paths: increments cost
    /// one relaxed load, a branch, and one sharded relaxed add.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            enabled: Arc::clone(&self.enabled),
            cell: self.counters.get_or_register(name),
        }
    }

    /// A pre-registered gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            enabled: Arc::clone(&self.enabled),
            cell: self.gauges.get_or_register(name),
        }
    }

    /// A pre-registered histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            enabled: Arc::clone(&self.enabled),
            cell: self.histograms.get_or_register(name),
        }
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn add(&self, name: &str, delta: u64) {
        if self.enabled() {
            self.counters.get_or_register(name).add(delta);
        }
    }

    /// Sets the gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: i64) {
        if self.enabled() {
            self.gauges.get_or_register(name).set(value);
        }
    }

    /// Adds `delta` (may be negative) to the gauge `name`.
    #[inline]
    pub fn gauge_add(&self, name: &str, delta: i64) {
        if self.enabled() {
            self.gauges.get_or_register(name).add(delta);
        }
    }

    /// Records one observation into the histogram `name`.
    #[inline]
    pub fn record(&self, name: &str, value: u64) {
        if self.enabled() {
            self.histograms.get_or_register(name).record(value);
        }
    }

    /// Times `f` into the histogram `name` (nanoseconds).  When
    /// recording is off, runs `f` with no clock read at all.
    #[inline]
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histograms.get_or_register(name).record(elapsed);
        out
    }

    /// A guard that records its lifetime into the histogram `name` on
    /// drop.  When recording is off at creation, no clock is read and
    /// nothing is recorded.
    pub fn timer<'a>(&'a self, name: &'a str) -> TimerGuard<'a> {
        TimerGuard {
            recorder: self,
            name,
            start: self.enabled().then(Instant::now),
        }
    }

    /// Records a completed span occurrence under its full path.
    pub(crate) fn record_span(&self, path: &str, elapsed_ns: u64) {
        self.spans.get_or_register(path).record(elapsed_ns);
    }

    /// Appends a line to the bounded event ring (verbose mode only).
    pub fn event(&self, line: String) {
        if !self.verbose() {
            return;
        }
        let mut events = self.events.lock().unwrap();
        if events.len() == EVENT_CAPACITY {
            events.pop_front();
        }
        events.push_back(line);
    }

    /// A point-in-time copy of every non-zero metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        self.counters.for_each(|name, cell| {
            let value = cell.value();
            if value != 0 {
                snap.counters.insert(name.to_string(), value);
            }
        });
        self.gauges.for_each(|name, cell| {
            let value = cell.value();
            if value != 0 {
                snap.gauges.insert(name.to_string(), value);
            }
        });
        self.histograms.for_each(|name, cell| {
            let h = cell.snapshot();
            if h.count != 0 {
                snap.histograms.insert(name.to_string(), h);
            }
        });
        self.spans.for_each(|name, cell| {
            let s = cell.snapshot();
            if s.count != 0 {
                snap.spans.insert(name.to_string(), s);
            }
        });
        snap.events = self.events.lock().unwrap().iter().cloned().collect();
        snap
    }

    /// Zeroes every cell and drops buffered events.  Registrations (and
    /// therefore pre-registered handles) survive.
    pub fn reset(&self) {
        self.counters.reset();
        self.gauges.reset();
        self.histograms.reset();
        self.spans.reset();
        self.events.lock().unwrap().clear();
    }
}

/// The process-wide recorder.  Starts disabled; flip it on with
/// [`Recorder::set_enabled`] (or `dq_obs::set_enabled`).
pub fn recorder() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

/// Records the time between its creation and drop into a histogram.
/// Inert (no clock read) when recording was off at creation.
#[must_use = "a timer measures until dropped; bind it with `let _t = ...`"]
pub struct TimerGuard<'a> {
    recorder: &'a Recorder,
    name: &'a str,
    start: Option<Instant>,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder
                .histograms
                .get_or_register(self.name)
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// A pre-registered counter.  Cloneable; clones share the cell.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<CounterCell>,
}

impl Counter {
    #[inline]
    fn live(&self) -> bool {
        !cfg!(feature = "off") && self.enabled.load(Ordering::Relaxed)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if self.live() {
            self.cell.add(delta);
        }
    }

    /// Current summed value (live reads are racy but monotone).
    pub fn value(&self) -> u64 {
        self.cell.value()
    }
}

/// A pre-registered gauge.  Cloneable; clones share the cell.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<GaugeCell>,
}

impl Gauge {
    #[inline]
    fn live(&self) -> bool {
        !cfg!(feature = "off") && self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        if self.live() {
            self.cell.set(value);
        }
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.live() {
            self.cell.add(delta);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.value()
    }
}

/// A pre-registered histogram.  Cloneable; clones share the cell.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    #[inline]
    fn live(&self) -> bool {
        !cfg!(feature = "off") && self.enabled.load(Ordering::Relaxed)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.live() {
            self.cell.record(value);
        }
    }

    /// Times `f` in nanoseconds.  When recording is off, runs `f` with
    /// no clock read at all.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if !self.live() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.cell
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::thread;

    // Needs live recording — compiled out by the `off` feature.
    #[test]
    #[cfg(not(feature = "off"))]
    fn counter_sums_across_shards_and_threads() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        let counter = rec.counter("t.counter");
        thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8000);
        assert_eq!(rec.snapshot().counters["t.counter"], 8000);
    }

    #[test]
    fn disabled_recorder_stays_quiet() {
        let rec = Recorder::new();
        let counter = rec.counter("q.counter");
        counter.add(7);
        rec.add("q.oneshot", 3);
        rec.gauge_set("q.gauge", -5);
        rec.record("q.hist", 42);
        let ran = rec.time("q.time", || 11u32);
        assert_eq!(ran, 11);
        let snap = rec.snapshot();
        assert!(snap.is_quiet(), "disabled ops leaked: {snap:?}");
    }

    #[test]
    fn time_skips_the_clock_but_still_runs_the_closure() {
        let rec = Recorder::new();
        let hits = AtomicU32::new(0);
        let out = rec.time("t.skip", || {
            hits.fetch_add(1, Ordering::Relaxed);
            "ok"
        });
        assert_eq!(out, "ok");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    // Needs live recording — compiled out by the `off` feature.
    #[test]
    #[cfg(not(feature = "off"))]
    fn histogram_quantiles_track_bucket_bounds() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        let hist = rec.histogram("h.latency");
        for v in [1u64, 2, 3, 4, 100, 1000] {
            hist.record(v);
        }
        let snap = rec.snapshot().histograms["h.latency"].clone();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1110);
        assert_eq!(snap.max, 1000);
        assert!(snap.p50 >= 3 && snap.p50 <= 7, "p50 = {}", snap.p50);
        assert_eq!(snap.p99, 1000);
    }

    // Needs live recording — compiled out by the `off` feature.
    #[test]
    #[cfg(not(feature = "off"))]
    fn reset_zeroes_cells_but_keeps_handles_live() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        let counter = rec.counter("r.counter");
        counter.add(5);
        rec.reset();
        assert_eq!(counter.value(), 0);
        counter.add(2);
        assert_eq!(rec.snapshot().counters["r.counter"], 2);
    }

    // Needs live recording — compiled out by the `off` feature.
    #[test]
    #[cfg(not(feature = "off"))]
    fn gauges_set_and_adjust() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        let gauge = rec.gauge("g.resident");
        gauge.set(100);
        gauge.add(-30);
        assert_eq!(gauge.value(), 70);
        assert_eq!(rec.snapshot().gauges["g.resident"], 70);
    }
}
