//! Point-in-time metric snapshots: JSON export, span-tree rendering,
//! and the sink/source traits that unify the workspace's ad-hoc stats
//! structs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Anything that accepts named metric values.  [`MetricsSnapshot`] is
/// the canonical sink; tests may implement their own.
pub trait MetricSink {
    /// Reports a monotonic counter.
    fn counter(&mut self, name: &str, value: u64);
    /// Reports a point-in-time gauge.
    fn gauge(&mut self, name: &str, value: i64);
}

/// A stats struct that can pour itself into a [`MetricSink`] under a
/// caller-chosen prefix.  Implemented by `IndexPoolStats`,
/// `ColumnarStats` and `InternerStats` in `dq-relation`, so callers
/// stop hand-stitching those structs into reports.
pub trait MetricSource {
    /// Emits every field as `prefix.field` into `sink`.
    fn emit(&self, prefix: &str, sink: &mut dyn MetricSink);
}

/// Summary of one histogram: count, sum, max and approximate
/// (bucket-upper-bound) quantiles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Approximate 50th percentile.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregated timing of one span path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed occurrences.
    pub count: u64,
    /// Total wall-clock nanoseconds across occurrences.
    pub total_ns: u64,
}

/// A point-in-time copy of every non-zero metric in a recorder, plus
/// anything [`ingested`](MetricsSnapshot::ingest) from external stats
/// structs.  Serializes to JSON with [`to_json`](MetricsSnapshot::to_json).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timings by full `parent/child` path.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Verbose-mode event lines, oldest first.
    pub events: Vec<String>,
}

impl MetricSink for MetricsSnapshot {
    fn counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    fn gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }
}

impl MetricsSnapshot {
    /// True when nothing was recorded — the shape a disabled run must
    /// produce.
    pub fn is_quiet(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
    }

    /// Pours an external stats struct in under `prefix`.
    pub fn ingest(&mut self, prefix: &str, source: &(impl MetricSource + ?Sized)) {
        source.emit(prefix, self);
    }

    /// Serializes the snapshot as a JSON object with stable (sorted)
    /// key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_map(&mut out, "counters", &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push(',');
        push_map(&mut out, "gauges", &self.gauges, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push(',');
        push_map(&mut out, "histograms", &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count, h.sum, h.max, h.p50, h.p90, h.p99
            );
        });
        out.push(',');
        push_map(&mut out, "spans", &self.spans, |out, s| {
            let _ = write!(out, "{{\"count\":{},\"total_ns\":{}}}", s.count, s.total_ns);
        });
        out.push_str(",\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, event);
        }
        out.push_str("]}");
        out
    }

    /// Renders the recorded spans as an indented tree, children sorted
    /// by total time, with per-node totals, counts, means and the share
    /// of the parent's time.  This is the `harness --profile` "flame
    /// summary".
    pub fn render_span_tree(&self) -> String {
        let mut root = TreeNode::default();
        for (path, span) in &self.spans {
            let mut node = &mut root;
            for part in path.split('/') {
                node = node.children.entry(part.to_string()).or_default();
            }
            node.count += span.count;
            node.total_ns += span.total_ns;
        }
        let mut out = String::new();
        let parent_total: u64 = root.children.values().map(|c| c.total_ns).sum();
        for (name, child) in sorted_children(&root) {
            render_node(&mut out, name, child, 0, parent_total);
        }
        out
    }
}

#[derive(Default)]
struct TreeNode {
    count: u64,
    total_ns: u64,
    children: BTreeMap<String, TreeNode>,
}

fn sorted_children(node: &TreeNode) -> Vec<(&str, &TreeNode)> {
    let mut children: Vec<(&str, &TreeNode)> = node
        .children
        .iter()
        .map(|(name, child)| (name.as_str(), child))
        .collect();
    children.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    children
}

fn render_node(out: &mut String, name: &str, node: &TreeNode, depth: usize, parent_total: u64) {
    let total_ms = node.total_ns as f64 / 1e6;
    let share = if parent_total == 0 {
        100.0
    } else {
        node.total_ns as f64 / parent_total as f64 * 100.0
    };
    let mean_ms = if node.count == 0 {
        0.0
    } else {
        total_ms / node.count as f64
    };
    let _ = writeln!(
        out,
        "{:indent$}{name:<width$} {total_ms:>10.3} ms  {:>7} calls  {mean_ms:>10.3} ms/call  {share:>5.1}%",
        "",
        node.count,
        indent = depth * 2,
        width = 36usize.saturating_sub(depth * 2),
    );
    for (child_name, child) in sorted_children(node) {
        render_node(out, child_name, child, depth + 1, node.total_ns);
    }
}

/// Appends `"key":{...sorted map...}` to `out`.
fn push_map<V>(
    out: &mut String,
    key: &str,
    map: &BTreeMap<String, V>,
    mut value: impl FnMut(&mut String, &V),
) {
    let _ = write!(out, "\"{key}\":{{");
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, name);
        out.push(':');
        value(out, v);
    }
    out.push('}');
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeStats {
        hits: u64,
        resident: i64,
    }

    impl MetricSource for FakeStats {
        fn emit(&self, prefix: &str, sink: &mut dyn MetricSink) {
            sink.counter(&format!("{prefix}.hits"), self.hits);
            sink.gauge(&format!("{prefix}.resident"), self.resident);
        }
    }

    #[test]
    fn ingest_pours_sources_under_a_prefix() {
        let mut snap = MetricsSnapshot::default();
        snap.ingest(
            "pool",
            &FakeStats {
                hits: 4,
                resident: 99,
            },
        );
        assert_eq!(snap.counters["pool.hits"], 4);
        assert_eq!(snap.gauges["pool.resident"], 99);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("b".into(), 2);
        snap.counters.insert("a".into(), 1);
        snap.events.push("line \"quoted\"\n".into());
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{\"a\":1,\"b\":2}"));
        assert!(json.contains("\\\"quoted\\\"\\n"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn span_tree_nests_and_sorts_by_total_time() {
        let mut snap = MetricsSnapshot::default();
        for (path, total_ns) in [
            ("a", 10_000_000),
            ("a/fast", 1_000_000),
            ("a/slow", 8_000_000),
        ] {
            snap.spans
                .insert(path.into(), SpanSnapshot { count: 1, total_ns });
        }
        let tree = snap.render_span_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].trim_start().starts_with('a'));
        assert!(
            lines[1].trim_start().starts_with("slow"),
            "slow first: {tree}"
        );
        assert!(lines[2].trim_start().starts_with("fast"));
        assert!(lines[1].contains("80.0%"));
    }

    #[test]
    fn quiet_snapshot_reports_quiet() {
        assert!(MetricsSnapshot::default().is_quiet());
        let mut snap = MetricsSnapshot::default();
        snap.counter("x", 1);
        assert!(!snap.is_quiet());
    }
}
